//! Deterministic case driver: config, per-test RNG, and case outcomes.

/// Per-block configuration; only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!`); it does not count.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Render a `catch_unwind` payload for the failure report.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// SplitMix64 seeded from the test name: every run of a given test draws
/// the same case sequence, so failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name; distinct tests get distinct streams.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[min, max]` (both inclusive).
    pub fn usize_inclusive(&mut self, min: usize, max: usize) -> usize {
        debug_assert!(min <= max);
        let span = (max - min) as u128 + 1;
        min + ((self.next_u64() as u128) % span) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_test_name_gives_same_stream() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_test_names_give_distinct_streams() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn usize_inclusive_hits_both_endpoints() {
        let mut rng = TestRng::for_test("endpoints");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.usize_inclusive(0, 2)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
