//! `collection::vec` and the size specifications it accepts.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange { min: exact, max: exact }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange { min: range.start, max: range.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange { min: *range.start(), max: *range.end() }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_inclusive(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_spec_pins_the_length() {
        let mut rng = TestRng::for_test("exact_size_spec_pins_the_length");
        for _ in 0..20 {
            assert_eq!(vec(0u8..10, 7).generate(&mut rng).len(), 7);
        }
    }

    #[test]
    fn range_size_spec_is_half_open_like_proptest() {
        let mut rng = TestRng::for_test("range_size_spec_is_half_open_like_proptest");
        let strat = vec(0u8..10, 0..4);
        let mut seen_max = 0;
        for _ in 0..200 {
            let len = strat.generate(&mut rng).len();
            assert!(len < 4);
            seen_max = seen_max.max(len);
        }
        assert_eq!(seen_max, 3);
    }
}
