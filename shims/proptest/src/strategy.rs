//! The [`Strategy`] trait and the combinators the workspace's tests use:
//! numeric ranges, tuples, `Just`, and `prop_map`.

use crate::test_runner::TestRng;

/// A recipe for sampling values of one type. The shim samples fresh values
/// per case and never shrinks.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty integer range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + offset as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty float range strategy");
                let unit = rng.next_unit_f64() as $ty;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..500 {
            let v = (10i64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (0usize..1).generate(&mut rng);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn prop_map_transforms_samples() {
        let mut rng = TestRng::for_test("prop_map_transforms_samples");
        let strat = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = TestRng::for_test("tuples_sample_componentwise");
        let (a, b, c) = (0i32..5, 10i32..15, Just("x")).generate(&mut rng);
        assert!((0..5).contains(&a));
        assert!((10..15).contains(&b));
        assert_eq!(c, "x");
    }
}
