//! Offline shim for the `proptest` crate.
//!
//! Keeps the `proptest! { fn name(pat in strategy) { .. } }` surface and the
//! strategy combinators this workspace's property tests use, but swaps the
//! engine for a deliberately simple one: each test gets a deterministic RNG
//! seeded from its own name, every case is freshly sampled, and failures
//! report the sampled inputs. There is **no shrinking** and no persistence —
//! a failure prints its inputs instead of minimizing them.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Defines property tests. Supports the optional
/// `#![proptest_config(...)]` header followed by one or more
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __attempt_cap = __config.cases.saturating_mul(20).max(100);
            while __passed < __config.cases {
                __attempts += 1;
                if __attempts > __attempt_cap {
                    panic!(
                        "proptest shim: test {} rejected too many cases ({} attempts for {} passes)",
                        stringify!($name),
                        __attempts,
                        __passed,
                    );
                }
                let mut __inputs = ::std::string::String::new();
                $(
                    let __value = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push_str(&::std::format!(
                        "  {} = {:?}\n",
                        stringify!($pat),
                        &__value
                    ));
                    let $pat = __value;
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> $crate::test_runner::TestCaseResult {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {
                        __passed += 1;
                    }
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    )) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    )) => {
                        panic!(
                            "proptest shim: {} failed after {} passing case(s): {}\ninputs:\n{}",
                            stringify!($name),
                            __passed,
                            __msg,
                            __inputs,
                        );
                    }
                    ::std::result::Result::Err(__payload) => {
                        let __msg = $crate::test_runner::panic_message(&__payload);
                        panic!(
                            "proptest shim: {} panicked after {} passing case(s): {}\ninputs:\n{}",
                            stringify!($name),
                            __passed,
                            __msg,
                            __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
}

/// Discards the current case (does not count toward the case budget)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}
