//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// `prop::collection::vec(...)`, `prop::sample::Index`, etc.
pub use crate as prop;
