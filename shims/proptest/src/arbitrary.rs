//! `any::<T>()` over a minimal [`Arbitrary`] universe.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_the_domain_well() {
        let mut rng = TestRng::for_test("any_u8_covers_the_domain_well");
        let mut seen = [false; 256];
        for _ in 0..8192 {
            seen[any::<u8>().generate(&mut rng) as usize] = true;
        }
        let covered = seen.iter().filter(|s| **s).count();
        assert!(covered > 200, "only {covered}/256 byte values seen");
    }
}
