//! `sample::Index`: an index drawn independently of the collection it will
//! eventually select into.

/// A raw draw that maps onto `0..len` when a length is supplied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Index {
        Index { raw }
    }

    /// Project the draw onto `0..len`. Panics if `len == 0`, as upstream.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot select an index from an empty collection");
        (self.raw % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_projects_within_bounds() {
        for raw in [0u64, 1, 41, u64::MAX] {
            let idx = Index::from_raw(raw);
            for len in [1usize, 2, 7, 1000] {
                assert!(idx.index(len) < len);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn index_into_empty_panics() {
        Index::from_raw(3).index(0);
    }
}
