//! String strategies from regex-shaped patterns.
//!
//! Real proptest compiles the full regex language; the shim supports the
//! two shapes this workspace's tests use — a character class with a
//! repetition count (`"[a-z/_.0-9]{0,40}"`) and the non-control escape
//! (`"\PC{0,2000}"`) — and panics loudly on anything else.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

enum CharSet {
    /// Explicit candidates expanded from a `[...]` class.
    Explicit(Vec<char>),
    /// `\PC`: any non-control scalar value, biased toward printable ASCII.
    NonControl,
}

struct Pattern {
    chars: CharSet,
    min_len: usize,
    max_len: usize,
}

fn parse_pattern(pattern: &str) -> Pattern {
    let unsupported = || -> ! {
        panic!("proptest shim: unsupported string pattern `{pattern}` (supported: `[class]{{m,n}}`, `\\PC{{m,n}}`)")
    };
    let rest;
    let chars = if let Some(class_rest) = pattern.strip_prefix('[') {
        let Some(close) = class_rest.find(']') else { unsupported() };
        let entries: Vec<char> = class_rest[..close].chars().collect();
        let mut candidates = Vec::new();
        let mut i = 0;
        while i < entries.len() {
            if i + 2 < entries.len() && entries[i + 1] == '-' {
                let (lo, hi) = (entries[i], entries[i + 2]);
                if lo > hi {
                    unsupported();
                }
                for code in lo as u32..=hi as u32 {
                    candidates.extend(char::from_u32(code));
                }
                i += 3;
            } else {
                candidates.push(entries[i]);
                i += 1;
            }
        }
        if candidates.is_empty() {
            unsupported();
        }
        rest = &class_rest[close + 1..];
        CharSet::Explicit(candidates)
    } else if let Some(pc_rest) = pattern.strip_prefix("\\PC") {
        rest = pc_rest;
        CharSet::NonControl
    } else {
        unsupported()
    };

    let (min_len, max_len) = if rest.is_empty() {
        (1, 1)
    } else {
        let Some(counts) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
            unsupported()
        };
        match counts.split_once(',') {
            Some((min, max)) => {
                let (Ok(min), Ok(max)) = (min.parse(), max.parse()) else { unsupported() };
                (min, max)
            }
            None => {
                let Ok(exact) = counts.parse() else { unsupported() };
                (exact, exact)
            }
        }
    };
    if min_len > max_len {
        unsupported();
    }
    Pattern { chars, min_len, max_len }
}

fn sample_non_control(rng: &mut TestRng) -> char {
    // Bias toward printable ASCII so generated strings stay legible; the
    // remaining draws exercise multi-byte scalar values.
    if rng.next_u64() % 10 < 8 {
        return char::from_u32(0x20 + (rng.next_u32() % 0x5F)).unwrap_or(' ');
    }
    loop {
        let code = rng.next_u32() % 0x11_0000;
        if let Some(ch) = char::from_u32(code) {
            if !ch.is_control() {
                return ch;
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = parse_pattern(self);
        let len = rng.usize_inclusive(pattern.min_len, pattern.max_len);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            match &pattern.chars {
                CharSet::Explicit(candidates) => {
                    out.push(candidates[rng.usize_inclusive(0, candidates.len() - 1)]);
                }
                CharSet::NonControl => out.push(sample_non_control(rng)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_respects_alphabet_and_length() {
        let mut rng = TestRng::for_test("class_pattern_respects_alphabet_and_length");
        let pattern = "[a-z/_.0-9]{0,40}";
        for _ in 0..200 {
            let s = pattern.generate(&mut rng);
            assert!(s.chars().count() <= 40);
            for ch in s.chars() {
                assert!(
                    ch.is_ascii_lowercase() || ch.is_ascii_digit() || "/_.".contains(ch),
                    "unexpected char {ch:?}"
                );
            }
        }
    }

    #[test]
    fn non_control_pattern_never_emits_control_chars() {
        let mut rng = TestRng::for_test("non_control_pattern_never_emits_control_chars");
        let pattern = "\\PC{0,2000}";
        for _ in 0..20 {
            let s = pattern.generate(&mut rng);
            assert!(s.chars().count() <= 2000);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn exact_count_pattern_pins_length() {
        let mut rng = TestRng::for_test("exact_count_pattern_pins_length");
        for _ in 0..20 {
            assert_eq!("[a-b]{5}".generate(&mut rng).chars().count(), 5);
        }
    }
}
