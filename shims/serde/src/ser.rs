//! Serialization half of the data model.

/// A value serializable into any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Serializer-side error constructor.
pub trait Error: Sized + std::error::Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A data-format serializer. Only the entry points the workspace's impls
/// and derives call are present.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    // Narrower numeric entry points default to the 64-bit forms.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(f64::from(v))
    }
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error> {
        self.serialize_str(v.encode_utf8(&mut [0u8; 4]))
    }
}

pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---- Serialize impls for the std types the workspace serializes ---------

macro_rules! serialize_primitive {
    ($($ty:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

serialize_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S: Serializer, T: Serialize>(
    serializer: S,
    len: usize,
    items: impl Iterator<Item = T>,
) -> Result<S::Ok, S::Error> {
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in items {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, N, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(0 $(+ { let _ = stringify!($name); 1 })+))?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }
    )*};
}

serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
