//! Deserialization half of the data model.

/// A value constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input. The shim never
/// borrows, so this is a plain alias-style marker.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Deserializer-side error constructor.
pub trait Error: Sized + std::error::Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self;

    fn missing_field(field: &'static str) -> Self {
        Error::custom(format_args!("missing field `{field}`"))
    }

    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Error::custom(format_args!("unknown variant `{variant}`, expected one of {expected:?}"))
    }
}

/// Driver for one value in the input: the deserializer calls back the
/// `visit_*` method matching what it found. Defaults reject with a type
/// error so visitors implement only the shapes they accept.
pub trait Visitor<'de>: Sized {
    type Value;

    /// What this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected bool `{v}`")))
    }

    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer `{v}`")))
    }

    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer `{v}`")))
    }

    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected float `{v}`")))
    }

    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected string {v:?}")))
    }

    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected null"))
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected absent value"))
    }

    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom("unexpected present value"))
    }

    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::custom("unexpected sequence"))
    }

    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::custom("unexpected map"))
    }
}

/// Access to a sequence's elements during [`Visitor::visit_seq`].
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to a map's entries during [`Visitor::visit_map`].
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>;

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>;

    /// Shim-only extension: drive `visitor` with the next value directly.
    /// The derive uses it for externally-tagged struct-variant payloads,
    /// which real serde reaches through `next_value_seed`.
    fn next_value_with<V: Visitor<'de>>(&mut self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// A self-describing data-format deserializer.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    /// Dispatch on whatever the input holds. Derived enums use this so a
    /// string becomes a unit variant and a map an externally-tagged one.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// A value that consumes and discards whatever the input holds; the derive
/// uses it to skip unknown fields.
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<IgnoredAny, D::Error> {
        struct IgnoredVisitor;
        impl<'de> Visitor<'de> for IgnoredVisitor {
            type Value = IgnoredAny;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("any value, ignored")
            }

            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(deserializer)
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_key::<IgnoredAny>()?.is_some() {
                    map.next_value::<IgnoredAny>()?;
                }
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_ignored_any(IgnoredVisitor)
    }
}

// ---- Deserialize impls for the std types the workspace reads -------------

macro_rules! deserialize_int {
    ($($ty:ty => $entry:ident),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<$ty, D::Error> {
                struct IntVisitor;
                impl<'de> Visitor<'de> for IntVisitor {
                    type Value = $ty;

                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.write_str(concat!("a ", stringify!($ty)))
                    }

                    fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!(
                                "integer `{v}` out of range for {}", stringify!($ty)
                            ))
                        })
                    }

                    fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!(
                                "integer `{v}` out of range for {}", stringify!($ty)
                            ))
                        })
                    }
                }
                deserializer.$entry(IntVisitor)
            }
        }
    )*};
}

deserialize_int! {
    i8 => deserialize_i64,
    i16 => deserialize_i64,
    i32 => deserialize_i64,
    i64 => deserialize_i64,
    isize => deserialize_i64,
    u8 => deserialize_u64,
    u16 => deserialize_u64,
    u32 => deserialize_u64,
    u64 => deserialize_u64,
    usize => deserialize_u64,
}

macro_rules! deserialize_float {
    ($($ty:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<$ty, D::Error> {
                struct FloatVisitor;
                impl<'de> Visitor<'de> for FloatVisitor {
                    type Value = $ty;

                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.write_str(concat!("a ", stringify!($ty)))
                    }

                    fn visit_f64<E: Error>(self, v: f64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }

                    fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }

                    fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                }
                deserializer.deserialize_f64(FloatVisitor)
            }
        }
    )*};
}

deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<bool, D::Error> {
        struct BoolVisitor;
        impl<'de> Visitor<'de> for BoolVisitor {
            type Value = bool;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a boolean")
            }

            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(BoolVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<String, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a string")
            }

            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }

            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Option<T>, D::Error> {
        struct OptionVisitor<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("an optional value")
            }

            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(std::marker::PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Vec<T>, D::Error> {
        struct VecVisitor<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a sequence")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(std::marker::PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<[T; N], D::Error> {
        struct ArrayVisitor<T, const N: usize>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "a sequence of exactly {N} elements")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                    if out.len() > N {
                        return Err(Error::custom(format!("expected at most {N} elements")));
                    }
                }
                let got = out.len();
                out.try_into()
                    .map_err(|_| Error::custom(format!("expected {N} elements, got {got}")))
            }
        }
        deserializer.deserialize_seq(ArrayVisitor(std::marker::PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SetVisitor<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for SetVisitor<T> {
            type Value = std::collections::BTreeSet<T>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a sequence of unique values")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeSet::new();
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(SetVisitor(std::marker::PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BMapVisitor<K, V>(std::marker::PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for BMapVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(key) = map.next_key()? {
                    out.insert(key, map.next_value()?);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(BMapVisitor(std::marker::PhantomData))
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($name),+>(std::marker::PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);

                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.write_str("a fixed-size sequence")
                    }

                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        Ok(($(
                            seq.next_element::<$name>()?.ok_or_else(|| {
                                Error::custom("tuple has too few elements")
                            })?,
                        )+))
                    }
                }
                deserializer.deserialize_seq(TupleVisitor(std::marker::PhantomData))
            }
        }
    )*};
}

deserialize_tuple! {
    (TupA, TupB)
    (TupA, TupB, TupC)
    (TupA, TupB, TupC, TupD)
}
