//! Offline shim for the `serde` crate.
//!
//! A serde-shaped data model — `Serialize`/`Serializer` with the
//! `SerializeStruct`-style sub-traits, `Deserialize`/`Deserializer` with
//! `Visitor`/`MapAccess`/`SeqAccess` — sized to exactly the surface this
//! workspace uses, so the hand-written impls (`EvictReason`, `Category`)
//! and the 60-odd derive sites compile unchanged against it.
//!
//! Simplifications versus real serde, deliberate and load-bearing:
//!
//! * no `*_seed` deserialization — `MapAccess`/`SeqAccess` expose the plain
//!   `next_key::<K>()` / `next_value::<V>()` forms the derives use;
//! * `MapAccess::next_value_with` is a shim-only extension that lets the
//!   derive hand a struct-shaped [`de::Visitor`] to an externally-tagged
//!   struct-variant payload without a helper type;
//! * no zero-copy `&'de str` borrowing — every string visit goes through
//!   `visit_str` with an arbitrary-lifetime slice.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
