//! Offline shim for the `bytes` crate.
//!
//! The build container has no route to the crates registry, so every
//! external dependency of this workspace is replaced by a small in-repo
//! crate implementing exactly the API surface the workspace uses (see
//! `shims/README.md`). This one covers:
//!
//! * [`Bytes`] — cheaply clonable immutable buffer (`Arc<Vec<u8>>` plus a
//!   window), used by `mosaic_pipeline::source::TraceInput` so cloning an
//!   input never copies megabytes of records.
//! * [`BytesMut`] — growable write buffer used by the MDF/MDX encoders.
//! * [`Buf`] / [`BufMut`] — little-endian cursor reads and appends.
//!
//! Semantics follow the real crate for the methods present; anything the
//! workspace does not call is deliberately absent.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a new reference-counted buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// A static slice, copied (the real crate borrows; the workspace only
    /// uses this for small literals).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the visible window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The window as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the window out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-window sharing the same backing allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable, appendable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

macro_rules! get_le {
    ($name:ident, $ty:ty, $n:expr) => {
        /// Read the next little-endian value, advancing the cursor.
        ///
        /// Panics when fewer than the needed bytes remain, matching the
        /// real crate; callers must check [`Buf::remaining`] first.
        fn $name(&mut self) -> $ty {
            let mut raw = [0u8; $n];
            self.copy_to_slice(&mut raw);
            <$ty>::from_le_bytes(raw)
        }
    };
}

/// Sequential reads over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a slice.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes are left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `cnt` bytes. Panics when fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Copy the next `dst.len()` bytes out, advancing. Panics when fewer
    /// remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Detach the next `len` bytes as an owned buffer, advancing.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Read one byte, advancing.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    get_le!(get_u16_le, u16, 2);
    get_le!(get_u32_le, u32, 4);
    get_le!(get_u64_le, u64, 8);
    get_le!(get_i16_le, i16, 2);
    get_le!(get_i32_le, i32, 4);
    get_le!(get_i64_le, i64, 8);
    get_le!(get_f64_le, f64, 8);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

macro_rules! put_le {
    ($name:ident, $ty:ty) => {
        /// Append a little-endian value.
        fn $name(&mut self, v: $ty) {
            self.put_slice(&v.to_le_bytes());
        }
    };
}

/// Sequential appends onto a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le!(put_u16_le, u16);
    put_le!(put_u32_le, u32);
    put_le!(put_u64_le, u64);
    put_le!(put_i16_le, i16);
    put_le!(put_i32_le, i32);
    put_le!(put_i64_le, i64);
    put_le!(put_f64_le, f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_i64_le(-42);
        w.put_f64_le(1.5);
        w.put_slice(b"xyz");
        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.copy_to_bytes(3).as_slice(), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_shares_backing() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(Arc::strong_count(&b.data), 2);
        assert_eq!(c.as_slice(), &[1, 2, 3, 4]);
        let s = b.slice(1..3);
        assert_eq!(s.as_slice(), &[2, 3]);
        assert_eq!(Arc::strong_count(&b.data), 3);
    }

    #[test]
    fn slice_buf_advances() {
        let mut s: &[u8] = &[1, 0, 2, 0];
        assert_eq!(s.get_u16_le(), 1);
        assert_eq!(s.get_u16_le(), 2);
        assert_eq!(s.remaining(), 0);
    }
}
