//! Offline shim for the `rand_chacha` crate.
//!
//! The ChaCha implementation itself lives in the `rand` shim
//! (`rand::chacha`) so that `rand::rngs::StdRng` can share it without a
//! dependency cycle; this crate provides the `rand_chacha` names the
//! workspace imports. See `shims/README.md` and the keystream test vectors
//! in `shims/rand_chacha/tests/vectors.rs`.

#![forbid(unsafe_code)]

use rand::chacha::ChaChaRng;

/// ChaCha with 8 rounds: the workspace's standard seeded generator.
pub type ChaCha8Rng = ChaChaRng<8>;

/// ChaCha with 12 rounds (backs `rand::rngs::StdRng`).
pub type ChaCha12Rng = ChaChaRng<12>;

/// ChaCha with the full 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

pub mod rand_core {
    //! The subset of `rand_core` re-exported by the real crate.
    pub use rand::{RngCore, SeedableRng};
}
