//! Conformance tests pinning the shim's ChaCha keystream to published
//! vectors, so the in-repo implementation is provably the same cipher the
//! real `rand_chacha` wraps.

use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::{ChaCha20Rng, ChaCha8Rng};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// djb/IETF ChaCha20 with all-zero key, nonce, and counter: the first
/// 64-byte keystream block (RFC 7539 §2.3.2 test material, original-variant
/// counter layout — identical first block because nonce and counter are
/// both zero).
#[test]
fn chacha20_zero_key_first_block() {
    let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
    let mut block = [0u8; 64];
    rng.fill_bytes(&mut block);
    assert_eq!(
        hex(&block),
        "76b8e0ada0f13d90405d6ae55386bd28\
         bdd219b8a08ded1aa836efcc8b770dc7\
         da41597c5157488d7724e03fb8d84a37\
         6a43b8f41518a11cc387b669b2ee6586"
    );
}

/// Second block of the same stream (counter = 1), from the same published
/// vector set.
#[test]
fn chacha20_zero_key_second_block() {
    let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
    let mut blocks = [0u8; 128];
    rng.fill_bytes(&mut blocks);
    assert_eq!(
        hex(&blocks[64..]),
        "9f07e7be5551387a98ba977c732d080d\
         cb0f29a048e3656912c6533e32ee7aed\
         29b721769ce64e43d57133b074d839d5\
         31ed1f28510afb45ace10a1f4b794d6f"
    );
}

/// ECRYPT "chacha8-256.64-verified" vector: zero key, zero IV, first 64
/// keystream bytes.
#[test]
fn chacha8_zero_key_first_block() {
    let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
    let mut block = [0u8; 64];
    rng.fill_bytes(&mut block);
    assert_eq!(
        hex(&block),
        "3e00ef2f895f40d67f5bb8e81f09a5a1\
         2c840ec3ce9a7f3b181be188ef711a1e\
         984ce172b9216f419f445367456d5619\
         314a42a3da86b001387bfdb80e0cfe42"
    );
}

/// Word-level output must match byte-level output (little-endian), and
/// `next_u32`/`next_u64` must consume the same stream.
#[test]
fn word_outputs_are_little_endian_keystream() {
    let mut byte_rng = ChaCha20Rng::from_seed([7u8; 32]);
    let mut word_rng = byte_rng.clone();
    let mut bytes = [0u8; 12];
    byte_rng.fill_bytes(&mut bytes);
    let w0 = word_rng.next_u32();
    let w1 = word_rng.next_u64();
    assert_eq!(w0, u32::from_le_bytes(bytes[..4].try_into().unwrap()));
    assert_eq!(w1, u64::from_le_bytes(bytes[4..].try_into().unwrap()));
}

/// Streams must be reproducible from the seed and independent across
/// distinct seeds.
#[test]
fn seeded_streams_are_reproducible_and_distinct() {
    let mut a = ChaCha8Rng::from_seed([1u8; 32]);
    let mut b = ChaCha8Rng::from_seed([1u8; 32]);
    let mut c = ChaCha8Rng::from_seed([2u8; 32]);
    let (mut ba, mut bb, mut bc) = ([0u8; 256], [0u8; 256], [0u8; 256]);
    a.fill_bytes(&mut ba);
    b.fill_bytes(&mut bb);
    c.fill_bytes(&mut bc);
    assert_eq!(ba, bb);
    assert_ne!(ba, bc);
}

/// The 64-bit block counter must carry from word 12 into word 13 rather
/// than wrapping at 2^32 blocks. Exercised indirectly: manually advancing
/// past a block boundary keeps the stream identical to a straight read.
#[test]
fn cross_block_reads_match_contiguous_stream() {
    let mut whole = ChaCha8Rng::from_seed([9u8; 32]);
    let mut split = whole.clone();
    let mut expect = [0u8; 200];
    whole.fill_bytes(&mut expect);
    let mut got = [0u8; 200];
    // Uneven chunk sizes straddle the 64-byte block boundaries.
    let mut at = 0;
    for take in [1usize, 3, 60, 5, 64, 67] {
        split.fill_bytes(&mut got[at..at + take]);
        at += take;
    }
    assert_eq!(at, 200);
    assert_eq!(got, expect);
}
