//! Offline shim for the `criterion` crate.
//!
//! Keeps the `criterion_group!`/`criterion_main!` + `benchmark_group` +
//! `bench_with_input` surface so the workspace's benches compile and run
//! offline, but replaces the statistics engine with a plain
//! warmup-then-measure loop that prints mean wall-clock time per iteration.
//! Numbers are indicative, not rigorous.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 100, throughput: None }
    }
}

/// Units for derived rates; recorded and echoed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named benchmark within a group, e.g. `concurrent/10000`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { sample_size: self.sample_size, mean_ns: 0.0, iters: 0 };
        routine(&mut bencher, input);
        let label = format!("{}/{}/{}", self.name, id.function, id.parameter);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if bencher.mean_ns > 0.0 => {
                format!("  {:.1} Melem/s", n as f64 / bencher.mean_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if bencher.mean_ns > 0.0 => {
                format!("  {:.1} MiB/s", n as f64 / bencher.mean_ns * 1e9 / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!("bench {label}: {:.1} ns/iter ({} iters){rate}", bencher.mean_ns, bencher.iters);
        println!("{}", machine_line(&label, bencher.mean_ns, bencher.iters));
        self
    }

    pub fn finish(self) {}
}

/// The stable machine-readable result line emitted after the human one:
/// a `BENCH_RESULT ` prefix followed by a single-line JSON object with
/// fixed keys (`name`, `ns_per_iter`, `iters`). Scripts grep the prefix and
/// parse the rest; the human line above it stays free to change.
pub fn machine_line(label: &str, mean_ns: f64, iters: u64) -> String {
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    format!(
        "BENCH_RESULT {{\"name\":\"{escaped}\",\"ns_per_iter\":{mean_ns:.1},\"iters\":{iters}}}"
    )
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    mean_ns: f64,
    iters: u64,
}

/// Per-routine wall-clock budget; keeps full bench runs in CI-friendly time.
const TIME_BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: one untimed pass to populate caches and allocators.
        std::hint::black_box(routine());
        let budget_start = Instant::now();
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while iters < self.sample_size as u64 && budget_start.elapsed() < TIME_BUDGET {
            let start = Instant::now();
            std::hint::black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.mean_ns = if iters == 0 { 0.0 } else { total.as_nanos() as f64 / iters as f64 };
    }
}

/// `black_box` is re-exported so both import styles used in the wild work;
/// this workspace's benches import it from `std::hint` directly.
pub use std::hint::black_box;

/// Declares a group function that runs each target against a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_the_routine_and_counts_iters() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 4), &4u64, |b, n| {
            b.iter(|| {
                calls += 1;
                *n * 2
            })
        });
        group.finish();
        // one warmup + at least one timed iteration
        assert!(calls >= 2);
    }

    #[test]
    fn machine_line_is_stable_single_line_json() {
        assert_eq!(
            machine_line("merge/concurrent/10000", 1234.56, 42),
            r#"BENCH_RESULT {"name":"merge/concurrent/10000","ns_per_iter":1234.6,"iters":42}"#
        );
        // Quotes and backslashes in labels stay valid JSON.
        assert_eq!(
            machine_line(r#"odd"\label"#, 0.0, 0),
            r#"BENCH_RESULT {"name":"odd\"\\label","ns_per_iter":0.0,"iters":0}"#
        );
        assert!(!machine_line("x", 1.0, 1).contains('\n'));
    }

    #[test]
    fn benchmark_id_formats_function_and_parameter() {
        let id = BenchmarkId::new("parse", 128usize);
        assert_eq!(id.function, "parse");
        assert_eq!(id.parameter, "128");
    }
}
