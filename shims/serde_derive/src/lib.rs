//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented without syn/quote.
//!
//! The input item is parsed by walking its raw `TokenTree`s and the output
//! impl is rendered as a source string (`TokenStream::from_str` at the
//! end). Coverage is exactly what this workspace derives on: braced structs
//! with named fields and enums of unit / newtype / braced-struct variants,
//! plus the `#[serde(default)]` and `#[serde(rename_all = "snake_case")]`
//! attributes. Anything else panics with a clear message at compile time —
//! widening the shim is a deliberate act, not an accident.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(serialize_impl(&item))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(deserialize_impl(&item))
}

fn render(source: String) -> TokenStream {
    source
        .parse()
        .unwrap_or_else(|e| panic!("serde shim derive emitted invalid Rust: {e}\n{source}"))
}

// ---- item model ----------------------------------------------------------

struct Field {
    name: String,
    /// Name on the wire (after `rename_all`).
    wire: String,
    /// Type, re-rendered verbatim from its tokens.
    ty: String,
    has_default: bool,
    is_option: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    wire: String,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---- parsing -------------------------------------------------------------

#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    rename_all_snake: bool,
}

fn is_punct(token: Option<&TokenTree>, ch: char) -> bool {
    matches!(token, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

fn ident_text(token: Option<&TokenTree>) -> Option<String> {
    match token {
        Some(TokenTree::Ident(ident)) => Some(ident.to_string()),
        _ => None,
    }
}

/// Consume leading attributes, folding any `#[serde(...)]` content into the
/// returned summary. `#[doc]`, `#[default]` and the rest are skipped.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    while is_punct(tokens.get(*i), '#') {
        let Some(TokenTree::Group(group)) = tokens.get(*i + 1) else {
            panic!("serde shim derive: `#` not followed by an attribute group");
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if ident_text(inner.first()).as_deref() == Some("serde") {
            let Some(TokenTree::Group(args)) = inner.get(1) else {
                panic!("serde shim derive: bare `#[serde]` attribute");
            };
            parse_serde_args(args, &mut out);
        }
        *i += 2;
    }
    out
}

fn parse_serde_args(args: &proc_macro::Group, out: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match ident_text(toks.get(i)).as_deref() {
            Some("default") => {
                out.default = true;
                i += 1;
            }
            Some("rename_all") => {
                if !is_punct(toks.get(i + 1), '=') {
                    panic!("serde shim derive: expected `rename_all = \"...\"`");
                }
                let style = toks.get(i + 2).map(|t| t.to_string()).unwrap_or_default();
                if style != "\"snake_case\"" {
                    panic!("serde shim derive: only rename_all = \"snake_case\" is supported, got {style}");
                }
                out.rename_all_snake = true;
                i += 3;
            }
            other => panic!(
                "serde shim derive: unsupported #[serde(...)] item {:?}",
                other.unwrap_or("<non-ident>")
            ),
        }
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if ident_text(tokens.get(*i)).as_deref() == Some("pub") {
        *i += 1;
        if let Some(TokenTree::Group(group)) = tokens.get(*i) {
            if group.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (pos, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if pos > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn wire_name(name: &str, snake: bool) -> String {
    if snake {
        snake_case(name)
    } else {
        name.to_owned()
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container = take_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = ident_text(tokens.get(i))
        .unwrap_or_else(|| panic!("serde shim derive: expected `struct` or `enum`"));
    i += 1;
    let name = ident_text(tokens.get(i))
        .unwrap_or_else(|| panic!("serde shim derive: expected the item name"));
    i += 1;
    if is_punct(tokens.get(i), '<') {
        panic!("serde shim derive: generic types are not supported (on `{name}`)");
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        panic!("serde shim derive: `{name}` has no braced body (tuple/unit items unsupported)");
    };
    if body.delimiter() != Delimiter::Brace {
        panic!("serde shim derive: `{name}` must have a braced body");
    }
    let body = match keyword.as_str() {
        "struct" => Body::Struct(parse_fields(body, container.rename_all_snake)),
        "enum" => Body::Enum(parse_variants(body, container.rename_all_snake)),
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Item { name, body }
}

fn parse_fields(group: &proc_macro::Group, snake: bool) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = ident_text(tokens.get(i))
            .unwrap_or_else(|| panic!("serde shim derive: expected a field name"));
        i += 1;
        if !is_punct(tokens.get(i), ':') {
            panic!("serde shim derive: expected `:` after field `{name}`");
        }
        i += 1;
        // The type runs to the next comma outside angle brackets.
        let mut depth = 0i32;
        let mut ty_tokens: Vec<&TokenTree> = Vec::new();
        while let Some(token) = tokens.get(i) {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    ',' if depth == 0 => break,
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            ty_tokens.push(token);
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // the comma
        }
        let is_option = ident_text(ty_tokens.first().copied()).as_deref() == Some("Option")
            && is_punct(ty_tokens.get(1).copied(), '<');
        let ty = ty_tokens.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ");
        fields.push(Field {
            wire: wire_name(&name, snake),
            name,
            ty,
            has_default: attrs.default,
            is_option,
        });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group, snake: bool) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(tokens.get(i))
            .unwrap_or_else(|| panic!("serde shim derive: expected a variant name"));
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(payload)) if payload.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = payload.stream().into_iter().collect();
                let mut depth = 0i32;
                for token in &inner {
                    if let TokenTree::Punct(p) = token {
                        match p.as_char() {
                            ',' if depth == 0 => panic!(
                                "serde shim derive: tuple variant `{name}` unsupported (newtype only)"
                            ),
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            _ => {}
                        }
                    }
                }
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(payload)) if payload.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(payload, snake);
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if is_punct(tokens.get(i), '=') {
            // Explicit discriminant (e.g. `Posix = 0`): irrelevant to the
            // wire format, skip to the variant separator.
            i += 1;
            while i < tokens.len() && !is_punct(tokens.get(i), ',') {
                i += 1;
            }
        }
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { wire: wire_name(&name, snake), name, kind });
    }
    variants
}

// ---- Serialize codegen ---------------------------------------------------

fn serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut out = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for f in fields {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{}\", &self.{})?;\n",
                    f.wire, f.name
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__state)");
            out
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let wire = &v.wire;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{wire}\"),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(__field0) => ::serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{wire}\", __field0),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings =
                            fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                        let mut inner = format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut __state = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{wire}\", {}usize)?;\n",
                            fields.len()
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{}\", {})?;\n",
                                f.wire, f.name
                            ));
                        }
                        inner.push_str("::serde::ser::SerializeStructVariant::end(__state)\n}\n");
                        arms.push_str(&inner);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

// ---- Deserialize codegen -------------------------------------------------

/// The `visit_map` interior shared by struct bodies and struct-variant
/// payloads: accumulate known fields, skip unknown ones, then build `ctor`.
fn visit_map_body(ctor: &str, fields: &[Field]) -> String {
    let mut decls = String::new();
    let mut arms = String::new();
    let mut builds = String::new();
    for f in fields {
        let fname = &f.name;
        let wire = &f.wire;
        let ty = &f.ty;
        decls.push_str(&format!(
            "let mut __field_{fname}: ::core::option::Option<{ty}> = ::core::option::Option::None;\n"
        ));
        arms.push_str(&format!(
            "\"{wire}\" => {{ __field_{fname} = ::core::option::Option::Some(__map.next_value()?); }}\n"
        ));
        let missing = if f.is_option {
            "::core::option::Option::None".to_owned()
        } else if f.has_default {
            "::core::default::Default::default()".to_owned()
        } else {
            format!(
                "return ::core::result::Result::Err(::serde::de::Error::missing_field(\"{wire}\"))"
            )
        };
        builds.push_str(&format!(
            "{fname}: match __field_{fname} {{\n\
             ::core::option::Option::Some(__v) => __v,\n\
             ::core::option::Option::None => {missing},\n\
             }},\n"
        ));
    }
    format!(
        "{decls}\
         while let ::core::option::Option::Some(__key) = __map.next_key::<::std::string::String>()? {{\n\
         match __key.as_str() {{\n\
         {arms}\
         _ => {{ let _ = __map.next_value::<::serde::de::IgnoredAny>()?; }}\n\
         }}\n\
         }}\n\
         ::core::result::Result::Ok({ctor} {{\n{builds}}})"
    )
}

fn map_visitor(
    visitor: &str,
    value_ty: &str,
    expect: &str,
    ctor: &str,
    fields: &[Field],
) -> String {
    let body = visit_map_body(ctor, fields);
    format!(
        "struct {visitor};\n\
         impl<'de> ::serde::de::Visitor<'de> for {visitor} {{\n\
         type Value = {value_ty};\n\
         fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
         __f.write_str(\"{expect}\")\n\
         }}\n\
         fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

fn deserialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let visitor = map_visitor("__Visitor", name, &format!("struct {name}"), name, fields);
            format!("{visitor}__deserializer.deserialize_map(__Visitor)")
        }
        Body::Enum(variants) => {
            let mut variant_visitors = String::new();
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            let mut has_unit = false;
            let mut has_data = false;
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let wire = &v.wire;
                match &v.kind {
                    VariantKind::Unit => {
                        has_unit = true;
                        unit_arms.push_str(&format!(
                            "\"{wire}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                        ));
                        data_arms.push_str(&format!(
                            "\"{wire}\" => {{ let _ = __map.next_value::<::serde::de::IgnoredAny>()?; {name}::{vname} }}\n"
                        ));
                    }
                    VariantKind::Newtype => {
                        has_data = true;
                        data_arms.push_str(&format!(
                            "\"{wire}\" => {name}::{vname}(__map.next_value()?),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        has_data = true;
                        let visitor = format!("__Variant{idx}Visitor");
                        variant_visitors.push_str(&map_visitor(
                            &visitor,
                            name,
                            &format!("struct variant {name}::{vname}"),
                            &format!("{name}::{vname}"),
                            fields,
                        ));
                        data_arms.push_str(&format!(
                            "\"{wire}\" => __map.next_value_with({visitor})?,\n"
                        ));
                    }
                }
            }
            let visit_str = if has_unit {
                format!(
                    "fn visit_str<__E: ::serde::de::Error>(self, __v: &str) -> ::core::result::Result<{name}, __E> {{\n\
                     match __v {{\n\
                     {unit_arms}\
                     __other => ::core::result::Result::Err(::serde::de::Error::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                     }}\n\
                     }}\n"
                )
            } else {
                String::new()
            };
            let visit_map = if has_data {
                format!(
                    "fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) -> ::core::result::Result<{name}, __A::Error> {{\n\
                     let __key = match __map.next_key::<::std::string::String>()? {{\n\
                     ::core::option::Option::Some(__k) => __k,\n\
                     ::core::option::Option::None => return ::core::result::Result::Err(::serde::de::Error::custom(\"expected a variant name\")),\n\
                     }};\n\
                     let __value = match __key.as_str() {{\n\
                     {data_arms}\
                     __other => return ::core::result::Result::Err(::serde::de::Error::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                     }};\n\
                     ::core::result::Result::Ok(__value)\n\
                     }}\n"
                )
            } else {
                String::new()
            };
            format!(
                "{variant_visitors}\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str(\"enum {name}\")\n\
                 }}\n\
                 {visit_str}\
                 {visit_map}\
                 }}\n\
                 __deserializer.deserialize_any(__Visitor)"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) -> ::core::result::Result<{name}, __D::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
