//! Deserialization: a recursive-descent parser to [`Value`], and a
//! deserializer that replays a `Value` tree into any `Deserialize` impl.

use std::collections::btree_map;
use std::collections::BTreeMap;

use serde::de::{Error as _, Visitor};

use crate::{Error, Number, Value};

/// Parse a JSON document into any deserializable type.
pub fn from_str<T: serde::de::DeserializeOwned>(input: &str) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(parse(input)?))
}

// ---- text -> Value -------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", char::from(b), self.pos)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(Error::new(format!("unexpected byte `{}` at {}", char::from(other), self.pos)))
            }
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                char::from(other)
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character; the input is a &str so
                    // byte-stepping to the next char boundary is safe.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = rest
                        .get(..len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|c| std::str::from_utf8(c).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u16::from_str_radix(chunk, 16)
            .map_err(|_| Error::new(format!("invalid \\u escape `{chunk}`")))?;
        self.pos += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if !self.eat_keyword("\\u") {
                return Err(Error::new("unpaired surrogate"));
            }
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(Error::new("invalid low surrogate"));
            }
            let code = 0x10000 + ((u32::from(high) - 0xD800) << 10) + (u32::from(low) - 0xDC00);
            char::from_u32(code).ok_or_else(|| Error::new("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&high) {
            Err(Error::new("unpaired low surrogate"))
        } else {
            char::from_u32(u32::from(high)).ok_or_else(|| Error::new("invalid \\u escape"))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::Float(
                text.parse::<f64>().map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Number::from_i64(v),
                // Magnitude overflow degrades to float, as in serde_json
                // without arbitrary_precision.
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---- Value -> Deserialize ------------------------------------------------

/// Replays an owned [`Value`] into a visitor.
pub struct ValueDeserializer(pub Value);

impl<'de> serde::Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0 {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Number(Number::PosInt(v)) => visitor.visit_u64(v),
            Value::Number(Number::NegInt(v)) => visitor.visit_i64(v),
            Value::Number(Number::Float(v)) => visitor.visit_f64(v),
            Value::String(s) => visitor.visit_string(s),
            Value::Array(items) => visitor.visit_seq(SeqDeserializer(items.into_iter())),
            Value::Object(entries) => {
                visitor.visit_map(MapDeserializer { iter: entries.into_iter(), pending: None })
            }
        }
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0 {
            Value::Null => visitor.visit_none(),
            other => visitor.visit_some(ValueDeserializer(other)),
        }
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
}

struct SeqDeserializer(std::vec::IntoIter<Value>);

impl<'de> serde::de::SeqAccess<'de> for SeqDeserializer {
    type Error = Error;

    fn next_element<T: serde::Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        match self.0.next() {
            Some(value) => T::deserialize(ValueDeserializer(value)).map(Some),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.0.len())
    }
}

struct MapDeserializer {
    iter: btree_map::IntoIter<String, Value>,
    pending: Option<Value>,
}

impl<'de> serde::de::MapAccess<'de> for MapDeserializer {
    type Error = Error;

    fn next_key<K: serde::Deserialize<'de>>(&mut self) -> Result<Option<K>, Error> {
        match self.iter.next() {
            Some((key, value)) => {
                self.pending = Some(value);
                K::deserialize(KeyDeserializer(key)).map(Some)
            }
            None => Ok(None),
        }
    }

    fn next_value<V: serde::Deserialize<'de>>(&mut self) -> Result<V, Error> {
        let value =
            self.pending.take().ok_or_else(|| Error::new("next_value called before next_key"))?;
        V::deserialize(ValueDeserializer(value))
    }

    fn next_value_with<V: Visitor<'de>>(&mut self, visitor: V) -> Result<V::Value, Error> {
        let value = self
            .pending
            .take()
            .ok_or_else(|| Error::new("next_value_with called before next_key"))?;
        serde::Deserializer::deserialize_any(ValueDeserializer(value), visitor)
    }
}

/// Deserializes a map key. Keys are always JSON strings, but integer-keyed
/// maps round-trip by re-parsing the text when an integer entry point asks.
struct KeyDeserializer(String);

impl KeyDeserializer {
    fn parse_number(&self) -> Result<Value, Error> {
        if let Ok(v) = self.0.parse::<u64>() {
            return Ok(Value::Number(Number::PosInt(v)));
        }
        if let Ok(v) = self.0.parse::<i64>() {
            return Ok(Value::Number(Number::from_i64(v)));
        }
        self.0
            .parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::new(format!("invalid numeric key `{}`", self.0)))
    }
}

impl<'de> serde::Deserializer<'de> for KeyDeserializer {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_string(self.0)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0.as_str() {
            "true" => visitor.visit_bool(true),
            "false" => visitor.visit_bool(false),
            other => Err(Error::custom(format!("invalid boolean key `{other}`"))),
        }
    }

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        ValueDeserializer(self.parse_number()?).deserialize_i64(visitor)
    }

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        ValueDeserializer(self.parse_number()?).deserialize_u64(visitor)
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        ValueDeserializer(self.parse_number()?).deserialize_f64(visitor)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_some(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Error> {
        Err(Error::custom("JSON object keys cannot be sequences"))
    }

    fn deserialize_map<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Error> {
        Err(Error::custom("JSON object keys cannot be maps"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
}

// ---- Deserialize for Value -----------------------------------------------

struct ValueVisitor;

impl<'de> Visitor<'de> for ValueVisitor {
    type Value = Value;

    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any JSON value")
    }

    fn visit_bool<E: serde::de::Error>(self, v: bool) -> Result<Value, E> {
        Ok(Value::Bool(v))
    }

    fn visit_i64<E: serde::de::Error>(self, v: i64) -> Result<Value, E> {
        Ok(Value::Number(Number::from_i64(v)))
    }

    fn visit_u64<E: serde::de::Error>(self, v: u64) -> Result<Value, E> {
        Ok(Value::Number(Number::PosInt(v)))
    }

    fn visit_f64<E: serde::de::Error>(self, v: f64) -> Result<Value, E> {
        Ok(Value::Number(Number::Float(v)))
    }

    fn visit_str<E: serde::de::Error>(self, v: &str) -> Result<Value, E> {
        Ok(Value::String(v.to_owned()))
    }

    fn visit_unit<E: serde::de::Error>(self) -> Result<Value, E> {
        Ok(Value::Null)
    }

    fn visit_none<E: serde::de::Error>(self) -> Result<Value, E> {
        Ok(Value::Null)
    }

    fn visit_some<D: serde::Deserializer<'de>>(self, deserializer: D) -> Result<Value, D::Error> {
        serde::Deserialize::deserialize(deserializer)
    }

    fn visit_seq<A: serde::de::SeqAccess<'de>>(self, mut seq: A) -> Result<Value, A::Error> {
        let mut items = Vec::new();
        while let Some(item) = seq.next_element::<Value>()? {
            items.push(item);
        }
        Ok(Value::Array(items))
    }

    fn visit_map<A: serde::de::MapAccess<'de>>(self, mut map: A) -> Result<Value, A::Error> {
        let mut entries = BTreeMap::new();
        while let Some(key) = map.next_key::<String>()? {
            let value = map.next_value::<Value>()?;
            entries.insert(key, value);
        }
        Ok(Value::Object(entries))
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Value, D::Error> {
        deserializer.deserialize_any(ValueVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc: Value =
            from_str(r#"{"a": [1, -2, 3.5], "b": {"c": null, "d": "x\ny"}, "e": true}"#).unwrap();
        assert_eq!(doc["a"][0], 1);
        assert_eq!(doc["a"][1], -2);
        assert_eq!(doc["a"][2], 3.5);
        assert!(doc["b"]["c"].is_null());
        assert_eq!(doc["b"]["d"], "x\ny");
        assert_eq!(doc["e"], true);
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs_decode() {
        let doc: Value = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(doc, "Aé😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>(r#""\ud800""#).is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(from_str::<Value>(&deep).is_err());
    }

    #[test]
    fn numbers_round_trip_through_text() {
        let doc: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(doc, 18_446_744_073_709_551_615u64);
        let doc: Value = from_str("-9007199254740993").unwrap();
        assert_eq!(doc, -9_007_199_254_740_993i64);
        let doc: Value = from_str("1e3").unwrap();
        assert_eq!(doc, 1000.0f64);
    }
}
