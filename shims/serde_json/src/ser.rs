//! Serialization: a `Value`-building [`serde::Serializer`] plus compact and
//! pretty writers over the finished tree.

use std::collections::BTreeMap;

use crate::{Error, Number, Value};

/// Render any serializable value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_compact(&value.serialize(ValueSerializer)?))
}

/// Render any serializable value as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(ValueSerializer)?, Some(0));
    Ok(out)
}

pub(crate) fn write_compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None);
    out
}

/// `indent` is `Some(depth)` in pretty mode, `None` in compact mode.
fn write_value(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                open_line(out, indent);
                write_value(out, item, indent.map(|d| d + 1));
            }
            close_line(out, indent);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                open_line(out, indent);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|d| d + 1));
            }
            close_line(out, indent);
            out.push('}');
        }
    }
}

fn open_line(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..=depth {
            out.push_str("  ");
        }
    }
}

fn close_line(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        // `{:?}` keeps a trailing `.0` on integral floats and round-trips,
        // matching serde_json's rendering closely enough for goldens.
        Number::Float(v) => out.push_str(&format!("{v:?}")),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- the Value-building serializer ---------------------------------------

/// Serializes any `serde::Serialize` type into a [`Value`] tree.
pub struct ValueSerializer;

/// Map/struct keys must render as JSON strings; numbers are stringified the
/// way serde_json does for integer-keyed maps.
fn key_string(value: Value) -> Result<String, Error> {
    match value {
        Value::String(s) => Ok(s),
        Value::Number(n) => {
            let mut out = String::new();
            write_number(&mut out, n);
            Ok(out)
        }
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::new(format!("JSON object key must be a string, got {other:?}"))),
    }
}

pub struct SeqBuilder {
    items: Vec<Value>,
}

impl serde::ser::SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: serde::Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

pub struct MapBuilder {
    entries: BTreeMap<String, Value>,
    /// `Some(variant)` when building an externally-tagged struct variant:
    /// `end` wraps the map as `{"Variant": {...}}`.
    wrap_variant: Option<&'static str>,
}

impl MapBuilder {
    fn finish(self) -> Value {
        let object = Value::Object(self.entries);
        match self.wrap_variant {
            Some(variant) => {
                let mut outer = BTreeMap::new();
                outer.insert(variant.to_owned(), object);
                Value::Object(outer)
            }
            None => object,
        }
    }
}

impl serde::ser::SerializeMap for MapBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_entry<K: serde::Serialize + ?Sized, V: serde::Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        let key = key_string(key.serialize(ValueSerializer)?)?;
        self.entries.insert(key, value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(self.finish())
    }
}

impl serde::ser::SerializeStruct for MapBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: serde::Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entries.insert(key.to_owned(), value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(self.finish())
    }
}

impl serde::ser::SerializeStructVariant for MapBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: serde::Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        serde::ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<Value, Error> {
        Ok(self.finish())
    }
}

impl serde::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqBuilder;
    type SerializeMap = MapBuilder;
    type SerializeStruct = MapBuilder;
    type SerializeStructVariant = MapBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(Number::from_i64(v)))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(Number::PosInt(v)))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        // serde_json renders non-finite floats as null.
        if v.is_finite() {
            Ok(Value::Number(Number::Float(v)))
        } else {
            Ok(Value::Null)
        }
    }

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_owned()))
    }

    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_some<T: serde::Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(ValueSerializer)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_owned()))
    }

    fn serialize_newtype_variant<T: serde::Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        let mut outer = BTreeMap::new();
        outer.insert(variant.to_owned(), value.serialize(ValueSerializer)?);
        Ok(Value::Object(outer))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder { items: Vec::with_capacity(len.unwrap_or(0)) })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<MapBuilder, Error> {
        Ok(MapBuilder { entries: BTreeMap::new(), wrap_variant: None })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<MapBuilder, Error> {
        Ok(MapBuilder { entries: BTreeMap::new(), wrap_variant: None })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<MapBuilder, Error> {
        Ok(MapBuilder { entries: BTreeMap::new(), wrap_variant: Some(variant) })
    }
}

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(Number::PosInt(v)) => serializer.serialize_u64(*v),
            Value::Number(Number::NegInt(v)) => serializer.serialize_i64(*v),
            Value::Number(Number::Float(v)) => serializer.serialize_f64(*v),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => items.serialize(serializer),
            Value::Object(entries) => entries.serialize(serializer),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{json, to_string, to_string_pretty, Value};

    #[test]
    fn compact_rendering_matches_serde_json_conventions() {
        let doc = json!({
            "b": 1,
            "a": [1.5, true, null],
            "s": "line\n\"quoted\"\\",
        });
        // BTreeMap backing means keys come out sorted, as with default
        // serde_json Map.
        assert_eq!(
            to_string(&doc).unwrap(),
            r#"{"a":[1.5,true,null],"b":1,"s":"line\n\"quoted\"\\"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents_by_two_spaces() {
        let doc = json!({"a": 1, "b": {"c": [1, 2]}});
        let pretty = to_string_pretty(&doc).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": {\n    \"c\": [\n      1,\n      2\n    ]\n  }\n}"
        );
    }

    #[test]
    fn integral_floats_keep_their_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn empty_containers_render_compactly_even_in_pretty_mode() {
        let doc = json!({"a": Vec::<u64>::new()});
        assert_eq!(to_string_pretty(&doc).unwrap(), "{\n  \"a\": []\n}");
        assert_eq!(to_string(&Value::Object(Default::default())).unwrap(), "{}");
    }
}
