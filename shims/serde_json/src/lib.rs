//! Offline shim for the `serde_json` crate.
//!
//! Everything funnels through [`Value`]: serialization builds a `Value` tree
//! and renders it; deserialization parses to a `Value` tree and replays it
//! into the target's `Deserialize` impl. Matching real serde_json defaults,
//! objects are backed by `BTreeMap` (sorted keys) and non-finite floats
//! serialize as `null`.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub mod de;
pub mod ser;

pub use de::from_str;
pub use ser::{to_string, to_string_pretty};

/// Any valid JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// A JSON number: non-negative integers normalize to `PosInt`, so `NegInt`
/// is always strictly negative. Integers and floats never compare equal,
/// matching serde_json.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    pub(crate) fn from_i64(v: i64) -> Number {
        match u64::try_from(v) {
            Ok(u) => Number::PosInt(u),
            Err(_) => Number::NegInt(v),
        }
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_integer {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                match self {
                    Value::Number(n) => match i64::try_from(*other) {
                        Ok(v) => *n == Number::from_i64(v),
                        // Only u64 values above i64::MAX land here.
                        Err(_) => n.as_u64() == u64::try_from(*other).ok(),
                    },
                    _ => false,
                }
            }
        }
    )*};
}

eq_integer!(i32, i64, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(v)) if v == other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&ser::write_compact(self))
    }
}

/// Shared error type for both directions, as in real serde_json.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error::new(msg.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree. Serialization into
/// the value builder cannot fail for the types this workspace uses; an
/// impl-raised error degrades to `Null` rather than panicking.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize(ser::ValueSerializer).unwrap_or(Value::Null)
}

/// Build a [`Value`] from JSON-shaped syntax. Object and array literals
/// recurse; any other value position takes a Rust expression through
/// [`to_value`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($body:tt)+ }) => {{
        let mut __object = ::std::collections::BTreeMap::new();
        $crate::json_entries!(__object; $($body)+);
        $crate::Value::Object(__object)
    }};
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($body:tt)+ ]) => {
        $crate::json_elements!([] $($body)+)
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: munches array elements, accumulating
/// finished element expressions in the leading `[...]` so the terminal rule
/// can emit one `vec![...]` literal.
#[doc(hidden)]
#[macro_export]
macro_rules! json_elements {
    ([$($elem:expr),*]) => {
        $crate::Value::Array(::std::vec![$($elem),*])
    };
    ([$($elem:expr),*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_elements!([$($elem,)* $crate::json!({ $($inner)* })] $($($rest)*)?)
    };
    ([$($elem:expr),*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_elements!([$($elem,)* $crate::json!([ $($inner)* ])] $($($rest)*)?)
    };
    ([$($elem:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_elements!([$($elem,)* $crate::Value::Null] $($($rest)*)?)
    };
    ([$($elem:expr),*] $value:expr , $($rest:tt)*) => {
        $crate::json_elements!([$($elem,)* $crate::to_value(&$value)] $($rest)*)
    };
    ([$($elem:expr),*] $value:expr) => {
        $crate::json_elements!([$($elem,)* $crate::to_value(&$value)])
    };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs into a
/// map. The brace/bracket/null rules must precede the `expr` rules so nested
/// literals recurse instead of hard-failing expression parsing.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident;) => {};
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
        $crate::json_entries!($map; $($rest)*);
    };
    ($map:ident; $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_objects_and_exprs() {
        let tid = 3u64;
        let doc = json!({
            "name": format!("worker-{tid}"),
            "ph": "X",
            "args": { "trace": 2, "nested": { "deep": null } },
            "list": [1, 2, 3],
            "tail": tid,
        });
        assert_eq!(doc["name"], "worker-3");
        assert_eq!(doc["ph"], "X");
        assert_eq!(doc["args"]["trace"], 2);
        assert!(doc["args"]["nested"]["deep"].is_null());
        assert_eq!(doc["list"][1], 2);
        assert_eq!(doc["tail"], 3u64);
    }

    #[test]
    fn missing_keys_index_to_null() {
        let doc = json!({"a": 1});
        assert!(doc["nope"].is_null());
        assert!(doc["nope"]["deeper"].is_null());
    }

    #[test]
    fn integers_and_floats_are_distinct_numbers() {
        assert_ne!(to_value(&1i64), to_value(&1.0f64));
        assert_eq!(to_value(&1i64), to_value(&1u64));
        assert_eq!(to_value(&-3i64), Value::Number(Number::NegInt(-3)));
    }
}
