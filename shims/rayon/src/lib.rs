//! Offline shim for the `rayon` crate.
//!
//! Implements the slice of rayon this workspace uses: a parallel map over
//! `Range<usize>` collected into a `Vec`, explicit thread pools with
//! `install`, and the `current_num_threads` / `current_thread_index`
//! introspection the executor uses for worker lanes.
//!
//! Execution model: `install` only sets a thread-local *ambient* thread
//! count on the calling thread; the fan-out happens inside `collect`, which
//! spawns that many scoped workers pulling fixed-size index chunks off a
//! shared atomic cursor. Each worker keeps `(chunk_start, results)` pairs;
//! the chunks are sorted by start offset and flattened, so the collected
//! order is always the source order no matter how the chunks interleaved.
//! A worker panic is re-raised on the caller after the scope joins.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::IntoParallelIterator;
}

thread_local! {
    /// Thread count requested by an enclosing [`ThreadPool::install`].
    static AMBIENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// This thread's worker slot, when it is a parallel-map worker.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// The thread count parallel operations on this thread will use: the
/// enclosing pool's if inside [`ThreadPool::install`], one per core
/// otherwise.
pub fn current_num_threads() -> usize {
    AMBIENT_THREADS.with(|a| a.get()).unwrap_or_else(default_threads)
}

/// The calling thread's worker slot within a parallel operation, or `None`
/// on threads that are not pool workers (matching rayon's contract).
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

/// Pool construction error. The shim's pools hold no OS resources until a
/// parallel operation runs, so building never actually fails; the type
/// exists so call sites written against real rayon compile unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Thread count for the pool; `0` (the default) means one per core.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        Ok(ThreadPool { threads })
    }
}

/// An explicit-width pool. Holds no threads of its own: it scopes the
/// ambient thread count that `collect` fans out to.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Restores the previous ambient thread count even if `op` panics.
struct AmbientGuard(Option<usize>);

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        let prev = self.0;
        AMBIENT_THREADS.with(|a| a.set(prev));
    }
}

impl ThreadPool {
    /// Run `op` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = AMBIENT_THREADS.with(|a| a.replace(Some(self.threads)));
        let _guard = AmbientGuard(prev);
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Conversion into a parallel iterator, for the types the workspace maps
/// over (currently `Range<usize>`).
pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { start: self.start, end: self.end }
    }
}

/// A parallel iterator over an index range.
#[derive(Debug)]
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParRange {
    pub fn map<R, F>(self, f: F) -> ParRangeMap<R, F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap { start: self.start, end: self.end, f, _out: PhantomData }
    }
}

/// A mapped parallel range, ready to collect.
pub struct ParRangeMap<R, F> {
    start: usize,
    end: usize,
    f: F,
    _out: PhantomData<fn() -> R>,
}

impl<R, F> ParRangeMap<R, F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Run the map with the ambient thread count and collect the results in
    /// source order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(run_chunked(self.start, self.end, &self.f))
    }
}

/// Chunked work-sharing executor: `workers` scoped threads grab fixed-size
/// index chunks off an atomic cursor; results come back keyed by chunk
/// start and are reassembled in order.
fn run_chunked<R, F>(start: usize, end: usize, f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let total = end.saturating_sub(start);
    if total == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().max(1).min(total);
    if workers == 1 {
        // Serial fast path, on the calling thread as worker 0.
        let prev = WORKER_INDEX.with(|w| w.replace(Some(0)));
        let out = (start..end).map(f).collect();
        WORKER_INDEX.with(|w| w.set(prev));
        return out;
    }

    // Several chunks per worker so a slow item doesn't idle the rest.
    let chunk = total.div_ceil(workers * 4).max(1);
    let cursor = AtomicUsize::new(0);
    let mut pieces: Vec<(usize, Vec<R>)> = Vec::new();
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|slot| {
                let cursor = &cursor;
                scope.spawn(move || {
                    WORKER_INDEX.with(|w| w.set(Some(slot)));
                    AMBIENT_THREADS.with(|a| a.set(Some(workers)));
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        // lint: allow(sync, "work-stealing cursor: each claimed range is disjoint by the fetch_add itself, and the produced pieces are published by the scoped-thread join, not by this counter")
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= total {
                            break;
                        }
                        let hi = (lo + chunk).min(total);
                        local.push((lo, (start + lo..start + hi).map(f).collect()));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mut local) => pieces.append(&mut local),
                Err(payload) => panic = Some(payload),
            }
        }
    });
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    pieces.sort_by_key(|&(lo, _)| lo);
    pieces.into_iter().flat_map(|(_, chunk)| chunk).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    #[test]
    fn collect_preserves_source_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..1000).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<usize>>());
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn install_scopes_the_ambient_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let before = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn worker_indices_are_dense_and_in_range() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen = Mutex::new(BTreeSet::new());
        let out: Vec<usize> = pool.install(|| {
            (0..256)
                .into_par_iter()
                .map(|i| {
                    let slot = current_thread_index().expect("inside a parallel map");
                    seen.lock().unwrap().insert(slot);
                    i
                })
                .collect()
        });
        assert_eq!(out.len(), 256);
        let seen = seen.into_inner().unwrap();
        assert!(seen.iter().all(|&s| s < 4), "{seen:?}");
        assert!(!seen.is_empty());
    }

    #[test]
    fn outside_a_parallel_map_there_is_no_worker_index() {
        assert_eq!(current_thread_index(), None);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = pool.install(|| {
                (0..64).into_par_iter().map(|i| if i == 33 { panic!("boom") } else { i }).collect()
            });
        });
        assert!(result.is_err());
    }
}
