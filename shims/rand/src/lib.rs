//! Offline shim for the `rand` crate.
//!
//! The build container has no route to the crates registry, so every
//! external dependency is replaced by a small in-repo crate (see
//! `shims/README.md`). This one provides the deterministic-RNG surface the
//! workspace uses:
//!
//! * [`RngCore`] / [`SeedableRng`] — the core traits, with the PCG32-based
//!   [`SeedableRng::seed_from_u64`] expansion matching `rand_core` 0.6.
//! * [`Rng`] — `gen_range` over integer and float ranges (inclusive and
//!   half-open), `gen`, `gen_bool`, blanket-implemented for every
//!   [`RngCore`].
//! * [`rngs::StdRng`] — ChaCha12-backed, seedable.
//! * [`chacha::ChaChaRng`] — the ChaCha core re-exported by the
//!   `rand_chacha` shim, pinned to published test vectors.
//! * [`distributions`] — [`Distribution`], [`Standard`], [`WeightedIndex`].
//! * [`seq::SliceRandom`] — Fisher–Yates [`shuffle`].
//!
//! Streams are internally consistent and stable forever (they feed the
//! golden snapshots in `tests/golden/`), but are *not* promised to be
//! bit-identical to the real `rand` crate's distributions: only the raw
//! ChaCha keystream is vector-pinned. Everything downstream of the
//! keystream is this shim's own (documented, frozen) arithmetic.
//!
//! [`Distribution`]: distributions::Distribution
//! [`Standard`]: distributions::Standard
//! [`WeightedIndex`]: distributions::WeightedIndex
//! [`shuffle`]: seq::SliceRandom::shuffle

#![forbid(unsafe_code)]

pub mod chacha;

/// The core of every random number generator: a stream of words.
pub trait RngCore {
    /// The next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;

    /// The next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with the next bytes of the stream.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type (32 bytes for every generator here).
    type Seed: Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via the PCG32 step used by
    /// `rand_core` 0.6, so seeds written in tests and benches select the
    /// same generator state the real crate would.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 1_442_695_040_888_963_407;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            let len = chunk.len();
            chunk.copy_from_slice(&word.to_le_bytes()[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Exclusive scaling factor turning 53 random bits into `[0, 1)`.
const F64_UNIT: f64 = 1.0 / (1u64 << 53) as f64;

/// A uniform `[0, 1)` double from the top 53 bits of one output word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * F64_UNIT
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "gen_range called with an empty range");
                let idx = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (self.start as i128 + idx) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with an empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let idx = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (lo as i128 + idx) as $ty
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let unit = unit_f64(rng) as $ty;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with an empty range");
                // 53 bits scaled into [0, 1]: the closed upper end is
                // reachable, and a degenerate lo..=lo range returns lo.
                let unit = ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64) as $ty;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A value of the [`Standard`] distribution for `T` (`f64` in
    /// `[0, 1)`, integers over the full domain, fair `bool`).
    ///
    /// [`Standard`]: distributions::Standard
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Seedable generator types.

    use crate::chacha::ChaChaRng;
    use crate::{RngCore, SeedableRng};

    /// The standard deterministic generator: ChaCha with 12 rounds, like
    /// `rand` 0.8's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(ChaChaRng<12>);

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            StdRng(ChaChaRng::from_seed(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

pub mod distributions {
    //! Value distributions over a generator.

    use std::borrow::Borrow;

    use crate::{unit_f64, Rng};

    /// A way of turning generator words into values of `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The canonical distribution per type: full-domain integers, `[0, 1)`
    /// floats, fair booleans.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($ty:ty: $src:ident),*) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.$src() as $ty
                }
            }
        )*};
    }

    standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, i8: next_u32, i16: next_u32,
        i32: next_u32, u64: next_u64, i64: next_u64, usize: next_u64, isize: next_u64);

    /// Why a [`WeightedIndex`] could not be built.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// Every weight was zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => f.write_str("no weights"),
                WeightedError::InvalidWeight => f.write_str("negative or non-finite weight"),
                WeightedError::AllWeightsZero => f.write_str("all weights zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Index sampling proportional to a list of non-negative weights.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        /// Strictly non-decreasing cumulative weights; the last entry is
        /// the positive total.
        cumulative: Vec<f64>,
    }

    impl WeightedIndex {
        /// Build from anything yielding borrowable `f64` weights.
        pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !(w.is_finite() && w >= 0.0) {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            // `total` is positive by construction, so the last element can
            // never be selected by `partition_point` with x < total.
            let total = match self.cumulative.last() {
                Some(&t) => t,
                None => return 0,
            };
            let x = unit_f64(rng) * total;
            self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use crate::Rng;

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedError, WeightedIndex};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let x = rng.gen_range(0.0..=0.0f64);
            assert_eq!(x, 0.0);
        }
    }

    #[test]
    fn gen_range_covers_both_ends_of_inclusive_ints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0), "p = 0 must never yield true");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle leaving order intact is ~impossible");
    }

    #[test]
    fn weighted_index_follows_weights_and_skips_zeros() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = WeightedIndex::new([1.0f64, 0.0, 3.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight must never be drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio = {ratio}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert_eq!(WeightedIndex::new(&[] as &[f64]).unwrap_err(), WeightedError::NoItem);
        assert_eq!(WeightedIndex::new([0.0f64, 0.0]).unwrap_err(), WeightedError::AllWeightsZero);
        assert_eq!(WeightedIndex::new([1.0f64, -0.5]).unwrap_err(), WeightedError::InvalidWeight);
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
