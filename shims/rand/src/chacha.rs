//! The ChaCha stream cipher core, word-compatible with `rand_chacha`.
//!
//! Layout follows D. J. Bernstein's original ChaCha (and `rand_chacha`):
//! constants ‖ 256-bit key ‖ 64-bit block counter ‖ 64-bit nonce, all
//! little-endian `u32` words. The keystream is the sequence of 64-byte
//! blocks with the counter incrementing once per block; [`RngCore`] output
//! consumes that byte stream front to back.
//!
//! Correctness is pinned by the published test vectors in
//! `tests/vectors.rs`: the IETF/djb all-zero ChaCha20 block and the ECRYPT
//! ChaCha8 256-bit-key vector.

use crate::{RngCore, SeedableRng};

/// `"expand 32-byte k"` as four little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `ROUNDS` rounds over `state`, plus the feed-forward.
fn block<const ROUNDS: usize>(state: &[u32; 16]) -> [u32; 16] {
    let mut w = *state;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    for (o, s) in w.iter_mut().zip(state.iter()) {
        *o = o.wrapping_add(*s);
    }
    w
}

/// A deterministic ChaCha keystream RNG with a const round count.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    state: [u32; 16],
    /// Current 64-byte output block, as bytes.
    buffer: [u8; 64],
    /// Next unread byte in `buffer`; 64 means exhausted.
    pos: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let words = block::<ROUNDS>(&self.state);
        for (i, w) in words.iter().enumerate() {
            self.buffer[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        self.pos = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }

    fn next_bytes<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        let mut filled = 0;
        while filled < N {
            if self.pos >= 64 {
                self.refill();
            }
            let take = (N - filled).min(64 - self.pos);
            out[filled..filled + take].copy_from_slice(&self.buffer[self.pos..self.pos + take]);
            self.pos += take;
            filled += take;
        }
        out
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaChaRng<ROUNDS> {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            let mut raw = [0u8; 4];
            raw.copy_from_slice(chunk);
            state[4 + i] = u32::from_le_bytes(raw);
        }
        // Words 12–15 (counter and nonce) start at zero.
        ChaChaRng { state, buffer: [0u8; 64], pos: 64 }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.next_bytes::<4>())
    }

    fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.next_bytes::<8>())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.pos >= 64 {
                self.refill();
            }
            let take = (dest.len() - filled).min(64 - self.pos);
            dest[filled..filled + take].copy_from_slice(&self.buffer[self.pos..self.pos + take]);
            self.pos += take;
            filled += take;
        }
    }
}
