//! Quickstart: build a tiny trace by hand, categorize it, read the report.
//!
//! ```sh
//! cargo run -p mosaic-examples --example quickstart
//! ```

use mosaic_core::{Categorizer, CategorizerConfig};
use mosaic_darshan::counter::PosixCounter as C;
use mosaic_darshan::counter::PosixFCounter as F;
use mosaic_darshan::job::JobHeader;
use mosaic_darshan::log::TraceLogBuilder;

fn main() {
    // A 64-rank job that ran for one hour: it read 2 GB of input right
    // after start and wrote 1 GB of results just before the end.
    let mut builder = TraceLogBuilder::new(
        JobHeader::new(4242, 1001, 64, 1_546_300_800, 1_546_304_400)
            .with_exe("/sw/apps/demo/solver --case quickstart"),
    );

    let input = builder.begin_record("/scratch/input/mesh.dat", -1);
    builder
        .record_mut(input)
        .set(C::Opens, 64)
        .set(C::Closes, 64)
        .set(C::Reads, 512)
        .set(C::BytesRead, 2 << 30)
        .setf(F::OpenStartTimestamp, 2.0)
        .setf(F::ReadStartTimestamp, 2.5)
        .setf(F::ReadEndTimestamp, 95.0)
        .setf(F::CloseEndTimestamp, 96.0);

    let output = builder.begin_record("/scratch/output/result.h5", -1);
    builder
        .record_mut(output)
        .set(C::Opens, 64)
        .set(C::Closes, 64)
        .set(C::Writes, 256)
        .set(C::BytesWritten, 1 << 30)
        .setf(F::OpenStartTimestamp, 3500.0)
        .setf(F::WriteStartTimestamp, 3501.0)
        .setf(F::WriteEndTimestamp, 3580.0)
        .setf(F::CloseEndTimestamp, 3581.0);

    let log = builder.finish();

    // The whole MOSAIC pipeline for one trace is two lines:
    let categorizer = Categorizer::new(CategorizerConfig::default());
    let report = categorizer.categorize_log(&log);

    println!("categories: {:?}", report.names());
    println!();
    println!("full JSON report:\n{}", report.to_json());

    assert!(report.names().iter().any(|n| n == "read_on_start"));
    assert!(report.names().iter().any(|n| n == "write_on_end"));
}
