//! Examples support shim (no library code).

#![forbid(unsafe_code)]
