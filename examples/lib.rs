//! Examples support shim (no library code).
