//! I/O-master (MPMD) pattern: rank 0 funnels all output while the other
//! ranks compute — a common pattern in older MPI codes, and one whose
//! Darshan signature differs sharply from collective I/O (a single
//! per-rank record instead of a shared rank −1 record).
//!
//! ```sh
//! cargo run -p mosaic-examples --example io_master
//! ```

use mosaic_core::Categorizer;
use mosaic_iosim::program::{FileSpec, Phase, Program};
use mosaic_iosim::{MachineConfig, Simulation};

fn main() {
    // 32 ranks, 10 rounds: everyone computes, rank 0 additionally gathers
    // and writes the round's results.
    let mut master_phases = Vec::new();
    let mut worker_phases = Vec::new();
    for round in 0..10u32 {
        master_phases.push(Phase::Compute { seconds: 60.0 });
        worker_phases.push(Phase::Compute { seconds: 60.0 });
        let file = FileSpec::shared(format!("/scratch/out/round{round:03}.dat"));
        master_phases.push(Phase::Open { file: file.clone() });
        master_phases.push(Phase::Write { file: file.clone(), bytes: 512 << 20 });
        master_phases.push(Phase::Close { file });
        master_phases.push(Phase::Barrier);
        worker_phases.push(Phase::Barrier);
    }
    let master = Program::new(master_phases);
    let worker = Program::new(worker_phases);

    let outcome = Simulation::new(MachineConfig::default(), 32, 11).run_mpmd(
        &[master, worker],
        |rank| usize::from(rank != 0),
        "/apps/legacy/funnel_sim",
    );

    println!(
        "simulated {:.0} s; {} records ({} from rank 0), {:.1} GiB written",
        outcome.makespan,
        outcome.trace.records().len(),
        outcome.trace.records().iter().filter(|r| r.rank == 0).count(),
        outcome.trace.total_bytes_written() as f64 / (1u64 << 30) as f64,
    );

    let report = Categorizer::default().categorize_log(&outcome.trace);
    println!("categories: {:?}", report.names());
    for p in &report.write.periodic {
        println!(
            "periodic write: {} rounds, period ≈ {:.0} s ({:?})",
            p.occurrences, p.period, p.magnitude
        );
    }

    // The funnel is periodic from rank 0 alone — no shared-file reduction
    // involved, because only one rank ever touches the files.
    assert!(outcome.trace.records().iter().all(|r| r.rank == 0));
    assert!(
        !report.write.periodic.is_empty(),
        "the per-round funnel writes must be detected as periodic"
    );
}
