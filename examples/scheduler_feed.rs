//! Scheduler feed: the paper's motivating use case. Categorize a batch of
//! traces and surface the correlations a job scheduler could exploit —
//! e.g. "don't co-schedule two applications that both read large volumes on
//! start" (§V).
//!
//! ```sh
//! cargo run -p mosaic-examples --example scheduler_feed
//! ```

use mosaic_core::category::{Category, MetadataLabel, OpKindTag, TemporalityLabel};
use mosaic_pipeline::executor::{process, PipelineConfig};
use mosaic_pipeline::source::{ClosureSource, TraceInput};
use mosaic_synth::{Dataset, DatasetConfig, Payload};

fn main() {
    let ds = Dataset::new(DatasetConfig { n_traces: 3000, seed: 2024, ..Default::default() });
    let source = ClosureSource::new(ds.len(), |i| match ds.generate(i).payload {
        Payload::Log(log) => TraceInput::log(log),
        Payload::Bytes(bytes) => TraceInput::bytes(bytes),
    });
    let result = process(&source, &PipelineConfig::default());
    println!("{}\n", result.funnel.render());

    let sets = result.single_run_sets();
    let jaccard = result.jaccard_single_run();

    let read_on_start =
        Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::OnStart };
    let write_on_end =
        Category::Temporality { kind: OpKindTag::Write, label: TemporalityLabel::OnEnd };
    let spike = Category::Metadata(MetadataLabel::HighSpike);

    // The scheduler-relevant signals the paper calls out in §IV-D:
    if let Some(p) = jaccard.conditional(&sets, read_on_start, write_on_end) {
        println!(
            "P(write_on_end | read_on_start) = {:.0}%  — the read-compute-write motif",
            100.0 * p
        );
    }
    if let Some(p) = jaccard.conditional(&sets, spike, read_on_start) {
        println!("P(read_on_start | metadata_high_spike) = {:.0}%", 100.0 * p);
    }

    println!("\nstrongest category co-occurrences (Jaccard ≥ 30%):");
    for (a, b, v) in jaccard.relevant_pairs(0.30).into_iter().take(12) {
        println!("  {:>5.1}%  {}  ∧  {}", 100.0 * v, a.name(), b.name());
    }

    // Feed for the scheduler: applications that will hammer storage at
    // job start — candidates for staggered launch.
    let start_heavy: Vec<_> = result
        .representatives()
        .filter(|o| o.report.has(read_on_start))
        .map(|o| format!("uid {} app {}", o.app_key.0, o.app_key.1))
        .take(8)
        .collect();
    println!("\napplications reading heavily on start (stagger these): {start_heavy:#?}");
}
