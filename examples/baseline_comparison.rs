//! Baseline comparison: MOSAIC's segmentation+clustering vs the
//! frequency-technique (FFT) detector on the paper's hard case — two
//! interleaved periodic behaviours in one trace (§II-B).
//!
//! ```sh
//! cargo run -p mosaic-examples --example baseline_comparison
//! ```

use mosaic_baselines::FftDetector;
use mosaic_core::Categorizer;
use mosaic_darshan::ops::{OpKind, Operation, OperationView};

fn periodic_ops(kind: OpKind, period: f64, bytes: u64, runtime: f64) -> Vec<Operation> {
    let mut ops = Vec::new();
    let mut t = period * 0.3;
    while t + period * 0.05 < runtime {
        ops.push(Operation { kind, start: t, end: t + period * 0.05, bytes, ranks: 64 });
        t += period;
    }
    ops
}

fn main() {
    let runtime = 7200.0;
    // Behaviour 1: checkpoints every 10 minutes, 2 GiB each.
    let mut writes = periodic_ops(OpKind::Write, 600.0, 2 << 30, runtime);
    // Behaviour 2: small log flushes every 20 seconds, 150 MiB each.
    writes.extend(periodic_ops(OpKind::Write, 20.0, 150 << 20, runtime));
    writes.sort_by(|a, b| a.start.total_cmp(&b.start));

    let view =
        OperationView { runtime, nprocs: 64, reads: vec![], writes: writes.clone(), meta: vec![] };

    // --- MOSAIC ---
    let report = Categorizer::default().categorize(&view);
    println!("MOSAIC detected {} periodic write pattern(s):", report.write.periodic.len());
    for p in &report.write.periodic {
        println!(
            "  period ≈ {:>6.0} s  ({:>3} occurrences, {:.2} GiB/occurrence)",
            p.period,
            p.occurrences,
            p.mean_bytes / (1u64 << 30) as f64
        );
    }

    // --- FFT baseline ---
    let det = FftDetector::default();
    let peaks = det.detect(&writes, runtime);
    println!("\nFFT baseline spectral peaks:");
    for p in &peaks {
        println!("  period ≈ {:>6.1} s  (relative power {:.2})", p.period, p.power);
    }
    match det.dominant_period_autocorr(&writes, runtime) {
        Some(p) => println!("FFT baseline autocorrelation fundamental: ≈ {p:.0} s"),
        None => println!("FFT baseline autocorrelation found no period"),
    }

    println!(
        "\nMOSAIC separates both behaviours with volumes attached; the spectrum \
         mixes fundamentals and harmonics of both and carries no volume or \
         busy-time information — the gap §II-B describes."
    );

    assert!(
        report.write.periodic.len() >= 2,
        "MOSAIC must separate the two interleaved periodic behaviours"
    );
}
