//! Checkpoint analysis: simulate a checkpointing application on the
//! event-driven machine model, then let MOSAIC find the periodicity.
//!
//! This exercises the full substrate chain: workload program → discrete-
//! event simulation (desynchronized ranks, shared bandwidth, metadata
//! latency) → Darshan-like trace → merging → segmentation → Mean Shift →
//! periodic pattern report.
//!
//! ```sh
//! cargo run -p mosaic-examples --example checkpoint_analysis
//! ```

use mosaic_core::Categorizer;
use mosaic_iosim::{MachineConfig, Simulation};
use mosaic_synth::programs;

fn main() {
    // 64 ranks, 20 checkpoint rounds, ~2 minutes of compute per round,
    // 256 MB per rank per checkpoint.
    let program = programs::checkpointer(20, 120.0, 256 << 20);
    let machine = MachineConfig::default();
    let outcome = Simulation::new(machine, 64, 7).run_detailed(&program, "/apps/sim/checkpointer");

    println!(
        "simulated {:.0} s of wallclock, {:.1} GiB moved, MDS peak {} req/s",
        outcome.makespan,
        outcome.bytes_moved / (1u64 << 30) as f64,
        outcome.mds_peak,
    );

    let report = Categorizer::default().categorize_log(&outcome.trace);
    println!("\ncategories: {:?}", report.names());

    for pattern in &report.write.periodic {
        println!(
            "\nperiodic write pattern: {} occurrences, period ≈ {:.0} s ({:?}), \
             {:.0} MiB per occurrence, busy {:.0}% of each period",
            pattern.occurrences,
            pattern.period,
            pattern.magnitude,
            pattern.mean_bytes / (1u64 << 20) as f64,
            100.0 * pattern.busy_fraction,
        );
    }

    assert!(!report.write.periodic.is_empty(), "the checkpoint loop must be detected as periodic");
}
