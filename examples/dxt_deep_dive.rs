//! DXT deep dive: what Darshan's open/close aggregation hides, measured on
//! the same simulated run captured at both resolutions (§IV-A of the
//! paper conjectures most `steady` traces hide periodicity; DXT proves it).
//!
//! ```sh
//! cargo run -p mosaic-examples --example dxt_deep_dive
//! ```

use mosaic_core::Categorizer;
use mosaic_darshan::dxt;
use mosaic_iosim::{MachineConfig, Simulation};
use mosaic_synth::programs;

fn main() {
    // A streaming writer: one output file held open for the whole run,
    // written in 128 MiB slabs every ~2 minutes.
    let program = programs::steady_writer(30, 128 << 20, 120.0);
    let outcome = Simulation::new(MachineConfig::default(), 16, 42)
        .with_dxt()
        .run_detailed(&program, "/apps/stream/writer");

    let categorizer = Categorizer::default();

    // --- the default (aggregated) view: what the paper had to work with ---
    let agg_report = categorizer.categorize_log(&outcome.trace);
    println!("aggregated (default Darshan) view:");
    println!("  write temporality: {:?}", agg_report.write.temporality.label);
    println!("  periodic patterns: {}", agg_report.write.periodic.len());
    println!("  write operations after merging: {}", agg_report.write.merged_ops);

    // --- the DXT view: every access individually ---
    let dxt_trace = outcome.dxt.expect("dxt capture enabled");
    println!(
        "\nDXT view: {} individual accesses across {} records",
        dxt_trace.total_accesses(),
        dxt_trace.records().len()
    );
    let dxt_report = categorizer.categorize(&dxt_trace.operation_view());
    println!("  write temporality: {:?}", dxt_report.write.temporality.label);
    for p in &dxt_report.write.periodic {
        println!(
            "  revealed periodic pattern: {} slabs, period ≈ {:.0} s ({:?}), {:.0} MiB each",
            p.occurrences,
            p.period,
            p.magnitude,
            p.mean_bytes / (1u64 << 20) as f64,
        );
    }

    // --- the MDX format round-trips the full-resolution trace ---
    let bytes = dxt::to_bytes(&dxt_trace);
    let parsed = dxt::from_bytes(&bytes).expect("MDX parses");
    assert_eq!(parsed, dxt_trace);
    println!(
        "\nMDX serialization: {} KiB for the DXT trace (vs {} KiB aggregated MDF)",
        bytes.len() / 1024,
        mosaic_darshan::mdf::to_bytes(&outcome.trace).len() / 1024,
    );

    // --- and the downgrade is consistent with the shim's own aggregation ---
    let downgraded = dxt_trace.to_aggregated();
    assert_eq!(downgraded.total_bytes_written(), outcome.trace.total_bytes_written());
    println!("downgrading DXT → aggregated reproduces the default trace's volumes exactly.");

    assert!(
        agg_report.write.periodic.is_empty() && !dxt_report.write.periodic.is_empty(),
        "the aggregation gap must be visible in this example"
    );
}
