//! Complex arithmetic and an iterative radix-2 Cooley–Tukey FFT.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Zero.
    #[inline]
    pub fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// `e^(iθ)`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Next power of two ≥ `n` (and ≥ 1).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT. `data.len()` must be a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT (including the `1/N` normalization).
pub fn ifft_in_place(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = *v * (1.0 / n);
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                // lint: allow(panic, "butterfly bounds: i + j + len/2 < n since i steps by len, j < len/2, len <= n")
                let u = data[i + j];
                // lint: allow(panic, "butterfly bounds: i + j + len/2 < n since i steps by len, j < len/2, len <= n")
                let v = data[i + j + len / 2] * w;
                // lint: allow(panic, "butterfly bounds: i + j + len/2 < n since i steps by len, j < len/2, len <= n")
                data[i + j] = u + v;
                // lint: allow(panic, "butterfly bounds: i + j + len/2 < n since i steps by len, j < len/2, len <= n")
                data[i + j + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (length = padded size).
pub fn rfft(signal: &[f64]) -> Vec<Complex> {
    let n = next_pow2(signal.len());
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    data.resize(n, Complex::zero());
    fft_in_place(&mut data);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    fn assert_close(a: Complex, b: Complex) {
        assert!((a.re - b.re).abs() < EPS && (a.im - b.im).abs() < EPS, "{a:?} vs {b:?}");
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_close(a + b, Complex::new(4.0, 1.0));
        assert_close(a - b, Complex::new(-2.0, 3.0));
        assert_close(a * b, Complex::new(5.0, 5.0));
        assert_close(a * 2.0, Complex::new(2.0, 4.0));
        assert_close(-a, Complex::new(-1.0, -2.0));
        assert_close(a.conj(), Complex::new(1.0, -2.0));
        assert!((a.abs() - 5.0_f64.sqrt()).abs() < EPS);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::zero(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut data);
        for v in data {
            assert_close(v, Complex::new(1.0, 0.0));
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::new(1.0, 0.0); 8];
        fft_in_place(&mut data);
        assert_close(data[0], Complex::new(8.0, 0.0));
        for v in &data[1..] {
            assert_close(*v, Complex::zero());
        }
    }

    #[test]
    fn fft_matches_dft_definition() {
        // Compare against the O(n²) DFT on a small arbitrary signal.
        let signal = [1.0, 2.0, -1.5, 0.25, 3.0, -2.0, 0.0, 1.0];
        let spec = rfft(&signal);
        let n = signal.len();
        for (k, got) in spec.iter().enumerate() {
            let mut want = Complex::zero();
            for (t, &x) in signal.iter().enumerate() {
                want += Complex::from_angle(
                    -2.0 * std::f64::consts::PI * k as f64 * t as f64 / n as f64,
                ) * x;
            }
            assert_close(*got, want);
        }
    }

    #[test]
    fn roundtrip_fft_ifft() {
        let original: Vec<Complex> =
            (0..16).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.3).cos())).collect();
        let mut data = original.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert_close(*a, *b);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * k as f64 * t as f64 / n as f64).cos())
            .collect();
        let spec = rfft(&signal);
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peak = mags.iter().take(n / 2).enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(peak, k);
    }

    #[test]
    fn rfft_pads_to_pow2() {
        assert_eq!(rfft(&[1.0; 5]).len(), 8);
        assert_eq!(rfft(&[]).len(), 1);
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(17), 32);
        assert_eq!(next_pow2(32), 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut d = vec![Complex::zero(); 6];
        fft_in_place(&mut d);
    }
}
