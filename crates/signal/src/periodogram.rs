//! Power spectra and dominant-frequency detection.

use crate::fft::rfft;

/// One detected spectral peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Frequency in cycles per unit time of the original signal.
    pub frequency: f64,
    /// Corresponding period (1/frequency).
    pub period: f64,
    /// Power at the peak, normalized so the strongest peak is 1.
    pub power: f64,
}

/// Periodogram (one-sided power spectrum) of a real signal sampled at
/// `sample_rate` samples per unit time.
///
/// Returns `(frequencies, powers)` for bins `1..n/2` (the DC bin is
/// excluded — callers should mean-remove first anyway).
pub fn periodogram(signal: &[f64], sample_rate: f64) -> (Vec<f64>, Vec<f64>) {
    let spec = rfft(signal);
    let n = spec.len();
    let half = n / 2;
    let mut freqs = Vec::with_capacity(half.saturating_sub(1));
    let mut powers = Vec::with_capacity(half.saturating_sub(1));
    for (k, c) in spec.iter().enumerate().take(half).skip(1) {
        freqs.push(k as f64 * sample_rate / n as f64);
        powers.push(c.norm2() / n as f64);
    }
    (freqs, powers)
}

/// Find up to `max_peaks` local maxima of the periodogram that stand above
/// `threshold` × the strongest peak, sorted by descending power.
///
/// A bin is a local maximum if it exceeds both neighbours; this simple
/// criterion is what basic frequency-technique detectors use and is exactly
/// the mechanism that struggles with two interleaved periodic behaviours of
/// similar energy (the MOSAIC paper's critique).
pub fn find_peaks(freqs: &[f64], powers: &[f64], max_peaks: usize, threshold: f64) -> Vec<Peak> {
    if powers.is_empty() {
        return Vec::new();
    }
    let max_power = powers.iter().cloned().fold(0.0_f64, f64::max);
    if max_power <= 0.0 {
        return Vec::new();
    }
    let mut peaks: Vec<Peak> = Vec::new();
    let mut left = 0.0;
    for (i, (&freq, &power)) in freqs.iter().zip(powers).enumerate() {
        let right = powers.get(i + 1).copied().unwrap_or(0.0);
        if power >= left && power > right && power >= threshold * max_power {
            peaks.push(Peak {
                frequency: freq,
                period: if freq > 0.0 { 1.0 / freq } else { f64::INFINITY },
                power: power / max_power,
            });
        }
        left = power;
    }
    peaks.sort_by(|a, b| b.power.total_cmp(&a.power));
    peaks.truncate(max_peaks);
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::remove_mean;

    fn tone(n: usize, period: f64, amp: f64) -> Vec<f64> {
        (0..n).map(|t| amp * (2.0 * std::f64::consts::PI * t as f64 / period).sin()).collect()
    }

    #[test]
    fn detects_single_tone_period() {
        let mut s = tone(512, 16.0, 1.0);
        remove_mean(&mut s);
        let (f, p) = periodogram(&s, 1.0);
        let peaks = find_peaks(&f, &p, 3, 0.3);
        assert!(!peaks.is_empty());
        assert!((peaks[0].period - 16.0).abs() < 1.0, "period {}", peaks[0].period);
    }

    #[test]
    fn detects_two_well_separated_tones() {
        let mut s: Vec<f64> =
            tone(1024, 8.0, 1.0).iter().zip(tone(1024, 64.0, 1.0)).map(|(a, b)| a + b).collect();
        remove_mean(&mut s);
        let (f, p) = periodogram(&s, 1.0);
        let peaks = find_peaks(&f, &p, 5, 0.2);
        assert!(peaks.len() >= 2, "{peaks:?}");
        let periods: Vec<f64> = peaks.iter().map(|p| p.period).collect();
        assert!(periods.iter().any(|&t| (t - 8.0).abs() < 0.5));
        assert!(periods.iter().any(|&t| (t - 64.0).abs() < 4.0));
    }

    #[test]
    fn silence_has_no_peaks() {
        let s = vec![0.0; 256];
        let (f, p) = periodogram(&s, 1.0);
        assert!(find_peaks(&f, &p, 5, 0.1).is_empty());
    }

    #[test]
    fn sample_rate_scales_frequencies() {
        let mut s = tone(256, 32.0, 1.0); // period 32 samples
        remove_mean(&mut s);
        // At 2 samples/sec, 32 samples = 16 seconds.
        let (f, p) = periodogram(&s, 2.0);
        let peaks = find_peaks(&f, &p, 1, 0.5);
        assert!((peaks[0].period - 16.0).abs() < 1.0, "{peaks:?}");
    }

    #[test]
    fn empty_signal() {
        let (f, p) = periodogram(&[], 1.0);
        assert!(f.is_empty() || p.iter().all(|&x| x == 0.0));
        assert!(find_peaks(&f, &p, 5, 0.1).is_empty());
    }
}
