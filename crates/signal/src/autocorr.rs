//! FFT-based autocorrelation and lag-domain period estimation.

use crate::fft::{fft_in_place, ifft_in_place, next_pow2, Complex};

/// Normalized autocorrelation of `signal` for lags `0..signal.len()`,
/// computed via the Wiener–Khinchin theorem (FFT → |·|² → IFFT) in
/// `O(n log n)`. `r[0]` is 1 for non-degenerate signals.
pub fn autocorrelation(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = signal.iter().sum::<f64>() / n as f64;
    // Zero-pad to 2n to make the circular correlation linear.
    let m = next_pow2(2 * n);
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x - mean, 0.0)).collect();
    data.resize(m, Complex::zero());
    fft_in_place(&mut data);
    for v in data.iter_mut() {
        let p = v.norm2();
        *v = Complex::new(p, 0.0);
    }
    ifft_in_place(&mut data);
    let r0 = data[0].re;
    if r0 <= 0.0 {
        return vec![0.0; n];
    }
    (0..n).map(|k| data[k].re / r0).collect()
}

/// Estimate the dominant period of a signal (in samples) from the first
/// autocorrelation peak after the zero lag: the smallest lag `k > 0` that is
/// a local maximum with `r[k] >= min_corr`. Returns `None` when no such lag
/// exists (aperiodic signal).
pub fn dominant_period(signal: &[f64], min_corr: f64) -> Option<usize> {
    let r = autocorrelation(signal);
    if r.len() < 3 {
        return None;
    }
    // Skip the main lobe around lag 0.
    let mut k = 1;
    while k < r.len() && r[k] > r[k - 1].min(1.0) {
        k += 1;
    }
    // The FIRST strong local maximum is the fundamental; later lags at
    // multiples of it (2T, 3T, …) are equally high for clean signals, so
    // taking the global maximum would report a harmonic.
    (k.max(1)..r.len() - 1).find(|&i| r[i] >= r[i - 1] && r[i] > r[i + 1] && r[i] >= min_corr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autocorr_of_periodic_signal_peaks_at_period() {
        let period = 20usize;
        let signal: Vec<f64> = (0..400).map(|t| if t % period < 3 { 1.0 } else { 0.0 }).collect();
        let r = autocorrelation(&signal);
        assert!((r[0] - 1.0).abs() < 1e-9);
        assert!(r[period] > 0.8, "r[{period}] = {}", r[period]);
        assert_eq!(dominant_period(&signal, 0.5), Some(period));
    }

    #[test]
    fn aperiodic_signal_has_no_dominant_period() {
        // A single burst: autocorrelation decays monotonically.
        let mut signal = vec![0.0; 128];
        for v in signal.iter_mut().take(10) {
            *v = 1.0;
        }
        assert_eq!(dominant_period(&signal, 0.5), None);
    }

    #[test]
    fn constant_signal_degenerates_gracefully() {
        let signal = vec![3.0; 64];
        let r = autocorrelation(&signal);
        assert!(r.iter().all(|&v| v.abs() < 1e-9 || v == 0.0));
        assert_eq!(dominant_period(&signal, 0.5), None);
    }

    #[test]
    fn empty_and_tiny_signals() {
        assert!(autocorrelation(&[]).is_empty());
        assert_eq!(dominant_period(&[], 0.5), None);
        assert_eq!(dominant_period(&[1.0, 0.0], 0.5), None);
    }

    #[test]
    fn autocorr_matches_direct_computation() {
        let signal = [1.0, -0.5, 2.0, 0.0, 1.5, -1.0, 0.5, 2.5];
        let n = signal.len();
        let mean = signal.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = signal.iter().map(|&x| x - mean).collect();
        let r = autocorrelation(&signal);
        let r0: f64 = centered.iter().map(|&x| x * x).sum();
        for k in 0..n {
            let direct: f64 = (0..n - k).map(|t| centered[t] * centered[t + k]).sum();
            assert!((r[k] - direct / r0).abs() < 1e-9, "lag {k}: {} vs {}", r[k], direct / r0);
        }
    }
}
