//! Windowing and signal construction helpers.

/// Hann window of length `n` (avoids spectral leakage when a period does not
/// divide the signal length).
pub fn hann(n: usize) -> Vec<f64> {
    if n <= 1 {
        return vec![1.0; n];
    }
    (0..n)
        .map(|i| {
            let x = std::f64::consts::PI * i as f64 / (n - 1) as f64;
            x.sin().powi(2)
        })
        .collect()
}

/// Apply a window in place (`signal` and `window` must have equal length).
pub fn apply_window(signal: &mut [f64], window: &[f64]) {
    assert_eq!(signal.len(), window.len(), "window length mismatch");
    for (s, w) in signal.iter_mut().zip(window) {
        *s *= w;
    }
}

/// Rasterize `[start, end, weight]` intervals into a fixed-rate activity
/// signal over `[0, runtime]` with `bins` samples.
///
/// Each interval deposits its weight spread uniformly over the bins it
/// covers — the standard way to turn Darshan-style aggregated operations
/// into the activity signal frequency methods consume.
pub fn rasterize(intervals: &[(f64, f64, f64)], runtime: f64, bins: usize) -> Vec<f64> {
    let mut signal = vec![0.0; bins];
    if bins == 0 || runtime <= 0.0 {
        return signal;
    }
    let dt = runtime / bins as f64;
    for &(start, end, weight) in intervals {
        let (start, end) = (start.max(0.0), end.min(runtime));
        if end < start {
            continue;
        }
        let first = ((start / dt) as usize).min(bins - 1);
        let last = ((end / dt) as usize).min(bins - 1);
        let span = (last - first + 1) as f64;
        #[allow(clippy::needless_range_loop)] // index math over a time window
        for b in first..=last {
            // lint: allow(panic, "b <= last, which is clamped to bins - 1 == signal.len() - 1")
            signal[b] += weight / span;
        }
    }
    signal
}

/// Mean of a signal.
pub fn mean(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    signal.iter().sum::<f64>() / signal.len() as f64
}

/// Remove the mean (detrend level 0) so the DC bin does not dominate the
/// spectrum.
pub fn remove_mean(signal: &mut [f64]) {
    let m = mean(signal);
    for v in signal.iter_mut() {
        *v -= m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_shape() {
        let w = hann(5);
        assert_eq!(w.len(), 5);
        assert!(w[0].abs() < 1e-12);
        assert!(w[4].abs() < 1e-12);
        assert!((w[2] - 1.0).abs() < 1e-12);
        assert_eq!(hann(1), vec![1.0]);
        assert!(hann(0).is_empty());
    }

    #[test]
    fn rasterize_deposits_weight() {
        // One interval covering the first half of a 10-bin signal.
        let s = rasterize(&[(0.0, 4.9, 10.0)], 10.0, 10);
        let total: f64 = s.iter().sum();
        assert!((total - 10.0).abs() < 1e-9);
        assert!(s[..5].iter().all(|&v| v > 0.0));
        assert!(s[5..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rasterize_clamps_out_of_range() {
        let s = rasterize(&[(-5.0, 100.0, 4.0)], 10.0, 4);
        let total: f64 = s.iter().sum();
        assert!((total - 4.0).abs() < 1e-9);
        // Interval entirely outside → nothing deposited.
        let s = rasterize(&[(20.0, 30.0, 4.0)], 10.0, 4);
        assert!(s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rasterize_degenerate_inputs() {
        assert!(rasterize(&[(0.0, 1.0, 1.0)], 0.0, 8).iter().all(|&v| v == 0.0));
        assert!(rasterize(&[(0.0, 1.0, 1.0)], 10.0, 0).is_empty());
        // Instantaneous events land in one bin.
        let s = rasterize(&[(5.0, 5.0, 3.0)], 10.0, 10);
        assert_eq!(s[5], 3.0);
    }

    #[test]
    fn mean_removal_centers_signal() {
        let mut s = vec![1.0, 2.0, 3.0, 4.0];
        remove_mean(&mut s);
        assert!(mean(&s).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn window_mismatch_panics() {
        let mut s = vec![1.0; 4];
        apply_window(&mut s, &hann(5));
    }
}
