//! # mosaic-signal
//!
//! Signal-processing substrate for baseline periodicity detection.
//!
//! The MOSAIC paper's related work (Tarraf et al., IPDPS 2024) detects
//! periodic I/O with frequency techniques — discrete Fourier transforms over
//! an activity signal — and the paper claims that approach "fails to
//! distinguish between two intricate periodic behaviors". To reproduce that
//! comparison, `mosaic-baselines` needs an FFT stack; this crate provides it
//! from scratch:
//!
//! * [`fft`] — complex numbers and an iterative radix-2 Cooley–Tukey FFT;
//! * [`periodogram`] — power spectra of real signals and dominant-frequency
//!   peak picking;
//! * [`autocorr`] — FFT-based autocorrelation and lag-domain period
//!   estimation;
//! * [`window`] — Hann windowing and binning helpers for turning operation
//!   intervals into activity signals.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autocorr;
pub mod fft;
pub mod periodogram;
pub mod window;

pub use fft::Complex;
