//! Property-based tests for the signal substrate: Fourier identities and
//! autocorrelation bounds that must hold for any input.

use mosaic_signal::autocorr::autocorrelation;
use mosaic_signal::fft::{fft_in_place, ifft_in_place, rfft, Complex};
use mosaic_signal::periodogram::{find_peaks, periodogram};
use mosaic_signal::window::{rasterize, remove_mean};
use proptest::prelude::*;

fn arb_signal() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 1..256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fft_ifft_is_identity(signal in arb_signal()) {
        let n = signal.len().next_power_of_two();
        let mut data: Vec<Complex> =
            signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        data.resize(n, Complex::zero());
        let original = data.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((a.re - b.re).abs() < 1e-6 * (1.0 + b.re.abs()));
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_energy_is_conserved(signal in arb_signal()) {
        // Σ|x|² = (1/N) Σ|X|² for the unnormalized forward transform.
        let spec = rfft(&signal);
        let n = spec.len() as f64;
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm2()).sum::<f64>() / n;
        prop_assert!(
            (time_energy - freq_energy).abs() <= 1e-6 * (1.0 + time_energy),
            "time {time_energy} vs freq {freq_energy}"
        );
    }

    #[test]
    fn autocorrelation_is_bounded_and_normalized(signal in arb_signal()) {
        let r = autocorrelation(&signal);
        prop_assert_eq!(r.len(), signal.len());
        // r[0] is 1 for non-degenerate signals, 0 for constant ones.
        if r[0] != 0.0 {
            prop_assert!((r[0] - 1.0).abs() < 1e-9);
        }
        for &v in &r {
            prop_assert!(v.abs() <= 1.0 + 1e-6, "autocorr out of bounds: {v}");
        }
    }

    #[test]
    fn periodogram_powers_are_non_negative(signal in arb_signal()) {
        let (freqs, powers) = periodogram(&signal, 1.0);
        prop_assert_eq!(freqs.len(), powers.len());
        prop_assert!(powers.iter().all(|&p| p >= 0.0));
        prop_assert!(freqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn peak_power_is_normalized(signal in arb_signal()) {
        let (freqs, powers) = periodogram(&signal, 1.0);
        let peaks = find_peaks(&freqs, &powers, 10, 0.0);
        for p in &peaks {
            prop_assert!(p.power > 0.0 && p.power <= 1.0 + 1e-12);
        }
        prop_assert!(peaks.windows(2).all(|w| w[0].power >= w[1].power));
    }

    #[test]
    fn rasterize_conserves_in_range_weight(
        intervals in prop::collection::vec(
            (0.0f64..90.0, 0.0f64..10.0, 0.0f64..1000.0), 0..20),
        bins in 1usize..512,
    ) {
        let spec: Vec<(f64, f64, f64)> =
            intervals.iter().map(|&(s, l, w)| (s, s + l, w)).collect();
        let signal = rasterize(&spec, 100.0, bins);
        let total_in: f64 = spec.iter().map(|&(_, _, w)| w).sum();
        let total_out: f64 = signal.iter().sum();
        // All intervals fit inside [0, 100], so weight is conserved.
        prop_assert!((total_in - total_out).abs() < 1e-6 * (1.0 + total_in));
    }

    #[test]
    fn remove_mean_centers(signal in arb_signal()) {
        let mut s = signal;
        remove_mean(&mut s);
        let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
        prop_assert!(mean.abs() < 1e-7);
    }
}
