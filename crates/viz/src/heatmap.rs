//! The Fig 5-style Jaccard heatmap.

use crate::svg::{ramp, Svg};
use mosaic_core::JaccardMatrix;

const CELL: f64 = 22.0;
const LABEL_W: f64 = 210.0;
const MARGIN: f64 = 14.0;

/// Render the matrix. Values below `min_value` are drawn blank, like the
/// paper's "only values higher than 1 % are shown".
pub fn render(matrix: &JaccardMatrix, min_value: f64) -> String {
    let n = matrix.categories.len();
    let size = n as f64 * CELL;
    let width = LABEL_W + size + MARGIN * 2.0;
    let height = LABEL_W + size + MARGIN * 2.0;
    let mut svg = Svg::new(width.max(200.0), height.max(200.0));

    let x0 = LABEL_W + MARGIN;
    let y0 = LABEL_W + MARGIN;
    for i in 0..n {
        // Row labels.
        svg.text(
            x0 - 6.0,
            y0 + i as f64 * CELL + CELL * 0.7,
            9.0,
            "end",
            "black",
            &matrix.categories[i].name(),
        );
        // Column labels, rotated by writing vertically stacked text is
        // overkill; use diagonal anchor trick: place at 45° via transform.
        let cx = x0 + i as f64 * CELL + CELL * 0.7;
        svg.text(cx, y0 - 6.0, 9.0, "start", "black", &format!("[{i}]"));
        for j in 0..n {
            let v = matrix.values[i * n + j];
            let fill = if v >= min_value { ramp(v) } else { "white".to_owned() };
            svg.rect(
                x0 + j as f64 * CELL,
                y0 + i as f64 * CELL,
                CELL - 1.0,
                CELL - 1.0,
                &fill,
                Some("#cccccc"),
            );
            if v >= min_value && i != j {
                let dark = v > 0.55;
                svg.text(
                    x0 + j as f64 * CELL + CELL / 2.0,
                    y0 + i as f64 * CELL + CELL * 0.7,
                    7.0,
                    "middle",
                    if dark { "white" } else { "black" },
                    &format!("{:.0}", 100.0 * v),
                );
            }
        }
    }
    svg.text(
        MARGIN,
        16.0,
        11.0,
        "start",
        "black",
        &format!(
            "Jaccard indices over {} traces (values ≥ {:.0}% shown; columns indexed as rows)",
            matrix.n_traces,
            100.0 * min_value
        ),
    );
    svg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_core::category::{Category, MetadataLabel, OpKindTag, TemporalityLabel};
    use std::collections::BTreeSet;

    fn matrix() -> JaccardMatrix {
        let a = Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::OnStart };
        let b = Category::Temporality { kind: OpKindTag::Write, label: TemporalityLabel::OnEnd };
        let c = Category::Metadata(MetadataLabel::HighSpike);
        let sets: Vec<BTreeSet<Category>> = vec![
            [a, b].into_iter().collect(),
            [a, b, c].into_iter().collect(),
            [c].into_iter().collect(),
        ];
        JaccardMatrix::compute(&sets)
    }

    #[test]
    fn renders_cells_and_labels() {
        let svg = render(&matrix(), 0.01);
        assert!(svg.contains("read_on_start"));
        assert!(svg.contains("metadata_high_spike"));
        assert!(svg.contains("<rect"));
        assert!(svg.contains("Jaccard indices over 3 traces"));
    }

    #[test]
    fn threshold_hides_small_values() {
        let full = render(&matrix(), 0.0);
        let cut = render(&matrix(), 0.9);
        // With a 90% threshold only the diagonal survives: fewer text cells.
        assert!(cut.matches("<text").count() < full.matches("<text").count());
    }

    #[test]
    fn empty_matrix_renders() {
        let m = JaccardMatrix::compute(&[]);
        let svg = render(&m, 0.01);
        assert!(svg.contains("</svg>"));
    }
}
