//! The Fig 4-style category distribution bar chart, with the paper's
//! single-run vs all-runs split.

use crate::svg::{Svg, PALETTE};
use mosaic_core::report::CategoryCounts;

const ROW_H: f64 = 22.0;
const LABEL_W: f64 = 230.0;
const BAR_W: f64 = 480.0;
const MARGIN: f64 = 16.0;

/// Render paired horizontal bars (single-run vs all-runs share) for every
/// category present in either population, sorted by all-runs share.
pub fn render(single_run: &CategoryCounts, all_runs: &CategoryCounts, title: &str) -> String {
    let mut cats: Vec<_> = all_runs.iter().map(|(c, _)| c).collect();
    for (c, _) in single_run.iter() {
        if !cats.contains(&c) {
            cats.push(c);
        }
    }
    cats.sort_by(|&a, &b| {
        all_runs.fraction(b).total_cmp(&all_runs.fraction(a)).then_with(|| a.cmp(&b))
    });

    let height = MARGIN * 2.0 + 30.0 + cats.len() as f64 * ROW_H + 24.0;
    let mut svg = Svg::new(LABEL_W + BAR_W + MARGIN * 2.0 + 60.0, height.max(120.0));
    svg.text(MARGIN, 18.0, 12.0, "start", "black", title);
    svg.rect(MARGIN, 26.0, 10.0, 10.0, PALETTE[0], None);
    svg.text(MARGIN + 14.0, 35.0, 9.0, "start", "black", "all runs (PFS load view)");
    svg.rect(MARGIN + 180.0, 26.0, 10.0, 10.0, PALETTE[1], None);
    svg.text(MARGIN + 194.0, 35.0, 9.0, "start", "black", "single-run (application view)");

    let x0 = LABEL_W + MARGIN;
    let y0 = 48.0;
    for (row, &cat) in cats.iter().enumerate() {
        let y = y0 + row as f64 * ROW_H;
        svg.text(x0 - 6.0, y + ROW_H * 0.65, 9.0, "end", "black", &cat.name());
        let all_frac = all_runs.fraction(cat);
        let single_frac = single_run.fraction(cat);
        svg.rect(x0, y + 2.0, BAR_W * all_frac, ROW_H / 2.0 - 2.0, PALETTE[0], None);
        svg.rect(
            x0,
            y + ROW_H / 2.0 + 1.0,
            BAR_W * single_frac,
            ROW_H / 2.0 - 3.0,
            PALETTE[1],
            None,
        );
        svg.text(
            x0 + BAR_W * all_frac + 4.0,
            y + ROW_H * 0.40,
            8.0,
            "start",
            "black",
            &format!("{:.1}%", 100.0 * all_frac),
        );
        svg.text(
            x0 + BAR_W * single_frac + 4.0,
            y + ROW_H * 0.90,
            8.0,
            "start",
            "#555555",
            &format!("{:.1}%", 100.0 * single_frac),
        );
    }
    svg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_core::category::{Category, MetadataLabel};
    use std::collections::BTreeSet;

    fn counts(with_spike: usize, total: usize) -> CategoryCounts {
        let spike: BTreeSet<Category> =
            [Category::Metadata(MetadataLabel::HighSpike)].into_iter().collect();
        let quiet: BTreeSet<Category> = BTreeSet::new();
        let mut sets = vec![spike; with_spike];
        sets.extend(vec![quiet; total - with_spike]);
        CategoryCounts::from_sets(sets.iter())
    }

    #[test]
    fn renders_paired_bars_with_percentages() {
        let svg = render(&counts(1, 10), &counts(6, 10), "Fig 4");
        assert!(svg.contains("metadata_high_spike"));
        assert!(svg.contains("60.0%"));
        assert!(svg.contains("10.0%"));
        assert!(svg.contains("all runs"));
    }

    #[test]
    fn empty_populations_render() {
        let empty = CategoryCounts::default();
        let svg = render(&empty, &empty, "empty");
        assert!(svg.contains("</svg>"));
    }
}
