//! # mosaic-viz
//!
//! Self-contained SVG renderings of the figures MOSAIC produces:
//!
//! * [`timeline`] — the Fig 2-style trace-processing plot: raw operations,
//!   the merged operations after pre-processing, detected periodic
//!   patterns, the temporal chunks, and the metadata request histogram;
//! * [`heatmap`] — the Fig 5-style Jaccard co-occurrence heatmap;
//! * [`bars`] — the Fig 4-style category distribution bars;
//! * [`svg`] — the minimal SVG document builder everything shares (no
//!   external dependencies; output opens in any browser).
//!
//! ```
//! use mosaic_core::{Categorizer, CategorizerConfig};
//! use mosaic_darshan::ops::{OpKind, Operation, OperationView};
//!
//! let writes: Vec<Operation> = (0..6)
//!     .map(|i| Operation {
//!         kind: OpKind::Write,
//!         start: 40.0 + 100.0 * i as f64,
//!         end: 52.0 + 100.0 * i as f64,
//!         bytes: 300 << 20,
//!         ranks: 32,
//!     })
//!     .collect();
//! let view = OperationView { runtime: 640.0, nprocs: 32, reads: vec![], writes, meta: vec![] };
//! let report = Categorizer::new(CategorizerConfig::default()).categorize(&view);
//! let svg = mosaic_viz::timeline::render(&view, &report);
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("periodic"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bars;
pub mod heatmap;
pub mod svg;
pub mod timeline;
