//! A minimal SVG document builder — just enough vocabulary for the MOSAIC
//! figures, with escaping and fixed-precision coordinates so output is
//! deterministic and diff-able.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct Svg {
    width: f64,
    height: f64,
    body: String,
}

/// Escape text content for XML.
pub fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn fmt(v: f64) -> String {
    // Two decimals keeps files small and output stable across platforms.
    format!("{v:.2}")
}

impl Svg {
    /// New document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Svg {
        assert!(width > 0.0 && height > 0.0);
        Svg { width, height, body: String::new() }
    }

    /// Filled rectangle with optional stroke.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr =
            stroke.map(|s| format!(" stroke=\"{s}\" stroke-width=\"0.5\"")).unwrap_or_default();
        let _ = writeln!(
            self.body,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{fill}\"{stroke_attr}/>",
            fmt(x),
            fmt(y),
            fmt(w.max(0.0)),
            fmt(h.max(0.0)),
        );
    }

    /// Straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{stroke}\" stroke-width=\"{}\"/>",
            fmt(x1),
            fmt(y1),
            fmt(x2),
            fmt(y2),
            fmt(width),
        );
    }

    /// Text anchored at (x, y); `anchor` is `start`/`middle`/`end`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, fill: &str, content: &str) {
        let _ = writeln!(
            self.body,
            "<text x=\"{}\" y=\"{}\" font-size=\"{}\" text-anchor=\"{anchor}\" \
             fill=\"{fill}\" font-family=\"sans-serif\">{}</text>",
            fmt(x),
            fmt(y),
            fmt(size),
            escape(content),
        );
    }

    /// Dashed vertical guide line.
    pub fn guide(&mut self, x: f64, y1: f64, y2: f64, stroke: &str) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{0}\" y1=\"{1}\" x2=\"{0}\" y2=\"{2}\" stroke=\"{stroke}\" \
             stroke-width=\"0.5\" stroke-dasharray=\"3 3\"/>",
            fmt(x),
            fmt(y1),
            fmt(y2),
        );
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Serialize the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             viewBox=\"0 0 {} {}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            fmt(self.width),
            fmt(self.height),
            fmt(self.width),
            fmt(self.height),
            self.body,
        )
    }
}

/// Sequential color ramp (white → deep blue), `v` in `[0, 1]`.
pub fn ramp(v: f64) -> String {
    let v = v.clamp(0.0, 1.0);
    let r = (255.0 - 205.0 * v) as u8;
    let g = (255.0 - 180.0 * v) as u8;
    let b = (255.0 - 95.0 * v) as u8;
    format!("rgb({r},{g},{b})")
}

/// Categorical palette used across the figures.
pub const PALETTE: [&str; 6] = ["#4878a8", "#e4923e", "#5aa469", "#c45a5a", "#8a6bb8", "#767676"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut svg = Svg::new(100.0, 50.0);
        svg.rect(1.0, 2.0, 3.0, 4.0, "red", Some("black"));
        svg.line(0.0, 0.0, 10.0, 10.0, "blue", 1.0);
        svg.text(5.0, 5.0, 8.0, "middle", "black", "hello <world> & \"co\"");
        let out = svg.finish();
        assert!(out.starts_with("<svg"));
        assert!(out.trim_end().ends_with("</svg>"));
        assert!(out.contains("<rect"));
        assert!(out.contains("<line"));
        assert!(out.contains("hello &lt;world&gt; &amp; &quot;co&quot;"));
    }

    #[test]
    fn negative_sizes_are_clamped() {
        let mut svg = Svg::new(10.0, 10.0);
        svg.rect(0.0, 0.0, -5.0, 3.0, "red", None);
        assert!(svg.finish().contains("width=\"0.00\""));
    }

    #[test]
    fn ramp_endpoints() {
        assert_eq!(ramp(0.0), "rgb(255,255,255)");
        assert_eq!(ramp(1.0), "rgb(50,75,160)");
        assert_eq!(ramp(-3.0), ramp(0.0));
        assert_eq!(ramp(9.0), ramp(1.0));
    }

    #[test]
    #[should_panic]
    fn zero_size_panics() {
        let _ = Svg::new(0.0, 10.0);
    }
}
