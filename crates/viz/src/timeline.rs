//! The Fig 2-style trace-processing timeline.
//!
//! Four stacked lanes over a shared time axis:
//!
//! 1. **raw operations** — the per-record intervals as extracted from the
//!    trace (reads above the midline, writes below);
//! 2. **after pre-processing** — the merged operations, with detected
//!    periodic patterns tinted per pattern;
//! 3. **temporal chunks** — the four quartiles shaded by their byte share
//!    (the temporality evidence);
//! 4. **metadata requests** — the per-second request histogram with the
//!    spike threshold marked.

use crate::svg::{ramp, Svg, PALETTE};
use mosaic_core::merge::merge_all;
use mosaic_core::TraceReport;
use mosaic_darshan::ops::{OpKind, Operation, OperationView};

const WIDTH: f64 = 900.0;
const LANE_H: f64 = 70.0;
const MARGIN_L: f64 = 120.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 30.0;
const GAP: f64 = 18.0;

/// Render the timeline for a view plus its categorization report.
pub fn render(view: &OperationView, report: &TraceReport) -> String {
    let lanes = 4;
    let height = MARGIN_T + lanes as f64 * (LANE_H + GAP) + 30.0;
    let mut svg = Svg::new(WIDTH, height);
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let runtime = view.runtime.max(1e-9);
    let x_of = |t: f64| MARGIN_L + (t / runtime).clamp(0.0, 1.0) * plot_w;

    svg.text(
        MARGIN_L,
        18.0,
        12.0,
        "start",
        "black",
        &format!(
            "trace timeline — runtime {:.0} s, {} ranks, categories: {}",
            view.runtime,
            view.nprocs,
            report.names().join(", ")
        ),
    );

    // Lane 1: raw operations.
    let y0 = MARGIN_T + 10.0;
    svg.text(8.0, y0 + LANE_H / 2.0, 10.0, "start", "black", "raw operations");
    draw_ops(&mut svg, &view.reads, x_of, y0, LANE_H / 2.0 - 2.0, PALETTE[0]);
    draw_ops(&mut svg, &view.writes, x_of, y0 + LANE_H / 2.0 + 2.0, LANE_H / 2.0 - 2.0, PALETTE[1]);

    // Lane 2: merged operations with periodic tinting.
    let y1 = y0 + LANE_H + GAP;
    svg.text(8.0, y1 + LANE_H / 2.0, 10.0, "start", "black", "after merging");
    let config = mosaic_core::CategorizerConfig::default();
    let merged_reads = merge_all(&view.reads, view.runtime, &config);
    let merged_writes = merge_all(&view.writes, view.runtime, &config);
    draw_merged(&mut svg, &merged_reads, report, OpKind::Read, x_of, y1, LANE_H / 2.0 - 2.0);
    draw_merged(
        &mut svg,
        &merged_writes,
        report,
        OpKind::Write,
        x_of,
        y1 + LANE_H / 2.0 + 2.0,
        LANE_H / 2.0 - 2.0,
    );

    // Lane 3: temporal chunks.
    let y2 = y1 + LANE_H + GAP;
    svg.text(8.0, y2 + LANE_H / 2.0, 10.0, "start", "black", "temporal chunks");
    draw_chunks(
        &mut svg,
        &report.read.temporality.chunk_bytes,
        x_of,
        y2,
        LANE_H / 2.0 - 2.0,
        runtime,
    );
    draw_chunks(
        &mut svg,
        &report.write.temporality.chunk_bytes,
        x_of,
        y2 + LANE_H / 2.0 + 2.0,
        LANE_H / 2.0 - 2.0,
        runtime,
    );

    // Lane 4: metadata histogram.
    let y3 = y2 + LANE_H + GAP;
    svg.text(8.0, y3 + LANE_H / 2.0, 10.0, "start", "black", "metadata req/s");
    draw_meta(&mut svg, view, x_of, y3, LANE_H, &config);

    // Time axis.
    let axis_y = y3 + LANE_H + 14.0;
    svg.line(MARGIN_L, axis_y, WIDTH - MARGIN_R, axis_y, "black", 1.0);
    for i in 0..=4 {
        let t = runtime * i as f64 / 4.0;
        let x = x_of(t);
        svg.line(x, axis_y - 3.0, x, axis_y + 3.0, "black", 1.0);
        svg.text(x, axis_y + 12.0, 9.0, "middle", "black", &format!("{t:.0} s"));
        if i > 0 && i < 4 {
            svg.guide(x, MARGIN_T + 10.0, axis_y, "#bbbbbb");
        }
    }
    svg.finish()
}

fn draw_ops(
    svg: &mut Svg,
    ops: &[Operation],
    x_of: impl Fn(f64) -> f64,
    y: f64,
    h: f64,
    fill: &str,
) {
    for op in ops {
        let x = x_of(op.start);
        let w = (x_of(op.end) - x).max(1.0);
        svg.rect(x, y, w, h, fill, None);
    }
}

fn draw_merged(
    svg: &mut Svg,
    merged: &[Operation],
    report: &TraceReport,
    kind: OpKind,
    x_of: impl Fn(f64) -> f64,
    y: f64,
    h: f64,
) {
    let patterns = &report.direction(kind).periodic;
    for (i, op) in merged.iter().enumerate() {
        // Color by owning periodic pattern, grey for one-offs.
        let color = patterns
            .iter()
            .enumerate()
            .find(|(_, p)| p.members.contains(&i))
            .map(|(pi, _)| PALETTE[(2 + pi) % PALETTE.len()])
            .unwrap_or("#999999");
        let x = x_of(op.start);
        let w = (x_of(op.end) - x).max(1.5);
        svg.rect(x, y, w, h, color, Some("black"));
    }
    for (pi, p) in patterns.iter().enumerate() {
        let label = format!("{} periodic: {} × {:.0} s", kind.label(), p.occurrences, p.period);
        svg.text(x_of(0.0), y - 2.0, 8.0, "start", PALETTE[(2 + pi) % PALETTE.len()], &label);
    }
}

fn draw_chunks(
    svg: &mut Svg,
    chunk_bytes: &[f64],
    x_of: impl Fn(f64) -> f64,
    y: f64,
    h: f64,
    runtime: f64,
) {
    let max = chunk_bytes.iter().cloned().fold(0.0f64, f64::max);
    let n = chunk_bytes.len().max(1);
    for (i, &bytes) in chunk_bytes.iter().enumerate() {
        let t0 = runtime * i as f64 / n as f64;
        let t1 = runtime * (i + 1) as f64 / n as f64;
        let share = if max > 0.0 { bytes / max } else { 0.0 };
        svg.rect(x_of(t0), y, x_of(t1) - x_of(t0) - 1.0, h, &ramp(share), Some("#888888"));
    }
}

fn draw_meta(
    svg: &mut Svg,
    view: &OperationView,
    x_of: impl Fn(f64) -> f64,
    y: f64,
    h: f64,
    config: &mosaic_core::CategorizerConfig,
) {
    let hist = mosaic_core::metadata::requests_per_second(&view.meta, view.runtime);
    let peak = hist.iter().copied().max().unwrap_or(0).max(config.high_spike_requests) as f64;
    for (sec, &count) in hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let x = x_of(sec as f64);
        let w = (x_of(sec as f64 + 1.0) - x).max(0.8);
        let bar = h * count as f64 / peak;
        svg.rect(x, y + h - bar, w, bar, PALETTE[3], None);
    }
    // Spike threshold line.
    let thresh_y = y + h - h * config.high_spike_requests as f64 / peak;
    svg.line(x_of(0.0), thresh_y, x_of(view.runtime), thresh_y, "#c45a5a", 0.75);
    svg.text(
        x_of(view.runtime),
        thresh_y - 2.0,
        8.0,
        "end",
        "#c45a5a",
        &format!("high spike ({})", config.high_spike_requests),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_core::Categorizer;
    use mosaic_darshan::ops::{MetaEvent, MetaKind};

    fn sample_view() -> OperationView {
        let writes: Vec<Operation> = (0..5)
            .map(|i| Operation {
                kind: OpKind::Write,
                start: 50.0 + 100.0 * i as f64,
                end: 60.0 + 100.0 * i as f64,
                bytes: 300 << 20,
                ranks: 16,
            })
            .collect();
        let meta: Vec<MetaEvent> = (0..5)
            .map(|i| MetaEvent { time: 50.0 + 100.0 * i as f64, kind: MetaKind::Open, count: 300 })
            .collect();
        OperationView {
            runtime: 550.0,
            nprocs: 16,
            reads: vec![Operation {
                kind: OpKind::Read,
                start: 2.0,
                end: 20.0,
                bytes: 500 << 20,
                ranks: 16,
            }],
            writes,
            meta,
        }
    }

    #[test]
    fn renders_all_lanes() {
        let view = sample_view();
        let report = Categorizer::default().categorize(&view);
        let svg = render(&view, &report);
        assert!(svg.starts_with("<svg"));
        for label in ["raw operations", "after merging", "temporal chunks", "metadata req/s"] {
            assert!(svg.contains(label), "missing lane {label}");
        }
        assert!(svg.contains("periodic"), "periodic annotation missing");
        assert!(svg.contains("high spike"));
    }

    #[test]
    fn empty_view_still_renders() {
        let view = OperationView {
            runtime: 100.0,
            nprocs: 1,
            reads: vec![],
            writes: vec![],
            meta: vec![],
        };
        let report = Categorizer::default().categorize(&view);
        let svg = render(&view, &report);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn output_is_deterministic() {
        let view = sample_view();
        let report = Categorizer::default().categorize(&view);
        assert_eq!(render(&view, &report), render(&view, &report));
    }
}
