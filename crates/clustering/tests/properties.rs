//! Property-based tests for the clustering substrate: structural invariants
//! that must hold for any input, not just the curated fixtures.

use mosaic_clustering::dbscan::Dbscan;
use mosaic_clustering::kmeans::KMeans;
use mosaic_clustering::metrics::{inertia, rand_index};
use mosaic_clustering::scale::{scale_uniform, ScaleKind};
use mosaic_clustering::{Clustering, MeanShift};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_points() -> impl Strategy<Value = Vec<[f64; 2]>> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..80)
        .prop_map(|v| v.into_iter().map(|(a, b)| [a, b]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn meanshift_labels_are_valid_and_total(points in arb_points()) {
        let c = MeanShift::new(5.0).fit(&points);
        prop_assert_eq!(c.labels.len(), points.len());
        for &l in &c.labels {
            prop_assert!(l < c.centers.len());
        }
        // Every cluster has at least one member.
        let sizes = c.cluster_sizes();
        prop_assert!(sizes.iter().all(|&s| s >= 1));
        prop_assert_eq!(sizes.iter().sum::<usize>(), points.len());
    }

    #[test]
    fn meanshift_centers_are_finite(points in arb_points()) {
        let c = MeanShift::new(2.0).fit(&points);
        for center in &c.centers {
            prop_assert!(center.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn meanshift_is_deterministic(points in arb_points()) {
        let ms = MeanShift::new(3.0);
        prop_assert_eq!(ms.fit(&points), ms.fit(&points));
    }

    #[test]
    fn kmeans_partitions_everything(points in arb_points(), k in 1usize..6) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let c = KMeans::new(k).fit(&points, &mut rng);
        prop_assert_eq!(c.labels.len(), points.len());
        if !points.is_empty() {
            prop_assert!(c.n_clusters() <= k.min(points.len()));
            for &l in &c.labels {
                prop_assert!(l < c.centers.len());
            }
        }
    }

    #[test]
    fn kmeans_inertia_never_worse_than_single_cluster(points in arb_points()) {
        prop_assume!(points.len() >= 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let k1 = KMeans::new(1).fit(&points, &mut rng);
        let k3 = KMeans::new(3).fit(&points, &mut rng);
        // More clusters can only reduce (or match) within-cluster scatter,
        // modulo Lloyd's local optima — allow small slack.
        prop_assert!(inertia(&points, &k3) <= inertia(&points, &k1) * 1.0001 + 1e-9);
    }

    #[test]
    fn dbscan_noise_label_is_consistent(points in arb_points()) {
        let c = Dbscan::new(1.5, 3).fit(&points);
        prop_assert_eq!(c.labels.len(), points.len());
        for &l in &c.labels {
            prop_assert!(l == Clustering::<2>::NOISE || l < c.centers.len());
        }
    }

    #[test]
    fn rand_index_is_symmetric_and_reflexive(points in arb_points()) {
        prop_assume!(points.len() >= 2);
        let a = MeanShift::new(3.0).fit(&points).labels;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let b = KMeans::new(2).fit(&points, &mut rng).labels;
        prop_assert_eq!(rand_index(&a, &b), rand_index(&b, &a));
        prop_assert_eq!(rand_index(&a, &a), 1.0);
    }

    #[test]
    fn scaling_preserves_point_count_and_finiteness(points in arb_points()) {
        for kind in [ScaleKind::Log, ScaleKind::MinMax, ScaleKind::ZScore, ScaleKind::Identity] {
            let out = scale_uniform(&points, kind);
            prop_assert_eq!(out.len(), points.len());
            for p in &out {
                prop_assert!(p.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn minmax_output_is_in_unit_box(points in arb_points()) {
        let out = scale_uniform(&points, ScaleKind::MinMax);
        for p in &out {
            prop_assert!(p.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
        }
    }

    #[test]
    fn meanshift_respects_bandwidth_separation(gap in 20.0f64..100.0) {
        // Two blobs farther apart than 3x the bandwidth must never merge.
        let mut points = Vec::new();
        for i in 0..8 {
            let o = i as f64 * 0.1;
            points.push([o, o]);
            points.push([gap + o, gap - o]);
        }
        let c = MeanShift::new(3.0).fit(&points);
        prop_assert!(c.n_clusters() >= 2, "gap {gap} merged into {}", c.n_clusters());
    }
}
