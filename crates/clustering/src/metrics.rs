//! Cluster-quality metrics used by tests and ablation benches.

use crate::point::{dist, dist2, Clustering};

/// Sum of squared distances of each point to its cluster center (noise
/// points excluded). Lower is tighter.
pub fn inertia<const D: usize>(points: &[[f64; D]], c: &Clustering<D>) -> f64 {
    points
        .iter()
        .zip(&c.labels)
        .filter(|(_, &l)| l != Clustering::<D>::NOISE)
        .map(|(p, &l)| dist2(p, &c.centers[l]))
        .sum()
}

/// Mean silhouette coefficient over all clustered points, in `[-1, 1]`.
/// Higher means better-separated clusters. Returns `None` when fewer than
/// two clusters have members (silhouette is undefined there).
pub fn silhouette<const D: usize>(points: &[[f64; D]], c: &Clustering<D>) -> Option<f64> {
    let live: Vec<usize> =
        (0..points.len()).filter(|&i| c.labels[i] != Clustering::<D>::NOISE).collect();
    let labels_present: std::collections::BTreeSet<usize> =
        live.iter().map(|&i| c.labels[i]).collect();
    if labels_present.len() < 2 {
        return None;
    }

    let mut total = 0.0;
    let mut counted = 0usize;
    for &i in &live {
        let own = c.labels[i];
        let mut intra = 0.0;
        let mut intra_n = 0usize;
        // mean distance to every other cluster, keyed by label
        let mut inter: std::collections::BTreeMap<usize, (f64, usize)> = Default::default();
        for &j in &live {
            if i == j {
                continue;
            }
            let d = dist(&points[i], &points[j]);
            if c.labels[j] == own {
                intra += d;
                intra_n += 1;
            } else {
                let e = inter.entry(c.labels[j]).or_insert((0.0, 0));
                e.0 += d;
                e.1 += 1;
            }
        }
        if intra_n == 0 {
            // Singleton clusters contribute silhouette 0 by convention.
            counted += 1;
            continue;
        }
        let a = intra / intra_n as f64;
        let b = inter.values().map(|&(sum, n)| sum / n as f64).fold(f64::INFINITY, f64::min);
        total += (b - a) / a.max(b);
        counted += 1;
    }
    Some(total / counted as f64)
}

/// Pairwise-agreement Rand index between two labelings of the same points,
/// in `[0, 1]`. Used to compare clustering algorithms against ground truth.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same points");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
            pairs += 1;
        }
    }
    agree as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_two() -> (Vec<[f64; 2]>, Clustering<2>) {
        let points = vec![[0.0, 0.0], [0.1, 0.0], [10.0, 10.0], [10.1, 10.0]];
        let c = Clustering { labels: vec![0, 0, 1, 1], centers: vec![[0.05, 0.0], [10.05, 10.0]] };
        (points, c)
    }

    #[test]
    fn inertia_of_tight_clusters_is_small() {
        let (points, c) = tight_two();
        assert!(inertia(&points, &c) < 0.02);
    }

    #[test]
    fn silhouette_high_for_separated_clusters() {
        let (points, c) = tight_two();
        let s = silhouette(&points, &c).unwrap();
        assert!(s > 0.9, "s = {s}");
    }

    #[test]
    fn silhouette_none_for_single_cluster() {
        let points = vec![[0.0], [1.0]];
        let c = Clustering { labels: vec![0, 0], centers: vec![[0.5]] };
        assert_eq!(silhouette(&points, &c), None);
    }

    #[test]
    fn silhouette_ignores_noise() {
        let points = vec![[0.0], [0.1], [10.0], [10.1], [500.0]];
        let c = Clustering {
            labels: vec![0, 0, 1, 1, Clustering::<1>::NOISE],
            centers: vec![[0.05], [10.05]],
        };
        assert!(silhouette(&points, &c).unwrap() > 0.9);
    }

    #[test]
    fn rand_index_extremes() {
        assert_eq!(rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0); // same partition
        assert_eq!(rand_index(&[0, 0, 0], &[0, 0, 0]), 1.0);
        let low = rand_index(&[0, 0, 1, 1], &[0, 1, 0, 1]);
        assert!(low < 0.5, "{low}");
        assert_eq!(rand_index(&[0], &[5]), 1.0); // degenerate
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn rand_index_length_mismatch_panics() {
        let _ = rand_index(&[0, 1], &[0]);
    }
}
