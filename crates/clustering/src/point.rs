//! Point geometry and the common clustering result type.

/// Squared Euclidean distance between two `D`-dimensional points.
#[inline]
pub fn dist2<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut acc = 0.0;
    for i in 0..D {
        // lint: allow(panic, "i < D indexes two [f64; D] arrays")
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Euclidean distance.
#[inline]
pub fn dist<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    dist2(a, b).sqrt()
}

/// Component-wise mean of a non-empty set of points selected by `idxs`.
pub fn centroid<const D: usize>(points: &[[f64; D]], idxs: &[usize]) -> [f64; D] {
    debug_assert!(!idxs.is_empty());
    let mut c = [0.0; D];
    for &i in idxs {
        for d in 0..D {
            c[d] += points[i][d];
        }
    }
    for v in c.iter_mut() {
        *v /= idxs.len() as f64;
    }
    c
}

/// Result of a clustering run: a label per input point and one representative
/// point (mode or centroid) per cluster.
///
/// Labels are dense `0..n_clusters`. DBSCAN additionally uses
/// [`Clustering::NOISE`] for unclustered points.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering<const D: usize> {
    /// `labels[i]` is the cluster of input point `i` (or [`Clustering::NOISE`]).
    pub labels: Vec<usize>,
    /// Representative point (mode / centroid) of each cluster.
    pub centers: Vec<[f64; D]>,
}

impl<const D: usize> Clustering<D> {
    /// Label for points not assigned to any cluster (DBSCAN noise).
    pub const NOISE: usize = usize::MAX;

    /// Number of clusters found.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Number of member points per cluster (noise excluded).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centers.len()];
        for &l in &self.labels {
            if l != Self::NOISE {
                sizes[l] += 1;
            }
        }
        sizes
    }

    /// Indices of the members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.labels.iter().enumerate().filter_map(|(i, &l)| (l == c).then_some(i)).collect()
    }

    /// Iterate clusters as `(center, member indices)`, skipping empty ones.
    pub fn clusters(&self) -> impl Iterator<Item = ([f64; D], Vec<usize>)> + '_ {
        (0..self.centers.len()).filter_map(move |c| {
            let m = self.members(c);
            // lint: allow(panic, "c ranges over 0..centers.len()")
            (!m.is_empty()).then_some((self.centers[c], m))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(dist2(&a, &b), 25.0);
        assert_eq!(dist(&a, &b), 5.0);
        assert_eq!(dist(&a, &a), 0.0);
    }

    #[test]
    fn centroid_averages() {
        let pts = [[0.0, 0.0], [2.0, 4.0], [4.0, 2.0]];
        assert_eq!(centroid(&pts, &[0, 1, 2]), [2.0, 2.0]);
        assert_eq!(centroid(&pts, &[1]), [2.0, 4.0]);
    }

    #[test]
    fn clustering_accessors() {
        let c = Clustering::<2> {
            labels: vec![0, 1, 0, Clustering::<2>::NOISE],
            centers: vec![[0.0, 0.0], [5.0, 5.0]],
        };
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.cluster_sizes(), vec![2, 1]);
        assert_eq!(c.members(0), vec![0, 2]);
        let all: Vec<_> = c.clusters().collect();
        assert_eq!(all.len(), 2);
    }
}
