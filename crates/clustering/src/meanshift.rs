//! Mean Shift clustering (Fukunaga & Hostetler 1975) — the algorithm MOSAIC
//! uses to group trace segments that "share comparable duration and data
//! size" (§III-B3a). Clusters of size > 1 indicate periodic operations.
//!
//! The implementation is the classic mode-seeking procedure: every point
//! ascends the kernel density estimate by repeatedly moving to the
//! kernel-weighted mean of its neighbourhood, and points whose ascents
//! converge to the same mode form one cluster. It is exact (no binning or
//! seeding heuristics), deterministic, and `O(n² · iterations)` — segment
//! counts per trace are small enough (tens to a few thousands) that this is
//! the right trade-off.

use crate::point::{dist, dist2, Clustering};
use serde::{Deserialize, Serialize};

/// Kernel profile used to weight neighbourhood points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Kernel {
    /// Uniform weight inside the bandwidth, zero outside. This is the
    /// classic "flat" Mean Shift and the default; it makes "comparable
    /// duration and volume" a hard window, matching how the paper describes
    /// its empirically set thresholds.
    #[default]
    Flat,
    /// Gaussian weight `exp(-d²/2h²)`, truncated at `3h` for speed.
    Gaussian,
}

/// Mean Shift configuration. Build with [`MeanShift::new`], then chain
/// setters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanShift {
    /// Kernel bandwidth `h` — the radius within which two segments count as
    /// "comparable".
    pub bandwidth: f64,
    /// Kernel profile.
    pub kernel: Kernel,
    /// Convergence threshold on the shift length, as a fraction of the
    /// bandwidth.
    pub tol: f64,
    /// Iteration cap per point (converges in a handful for real data).
    pub max_iter: usize,
    /// Two converged modes closer than `merge_frac · bandwidth` are fused.
    pub merge_frac: f64,
}

impl MeanShift {
    /// Mean Shift with the given bandwidth and default settings
    /// (flat kernel, `tol = 1e-3`, `max_iter = 300`, `merge_frac = 0.5`).
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        MeanShift { bandwidth, kernel: Kernel::Flat, tol: 1e-3, max_iter: 300, merge_frac: 0.5 }
    }

    /// Set the kernel profile.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Set the convergence tolerance (fraction of bandwidth).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Set the iteration cap.
    pub fn max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Set the mode-merge radius (fraction of bandwidth).
    pub fn merge_frac(mut self, merge_frac: f64) -> Self {
        self.merge_frac = merge_frac;
        self
    }

    /// One mean-shift step from `pos`: the kernel-weighted mean of the
    /// points in range, or `None` if the neighbourhood is empty.
    fn step<const D: usize>(&self, pos: &[f64; D], points: &[[f64; D]]) -> Option<[f64; D]> {
        let h2 = self.bandwidth * self.bandwidth;
        // Gaussian support truncated at 3h: weights beyond are < e^-4.5.
        let range2 = match self.kernel {
            Kernel::Flat => h2,
            Kernel::Gaussian => 9.0 * h2,
        };
        let mut num = [0.0; D];
        let mut den = 0.0;
        for p in points {
            let d2 = dist2(pos, p);
            if d2 > range2 {
                continue;
            }
            let w = match self.kernel {
                Kernel::Flat => 1.0,
                Kernel::Gaussian => (-d2 / (2.0 * h2)).exp(),
            };
            for i in 0..D {
                num[i] += w * p[i];
            }
            den += w;
        }
        if den == 0.0 {
            return None;
        }
        for v in num.iter_mut() {
            *v /= den;
        }
        Some(num)
    }

    /// Run Mean Shift on `points`.
    ///
    /// Returns one label per point plus the converged mode of each cluster.
    /// Empty input yields an empty clustering.
    pub fn fit<const D: usize>(&self, points: &[[f64; D]]) -> Clustering<D> {
        if points.is_empty() {
            return Clustering { labels: Vec::new(), centers: Vec::new() };
        }
        let eps = self.tol * self.bandwidth;

        // Mode-seek from every point.
        let mut converged: Vec<[f64; D]> = Vec::with_capacity(points.len());
        for start in points {
            let mut pos = *start;
            for _ in 0..self.max_iter {
                let Some(next) = self.step(&pos, points) else { break };
                let moved = dist(&next, &pos);
                pos = next;
                if moved < eps {
                    break;
                }
            }
            converged.push(pos);
        }

        // Fuse modes closer than merge_frac · h; first-come order keeps the
        // procedure deterministic.
        let merge2 = (self.merge_frac * self.bandwidth).powi(2);
        let mut centers: Vec<[f64; D]> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut labels = Vec::with_capacity(points.len());
        for mode in &converged {
            let found =
                centers.iter().enumerate().find(|(_, c)| dist2(mode, c) <= merge2).map(|(i, _)| i);
            match found {
                Some(i) => {
                    // Running average keeps the fused mode centered.
                    // lint: allow(panic, "i comes from centers.iter().enumerate(); counts grows in lockstep with centers")
                    let n = counts[i] as f64;
                    for d in 0..D {
                        // lint: allow(panic, "i comes from centers.iter().enumerate(); d < D indexes [f64; D]")
                        centers[i][d] = (centers[i][d] * n + mode[d]) / (n + 1.0);
                    }
                    // lint: allow(panic, "i comes from centers.iter().enumerate(); counts grows in lockstep with centers")
                    counts[i] += 1;
                    labels.push(i);
                }
                None => {
                    centers.push(*mode);
                    counts.push(1);
                    labels.push(centers.len() - 1);
                }
            }
        }
        Clustering { labels, centers }
    }

    /// Estimate a bandwidth from the data: `factor` times the median
    /// nearest-neighbour distance. A robust default when the caller has no
    /// domain-derived scale. Returns `None` for fewer than 2 points.
    pub fn estimate_bandwidth<const D: usize>(points: &[[f64; D]], factor: f64) -> Option<f64> {
        if points.len() < 2 {
            return None;
        }
        let mut nn: Vec<f64> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                points
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, q)| dist2(p, q))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        nn.sort_by(f64::total_cmp);
        let median = nn[nn.len() / 2].sqrt();
        // All points may coincide; fall back to a nominal scale.
        Some(if median > 0.0 { factor * median } else { factor })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<[f64; 2]> {
        let mut pts = Vec::new();
        for i in 0..10 {
            let o = i as f64 * 0.01;
            pts.push([1.0 + o, 2.0 - o]);
            pts.push([10.0 - o, 20.0 + o]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs_flat() {
        let c = MeanShift::new(1.0).fit(&two_blobs());
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.cluster_sizes(), vec![10, 10]);
        // Modes land near blob centers.
        assert!(dist(&c.centers[0], &[1.045, 1.955]) < 0.1);
        assert!(dist(&c.centers[1], &[9.955, 20.045]) < 0.1);
    }

    #[test]
    fn separates_two_blobs_gaussian() {
        let c = MeanShift::new(0.5).kernel(Kernel::Gaussian).fit(&two_blobs());
        assert_eq!(c.n_clusters(), 2);
    }

    #[test]
    fn singletons_remain_singletons() {
        let pts: Vec<[f64; 1]> = vec![[0.0], [100.0], [250.0]];
        let c = MeanShift::new(1.0).fit(&pts);
        assert_eq!(c.n_clusters(), 3);
        assert_eq!(c.cluster_sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn one_big_bandwidth_gives_one_cluster() {
        let c = MeanShift::new(1000.0).fit(&two_blobs());
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.cluster_sizes(), vec![20]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<[f64; 2]> = Vec::new();
        let c = MeanShift::new(1.0).fit(&empty);
        assert_eq!(c.n_clusters(), 0);
        assert!(c.labels.is_empty());

        let single = vec![[3.0, 4.0]];
        let c = MeanShift::new(1.0).fit(&single);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.labels, vec![0]);
        assert_eq!(c.centers[0], [3.0, 4.0]);
    }

    #[test]
    fn identical_points_collapse_to_one_mode() {
        let pts = vec![[5.0, 5.0]; 50];
        let c = MeanShift::new(0.1).fit(&pts);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.cluster_sizes(), vec![50]);
    }

    #[test]
    fn deterministic_across_runs() {
        let pts = two_blobs();
        let ms = MeanShift::new(1.0);
        assert_eq!(ms.fit(&pts), ms.fit(&pts));
    }

    #[test]
    fn bandwidth_estimation() {
        let pts = two_blobs();
        let h = MeanShift::estimate_bandwidth(&pts, 3.0).unwrap();
        assert!(h > 0.0 && h < 5.0, "h = {h}");
        assert_eq!(MeanShift::estimate_bandwidth::<2>(&[], 3.0), None);
        assert_eq!(MeanShift::estimate_bandwidth(&[[1.0]], 3.0), None);
        // Coincident points fall back to the factor itself.
        assert_eq!(MeanShift::estimate_bandwidth(&[[1.0], [1.0]], 3.0), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = MeanShift::new(0.0);
    }

    #[test]
    fn three_periodic_groups_plus_noise() {
        // Emulates the paper's scenario: checkpoint writes (long segments,
        // big volume), periodic reads (short segments, small volume), and a
        // couple of one-off operations.
        let mut pts: Vec<[f64; 2]> = Vec::new();
        for i in 0..20 {
            pts.push([60.0 + (i % 3) as f64 * 0.2, 8.0 + (i % 2) as f64 * 0.1]);
        }
        for i in 0..15 {
            pts.push([5.0 + (i % 4) as f64 * 0.05, 2.0]);
        }
        pts.push([300.0, 12.0]);
        pts.push([1500.0, 1.0]);
        let c = MeanShift::new(2.0).fit(&pts);
        let sizes = c.cluster_sizes();
        let periodic: Vec<_> = sizes.iter().filter(|&&s| s > 1).collect();
        assert_eq!(periodic.len(), 2, "sizes: {sizes:?}");
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 2);
    }
}
