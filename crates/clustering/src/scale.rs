//! Feature scaling for clustering inputs.
//!
//! MOSAIC clusters `(segment duration, operation volume)` pairs. The two
//! axes live on wildly different scales (seconds vs bytes) and both span
//! orders of magnitude, so the categorizer log-transforms and normalizes
//! before hand-tuning a bandwidth. The ablation benches compare these
//! policies.

use serde::{Deserialize, Serialize};

/// Per-axis scaling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ScaleKind {
    /// `log10(1 + x)` — compresses orders of magnitude; MOSAIC's default for
    /// durations and volumes.
    #[default]
    Log,
    /// Min-max to `[0, 1]`.
    MinMax,
    /// Z-score (zero mean, unit variance; degenerate axes map to 0).
    ZScore,
    /// Leave the axis untouched.
    Identity,
}

/// Fitted scaling parameters for `D`-dimensional points.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler<const D: usize> {
    kinds: [ScaleKind; D],
    // For MinMax: (min, max); for ZScore: (mean, std). Unused otherwise.
    fitted: [(f64, f64); D],
}

impl<const D: usize> Scaler<D> {
    /// Fit a scaler applying `kinds[d]` to axis `d`.
    pub fn fit(points: &[[f64; D]], kinds: [ScaleKind; D]) -> Self {
        let mut fitted = [(0.0, 0.0); D];
        for d in 0..D {
            // lint: allow(panic, "d < D indexes the [_; D] kinds array")
            match kinds[d] {
                ScaleKind::MinMax => {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for p in points {
                        // lint: allow(panic, "d < D indexes each [f64; D] point")
                        lo = lo.min(p[d]);
                        // lint: allow(panic, "d < D indexes each [f64; D] point")
                        hi = hi.max(p[d]);
                    }
                    if points.is_empty() {
                        lo = 0.0;
                        hi = 1.0;
                    }
                    // lint: allow(panic, "d < D indexes the [_; D] fitted array")
                    fitted[d] = (lo, hi);
                }
                ScaleKind::ZScore => {
                    let n = points.len().max(1) as f64;
                    // lint: allow(panic, "d < D indexes each [f64; D] point")
                    let mean = points.iter().map(|p| p[d]).sum::<f64>() / n;
                    // lint: allow(panic, "d < D indexes each [f64; D] point")
                    let var = points.iter().map(|p| (p[d] - mean).powi(2)).sum::<f64>() / n;
                    // lint: allow(panic, "d < D indexes the [_; D] fitted array")
                    fitted[d] = (mean, var.sqrt());
                }
                ScaleKind::Log | ScaleKind::Identity => {}
            }
        }
        Scaler { kinds, fitted }
    }

    /// Transform one point.
    pub fn transform(&self, p: &[f64; D]) -> [f64; D] {
        let mut out = [0.0; D];
        for d in 0..D {
            out[d] = match self.kinds[d] {
                ScaleKind::Log => (1.0 + p[d].max(0.0)).log10(),
                ScaleKind::MinMax => {
                    let (lo, hi) = self.fitted[d];
                    if hi > lo {
                        (p[d] - lo) / (hi - lo)
                    } else {
                        0.0
                    }
                }
                ScaleKind::ZScore => {
                    let (mean, std) = self.fitted[d];
                    if std > 0.0 {
                        (p[d] - mean) / std
                    } else {
                        0.0
                    }
                }
                ScaleKind::Identity => p[d],
            };
        }
        out
    }

    /// Transform a whole slice.
    pub fn transform_all(&self, points: &[[f64; D]]) -> Vec<[f64; D]> {
        points.iter().map(|p| self.transform(p)).collect()
    }
}

/// Convenience: fit-and-transform with the same policy on every axis.
pub fn scale_uniform<const D: usize>(points: &[[f64; D]], kind: ScaleKind) -> Vec<[f64; D]> {
    Scaler::fit(points, [kind; D]).transform_all(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_compresses_magnitudes() {
        let pts = vec![[0.0], [9.0], [999.0], [999_999.0]];
        let out = scale_uniform(&pts, ScaleKind::Log);
        assert_eq!(out[0][0], 0.0);
        assert!((out[1][0] - 1.0).abs() < 1e-12);
        assert!((out[2][0] - 3.0).abs() < 1e-12);
        assert!((out[3][0] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn log_clamps_negatives() {
        let out = scale_uniform(&[[-5.0]], ScaleKind::Log);
        assert_eq!(out[0][0], 0.0);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let pts = vec![[10.0, -1.0], [20.0, 1.0], [15.0, 0.0]];
        let s = Scaler::fit(&pts, [ScaleKind::MinMax; 2]);
        let out = s.transform_all(&pts);
        assert_eq!(out[0], [0.0, 0.0]);
        assert_eq!(out[1], [1.0, 1.0]);
        assert_eq!(out[2], [0.5, 0.5]);
    }

    #[test]
    fn minmax_degenerate_axis_maps_to_zero() {
        let pts = vec![[5.0], [5.0]];
        let out = scale_uniform(&pts, ScaleKind::MinMax);
        assert!(out.iter().all(|p| p[0] == 0.0));
    }

    #[test]
    fn zscore_standardizes() {
        let pts = vec![[2.0], [4.0], [4.0], [4.0], [5.0], [5.0], [7.0], [9.0]];
        let out = scale_uniform(&pts, ScaleKind::ZScore);
        let mean: f64 = out.iter().map(|p| p[0]).sum::<f64>() / out.len() as f64;
        let var: f64 = out.iter().map(|p| (p[0] - mean).powi(2)).sum::<f64>() / out.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_axes() {
        let pts = vec![[1.0, 100.0], [10.0, 200.0]];
        let s = Scaler::fit(&pts, [ScaleKind::Identity, ScaleKind::MinMax]);
        let out = s.transform_all(&pts);
        assert_eq!(out[0], [1.0, 0.0]);
        assert_eq!(out[1], [10.0, 1.0]);
    }

    #[test]
    fn empty_input_is_fine() {
        let pts: Vec<[f64; 2]> = Vec::new();
        for kind in [ScaleKind::Log, ScaleKind::MinMax, ScaleKind::ZScore, ScaleKind::Identity] {
            assert!(scale_uniform(&pts, kind).is_empty());
        }
    }
}
