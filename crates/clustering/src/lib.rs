//! # mosaic-clustering
//!
//! Clustering substrate for the MOSAIC reproduction.
//!
//! MOSAIC's periodicity detection (§III-B3a of the paper) clusters trace
//! *segments* — `(segment duration, operation volume)` pairs — with
//! **Mean Shift** (Fukunaga & Hostetler 1975): every cluster of size > 1 is a
//! periodic operation, and several periodic operations can coexist in one
//! trace. This crate implements Mean Shift from scratch, plus **k-means** and
//! a lightweight **DBSCAN** used by the design-choice ablation benches, and
//! the feature-scaling and cluster-quality utilities both need.
//!
//! All algorithms operate on fixed-dimension points `[f64; D]` so the hot
//! loops stay allocation-free and auto-vectorizable.
//!
//! ```
//! use mosaic_clustering::meanshift::{Kernel, MeanShift};
//!
//! // Two tight groups and one straggler.
//! let pts: Vec<[f64; 2]> = vec![
//!     [1.0, 1.0], [1.1, 0.9], [0.9, 1.05],
//!     [9.0, 9.0], [9.1, 9.1],
//!     [50.0, -3.0],
//! ];
//! let result = MeanShift::new(1.0).kernel(Kernel::Flat).fit(&pts);
//! assert_eq!(result.n_clusters(), 3);
//! assert_eq!(result.cluster_sizes().iter().filter(|&&s| s > 1).count(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dbscan;
pub mod kmeans;
pub mod meanshift;
pub mod metrics;
pub mod point;
pub mod scale;

pub use meanshift::{Kernel, MeanShift};
pub use point::Clustering;
