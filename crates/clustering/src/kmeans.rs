//! k-means clustering with k-means++ initialization.
//!
//! Not used by MOSAIC itself — the paper chose Mean Shift because the number
//! of periodic behaviours per trace is unknown a priori. k-means is here as
//! the ablation comparator (`ablation_clustering` bench): it needs `k` fixed
//! in advance, which is exactly the deficiency the ablation demonstrates.

use crate::point::{centroid, dist2, Clustering};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;

/// k-means configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Number of clusters to produce.
    pub k: usize,
    /// Iteration cap.
    pub max_iter: usize,
    /// Convergence threshold on total center movement.
    pub tol: f64,
}

impl KMeans {
    /// k-means with default iteration cap (100) and tolerance (1e-6).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KMeans { k, max_iter: 100, tol: 1e-6 }
    }

    /// Run Lloyd's algorithm with k-means++ seeding, using `rng` for
    /// reproducible initialization. If there are fewer points than `k`, the
    /// effective `k` is the number of distinct points.
    pub fn fit<const D: usize, R: Rng>(&self, points: &[[f64; D]], rng: &mut R) -> Clustering<D> {
        if points.is_empty() {
            return Clustering { labels: Vec::new(), centers: Vec::new() };
        }
        let k = self.k.min(points.len());
        let mut centers = kmeanspp_init(points, k, rng);
        let mut labels = vec![0usize; points.len()];

        for _ in 0..self.max_iter {
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                // lint: allow(panic, "i comes from points.iter().enumerate(); labels.len() == points.len()")
                labels[i] = nearest(p, &centers).0;
            }
            // Update step.
            let mut moved = 0.0;
            for (c, center) in centers.iter_mut().enumerate() {
                let members: Vec<usize> =
                    labels.iter().enumerate().filter_map(|(i, &l)| (l == c).then_some(i)).collect();
                if members.is_empty() {
                    continue; // keep the old center; cluster may repopulate
                }
                let new = centroid(points, &members);
                moved += dist2(center, &new).sqrt();
                *center = new;
            }
            if moved < self.tol {
                break;
            }
        }
        for (i, p) in points.iter().enumerate() {
            // lint: allow(panic, "i comes from points.iter().enumerate(); labels.len() == points.len()")
            labels[i] = nearest(p, &centers).0;
        }
        Clustering { labels, centers }
    }
}

fn nearest<const D: usize>(p: &[f64; D], centers: &[[f64; D]]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centers.iter().enumerate() {
        let d = dist2(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// k-means++ seeding: first center uniform, subsequent centers sampled with
/// probability proportional to squared distance from the nearest chosen
/// center.
fn kmeanspp_init<const D: usize, R: Rng>(
    points: &[[f64; D]],
    k: usize,
    rng: &mut R,
) -> Vec<[f64; D]> {
    let mut centers = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())]);
    while centers.len() < k {
        let d2: Vec<f64> = points.iter().map(|p| nearest(p, &centers).1).collect();
        let total: f64 = d2.iter().sum();
        if total == 0.0 {
            // All remaining points coincide with chosen centers.
            centers.push(points[rng.gen_range(0..points.len())]);
            continue;
        }
        let dist = WeightedIndex::new(&d2).expect("non-negative weights with positive sum");
        centers.push(points[dist.sample(rng)]);
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> impl Rng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn blobs() -> Vec<[f64; 2]> {
        let mut pts = Vec::new();
        for i in 0..12 {
            let o = (i % 4) as f64 * 0.1;
            pts.push([0.0 + o, 0.0 - o]);
            pts.push([10.0 + o, 10.0 + o]);
        }
        pts
    }

    #[test]
    fn recovers_two_blobs() {
        let c = KMeans::new(2).fit(&blobs(), &mut rng());
        assert_eq!(c.n_clusters(), 2);
        let sizes = c.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 24);
        assert!(sizes.iter().all(|&s| s == 12), "{sizes:?}");
    }

    #[test]
    fn k_capped_at_point_count() {
        let pts = vec![[0.0], [1.0]];
        let c = KMeans::new(10).fit(&pts, &mut rng());
        assert_eq!(c.n_clusters(), 2);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<[f64; 2]> = Vec::new();
        let c = KMeans::new(3).fit(&pts, &mut rng());
        assert_eq!(c.n_clusters(), 0);
    }

    #[test]
    fn identical_points() {
        let pts = vec![[7.0, 7.0]; 9];
        let c = KMeans::new(3).fit(&pts, &mut rng());
        assert_eq!(c.labels.iter().filter(|&&l| l == c.labels[0]).count(), 9);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let pts = blobs();
        let a = KMeans::new(2).fit(&pts, &mut rng());
        let b = KMeans::new(2).fit(&pts, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = KMeans::new(0);
    }
}
