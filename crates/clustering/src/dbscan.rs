//! Density-based clustering (DBSCAN), used by the ablation benches as a
//! second alternative to Mean Shift for segment grouping.
//!
//! DBSCAN's notion of "cluster = dense region" is close in spirit to
//! MOSAIC's "segments with comparable duration and volume", but it labels
//! sparse points as noise rather than singleton clusters — a semantic
//! difference the ablation quantifies (MOSAIC treats a singleton as a
//! non-periodic one-off operation, which is meaningful, not noise).

use crate::point::{centroid, dist2, Clustering};

/// DBSCAN configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Dbscan {
    /// Neighbourhood radius.
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Dbscan {
    /// DBSCAN with the given radius and core threshold.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        assert!(min_pts >= 1, "min_pts must be at least 1");
        Dbscan { eps, min_pts }
    }

    /// Run DBSCAN. Unclustered points get [`Clustering::NOISE`]; centers are
    /// the centroids of each cluster's members.
    pub fn fit<const D: usize>(&self, points: &[[f64; D]]) -> Clustering<D> {
        let n = points.len();
        let eps2 = self.eps * self.eps;
        let mut labels = vec![Clustering::<D>::NOISE; n];
        let mut visited = vec![false; n];
        let mut next_cluster = 0usize;

        let neighbors = |i: usize| -> Vec<usize> {
            // lint: allow(panic, "i and j range over 0..n == points.len()")
            (0..n).filter(|&j| dist2(&points[i], &points[j]) <= eps2).collect()
        };

        for i in 0..n {
            // lint: allow(panic, "i ranges over 0..n == visited.len()")
            if visited[i] {
                continue;
            }
            // lint: allow(panic, "i ranges over 0..n == visited.len() == labels.len()")
            visited[i] = true;
            let nbrs = neighbors(i);
            if nbrs.len() < self.min_pts {
                continue; // stays noise unless captured as a border point
            }
            let cluster = next_cluster;
            next_cluster += 1;
            // lint: allow(panic, "i ranges over 0..n == labels.len()")
            labels[i] = cluster;
            let mut frontier = nbrs;
            while let Some(j) = frontier.pop() {
                // lint: allow(panic, "j comes from neighbors(), which yields indices in 0..n == labels.len()")
                if labels[j] == Clustering::<D>::NOISE {
                    // lint: allow(panic, "j comes from neighbors(), which yields indices in 0..n == labels.len()")
                    labels[j] = cluster; // border point
                }
                // lint: allow(panic, "j comes from neighbors(), which yields indices in 0..n == visited.len()")
                if visited[j] {
                    continue;
                }
                // lint: allow(panic, "j comes from neighbors(), which yields indices in 0..n == visited.len()")
                visited[j] = true;
                let jn = neighbors(j);
                if jn.len() >= self.min_pts {
                    // lint: allow(panic, "j comes from neighbors(), which yields indices in 0..n == labels.len()")
                    labels[j] = cluster;
                    frontier.extend(jn);
                }
            }
        }

        let centers = (0..next_cluster)
            .map(|c| {
                let members: Vec<usize> =
                    labels.iter().enumerate().filter_map(|(i, &l)| (l == c).then_some(i)).collect();
                centroid(points, &members)
            })
            .collect();
        Clustering { labels, centers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_dense_blobs_and_noise() {
        let mut pts: Vec<[f64; 2]> = Vec::new();
        for i in 0..8 {
            pts.push([0.0 + i as f64 * 0.05, 0.0]);
            pts.push([5.0, 5.0 + i as f64 * 0.05]);
        }
        pts.push([100.0, 100.0]); // lone outlier
        let c = Dbscan::new(0.5, 3).fit(&pts);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.labels[16], Clustering::<2>::NOISE);
        assert_eq!(c.cluster_sizes(), vec![8, 8]);
    }

    #[test]
    fn all_noise_when_sparse() {
        let pts: Vec<[f64; 1]> = vec![[0.0], [10.0], [20.0]];
        let c = Dbscan::new(1.0, 2).fit(&pts);
        assert_eq!(c.n_clusters(), 0);
        assert!(c.labels.iter().all(|&l| l == Clustering::<1>::NOISE));
    }

    #[test]
    fn min_pts_one_clusters_everything() {
        let pts: Vec<[f64; 1]> = vec![[0.0], [10.0]];
        let c = Dbscan::new(1.0, 1).fit(&pts);
        assert_eq!(c.n_clusters(), 2);
    }

    #[test]
    fn chain_connectivity() {
        // Points in a chain, each within eps of the next: one cluster.
        let pts: Vec<[f64; 1]> = (0..10).map(|i| [i as f64 * 0.9]).collect();
        let c = Dbscan::new(1.0, 2).fit(&pts);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.cluster_sizes(), vec![10]);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<[f64; 2]> = Vec::new();
        let c = Dbscan::new(1.0, 2).fit(&pts);
        assert_eq!(c.n_clusters(), 0);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn bad_eps_panics() {
        let _ = Dbscan::new(0.0, 2);
    }
}
