//! Empty library; this package exists to wire the repo-level `tests/`
//! directory (cross-crate integration tests) into the cargo workspace via
//! explicit `[[test]]` path entries in its manifest.

#![forbid(unsafe_code)]
