//! The category vocabulary of Table I.

use mosaic_darshan::ops::OpKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Temporality labels: *when* the I/O of one direction happens, relative to
/// the four equal execution-time chunks (§III-B3b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TemporalityLabel {
    /// Dominant activity in the first quarter.
    OnStart,
    /// Dominant activity in the second quarter.
    AfterStart,
    /// Dominant activity in the third quarter.
    BeforeEnd,
    /// Dominant activity in the last quarter.
    OnEnd,
    /// Activity concentrated in the middle two quarters.
    AfterStartBeforeEnd,
    /// Activity spread evenly (coefficient of variation < 25 %).
    Steady,
    /// Below the significance threshold (default < 100 MB).
    Insignificant,
}

impl TemporalityLabel {
    /// All labels, in a stable order.
    pub const ALL: [TemporalityLabel; 7] = [
        TemporalityLabel::OnStart,
        TemporalityLabel::AfterStart,
        TemporalityLabel::BeforeEnd,
        TemporalityLabel::OnEnd,
        TemporalityLabel::AfterStartBeforeEnd,
        TemporalityLabel::Steady,
        TemporalityLabel::Insignificant,
    ];

    /// Paper-style snake_case suffix (combined with a direction prefix).
    pub fn suffix(self) -> &'static str {
        match self {
            TemporalityLabel::OnStart => "on_start",
            TemporalityLabel::AfterStart => "after_start",
            TemporalityLabel::BeforeEnd => "before_end",
            TemporalityLabel::OnEnd => "on_end",
            TemporalityLabel::AfterStartBeforeEnd => "after_start_before_end",
            TemporalityLabel::Steady => "steady",
            TemporalityLabel::Insignificant => "insignificant",
        }
    }
}

/// Order of magnitude of a detected period (§III-B3a: "several labels give
/// an order of magnitude of the period").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PeriodMagnitude {
    /// Period under a minute.
    Second,
    /// Period in minutes (< 1 h).
    Minute,
    /// Period in hours (< 1 day).
    Hour,
    /// Period of a day or more.
    DayOrMore,
}

impl PeriodMagnitude {
    /// Classify a period in seconds.
    pub fn of(period_seconds: f64) -> PeriodMagnitude {
        if period_seconds < 60.0 {
            PeriodMagnitude::Second
        } else if period_seconds < 3600.0 {
            PeriodMagnitude::Minute
        } else if period_seconds < 86_400.0 {
            PeriodMagnitude::Hour
        } else {
            PeriodMagnitude::DayOrMore
        }
    }

    /// Paper-style suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            PeriodMagnitude::Second => "second",
            PeriodMagnitude::Minute => "minute",
            PeriodMagnitude::Hour => "hour",
            PeriodMagnitude::DayOrMore => "day_or_more",
        }
    }
}

/// Metadata-impact labels (§III-B3c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetadataLabel {
    /// More than 250 requests in one second, at least once.
    HighSpike,
    /// At least 5 spikes of 50+ requests.
    MultipleSpikes,
    /// At least 5 spikes *and* an average of 50+ requests per second over
    /// the whole execution.
    HighDensity,
    /// Fewer metadata operations than ranks.
    InsignificantLoad,
}

impl MetadataLabel {
    /// All labels, in a stable order.
    pub const ALL: [MetadataLabel; 4] = [
        MetadataLabel::HighSpike,
        MetadataLabel::MultipleSpikes,
        MetadataLabel::HighDensity,
        MetadataLabel::InsignificantLoad,
    ];

    /// Paper-style name.
    pub fn name(self) -> &'static str {
        match self {
            MetadataLabel::HighSpike => "metadata_high_spike",
            MetadataLabel::MultipleSpikes => "metadata_multiple_spikes",
            MetadataLabel::HighDensity => "metadata_high_density",
            MetadataLabel::InsignificantLoad => "metadata_insignificant_load",
        }
    }
}

/// One MOSAIC category. Categories are non-exclusive: a trace holds a set of
/// them (e.g. a simulation can be `read_on_start`, `write_periodic_minute`
/// *and* `metadata_multiple_spikes` at once).
///
/// Serializes as its canonical snake_case [`Category::name`] so JSON reports
/// read exactly like the paper's vocabulary (and categories can key JSON
/// maps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// A temporality label for one direction.
    Temporality {
        /// Read or write.
        kind: OpKindTag,
        /// The label.
        label: TemporalityLabel,
    },
    /// The direction exhibits at least one periodic operation.
    Periodic {
        /// Read or write.
        kind: OpKindTag,
    },
    /// Period order of magnitude for a periodic direction.
    PeriodicMagnitude {
        /// Read or write.
        kind: OpKindTag,
        /// The magnitude bucket.
        magnitude: PeriodMagnitude,
    },
    /// Periodic operations spend < 25 % of each period doing I/O.
    PeriodicLowBusyTime {
        /// Read or write.
        kind: OpKindTag,
    },
    /// Periodic operations spend ≥ 25 % of each period doing I/O.
    PeriodicHighBusyTime {
        /// Read or write.
        kind: OpKindTag,
    },
    /// A metadata-impact label (direction-independent).
    Metadata(MetadataLabel),
}

/// `OpKind` mirror that implements `Ord` so categories can live in sorted
/// sets; converts freely to/from [`OpKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKindTag {
    /// Read direction.
    Read,
    /// Write direction.
    Write,
}

impl From<OpKind> for OpKindTag {
    fn from(k: OpKind) -> Self {
        match k {
            OpKind::Read => OpKindTag::Read,
            OpKind::Write => OpKindTag::Write,
        }
    }
}

impl From<OpKindTag> for OpKind {
    fn from(k: OpKindTag) -> Self {
        match k {
            OpKindTag::Read => OpKind::Read,
            OpKindTag::Write => OpKind::Write,
        }
    }
}

impl OpKindTag {
    /// Lowercase prefix used in category names.
    pub fn prefix(self) -> &'static str {
        match self {
            OpKindTag::Read => "read",
            OpKindTag::Write => "write",
        }
    }
}

/// The three characterization axes of §III-B3. Every [`Category`] belongs to
/// exactly one axis; invariant checks (e.g. time-scale metamorphic tests)
/// often hold on one axis but not the others, so reports can be projected
/// per axis via [`crate::TraceReport::categories_on`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CategoryAxis {
    /// §III-B3b: when the I/O of a direction happens.
    Temporality,
    /// §III-B3a: periodic behavior, period magnitude, busy time.
    Periodicity,
    /// §III-B3c: metadata pressure.
    Metadata,
}

impl CategoryAxis {
    /// All axes, in a stable order.
    pub const ALL: [CategoryAxis; 3] =
        [CategoryAxis::Temporality, CategoryAxis::Periodicity, CategoryAxis::Metadata];
}

impl Category {
    /// The characterization axis this category belongs to.
    pub fn axis(&self) -> CategoryAxis {
        match self {
            Category::Temporality { .. } => CategoryAxis::Temporality,
            Category::Periodic { .. }
            | Category::PeriodicMagnitude { .. }
            | Category::PeriodicLowBusyTime { .. }
            | Category::PeriodicHighBusyTime { .. } => CategoryAxis::Periodicity,
            Category::Metadata(_) => CategoryAxis::Metadata,
        }
    }

    /// Canonical snake_case name, matching the paper's vocabulary with the
    /// direction made explicit (the paper writes "*periodic*" and clarifies
    /// the direction in prose; we encode it in the name).
    pub fn name(&self) -> String {
        match self {
            Category::Temporality { kind, label } => {
                format!("{}_{}", kind.prefix(), label.suffix())
            }
            Category::Periodic { kind } => format!("{}_periodic", kind.prefix()),
            Category::PeriodicMagnitude { kind, magnitude } => {
                format!("{}_periodic_{}", kind.prefix(), magnitude.suffix())
            }
            Category::PeriodicLowBusyTime { kind } => {
                format!("{}_periodic_low_busy_time", kind.prefix())
            }
            Category::PeriodicHighBusyTime { kind } => {
                format!("{}_periodic_high_busy_time", kind.prefix())
            }
            Category::Metadata(label) => label.name().to_owned(),
        }
    }

    /// Parse a canonical name back into a category. Inverse of
    /// [`Category::name`].
    pub fn parse(name: &str) -> Option<Category> {
        for label in MetadataLabel::ALL {
            if label.name() == name {
                return Some(Category::Metadata(label));
            }
        }
        let (kind, rest) = if let Some(rest) = name.strip_prefix("read_") {
            (OpKindTag::Read, rest)
        } else if let Some(rest) = name.strip_prefix("write_") {
            (OpKindTag::Write, rest)
        } else {
            return None;
        };
        if rest == "periodic" {
            return Some(Category::Periodic { kind });
        }
        if rest == "periodic_low_busy_time" {
            return Some(Category::PeriodicLowBusyTime { kind });
        }
        if rest == "periodic_high_busy_time" {
            return Some(Category::PeriodicHighBusyTime { kind });
        }
        if let Some(mag) = rest.strip_prefix("periodic_") {
            for m in [
                PeriodMagnitude::Second,
                PeriodMagnitude::Minute,
                PeriodMagnitude::Hour,
                PeriodMagnitude::DayOrMore,
            ] {
                if m.suffix() == mag {
                    return Some(Category::PeriodicMagnitude { kind, magnitude: m });
                }
            }
            return None;
        }
        for label in TemporalityLabel::ALL {
            if label.suffix() == rest {
                return Some(Category::Temporality { kind, label });
            }
        }
        None
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl Serialize for Category {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.name())
    }
}

impl<'de> Deserialize<'de> for Category {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let name = String::deserialize(deserializer)?;
        Category::parse(&name)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown category {name:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_buckets() {
        assert_eq!(PeriodMagnitude::of(5.0), PeriodMagnitude::Second);
        assert_eq!(PeriodMagnitude::of(59.99), PeriodMagnitude::Second);
        assert_eq!(PeriodMagnitude::of(60.0), PeriodMagnitude::Minute);
        assert_eq!(PeriodMagnitude::of(3599.0), PeriodMagnitude::Minute);
        assert_eq!(PeriodMagnitude::of(3600.0), PeriodMagnitude::Hour);
        assert_eq!(PeriodMagnitude::of(90_000.0), PeriodMagnitude::DayOrMore);
    }

    #[test]
    fn names_match_paper_vocabulary() {
        let c = Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::OnStart };
        assert_eq!(c.name(), "read_on_start");
        let c = Category::Temporality { kind: OpKindTag::Write, label: TemporalityLabel::OnEnd };
        assert_eq!(c.name(), "write_on_end");
        let c = Category::PeriodicMagnitude {
            kind: OpKindTag::Write,
            magnitude: PeriodMagnitude::Minute,
        };
        assert_eq!(c.name(), "write_periodic_minute");
        assert_eq!(Category::Metadata(MetadataLabel::HighSpike).name(), "metadata_high_spike");
        assert_eq!(
            Category::PeriodicLowBusyTime { kind: OpKindTag::Write }.name(),
            "write_periodic_low_busy_time"
        );
    }

    #[test]
    fn parse_roundtrips_every_category() {
        let mut all: Vec<Category> = Vec::new();
        for kind in [OpKindTag::Read, OpKindTag::Write] {
            for label in TemporalityLabel::ALL {
                all.push(Category::Temporality { kind, label });
            }
            all.push(Category::Periodic { kind });
            all.push(Category::PeriodicLowBusyTime { kind });
            all.push(Category::PeriodicHighBusyTime { kind });
            for magnitude in [
                PeriodMagnitude::Second,
                PeriodMagnitude::Minute,
                PeriodMagnitude::Hour,
                PeriodMagnitude::DayOrMore,
            ] {
                all.push(Category::PeriodicMagnitude { kind, magnitude });
            }
        }
        for label in MetadataLabel::ALL {
            all.push(Category::Metadata(label));
        }
        for c in all {
            assert_eq!(Category::parse(&c.name()), Some(c), "{}", c.name());
        }
        assert_eq!(Category::parse("bogus"), None);
        assert_eq!(Category::parse("read_periodic_nanosecond"), None);
        assert_eq!(Category::parse("write_bogus"), None);
    }

    #[test]
    fn opkind_conversion() {
        assert_eq!(OpKindTag::from(OpKind::Read), OpKindTag::Read);
        assert_eq!(OpKind::from(OpKindTag::Write).label(), "write");
    }

    #[test]
    fn display_matches_name() {
        let c = Category::Metadata(MetadataLabel::HighDensity);
        assert_eq!(format!("{c}"), c.name());
    }

    #[test]
    fn every_category_maps_to_one_axis() {
        let t = Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::Steady };
        assert_eq!(t.axis(), CategoryAxis::Temporality);
        for c in [
            Category::Periodic { kind: OpKindTag::Write },
            Category::PeriodicMagnitude { kind: OpKindTag::Read, magnitude: PeriodMagnitude::Hour },
            Category::PeriodicLowBusyTime { kind: OpKindTag::Read },
            Category::PeriodicHighBusyTime { kind: OpKindTag::Write },
        ] {
            assert_eq!(c.axis(), CategoryAxis::Periodicity, "{}", c.name());
        }
        assert_eq!(Category::Metadata(MetadataLabel::HighSpike).axis(), CategoryAxis::Metadata);
    }
}
