//! Aggregate statistics over many trace reports (§III-B4's "statistics
//! about the global behavior").
//!
//! MOSAIC reports every distribution twice: over the **deduplicated**
//! single-run set (application behaviour) and over **all runs** (load on
//! the parallel file system). [`CategoryCounts`] is the building block for
//! both views; the pipeline crate owns the dedup bookkeeping.

use crate::category::Category;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How many traces carry each category, with the population size for
/// percentage math.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CategoryCounts {
    counts: BTreeMap<Category, usize>,
    /// Number of trace category-sets aggregated.
    pub total: usize,
}

impl CategoryCounts {
    /// Aggregate a collection of category sets.
    pub fn from_sets<'a, I: IntoIterator<Item = &'a BTreeSet<Category>>>(sets: I) -> Self {
        let mut out = CategoryCounts::default();
        for set in sets {
            out.add(set);
        }
        out
    }

    /// Fold one more trace in.
    pub fn add(&mut self, set: &BTreeSet<Category>) {
        self.total += 1;
        for &c in set {
            *self.counts.entry(c).or_insert(0) += 1;
        }
    }

    /// Count for one category.
    pub fn count(&self, c: Category) -> usize {
        self.counts.get(&c).copied().unwrap_or(0)
    }

    /// Fraction of traces carrying `c`, in `[0, 1]`.
    pub fn fraction(&self, c: Category) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(c) as f64 / self.total as f64
        }
    }

    /// All `(category, count)` pairs, sorted by descending count.
    pub fn ranked(&self) -> Vec<(Category, usize)> {
        let mut v: Vec<(Category, usize)> = self.counts.iter().map(|(&c, &n)| (c, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Iterate `(category, count)` in category order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, usize)> + '_ {
        self.counts.iter().map(|(&c, &n)| (c, n))
    }

    /// CSV export (`category,count,fraction`), for downstream plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("category,count,fraction\n");
        for (c, n) in self.ranked() {
            out.push_str(&format!("{},{},{:.6}\n", c.name(), n, self.fraction(c)));
        }
        out
    }

    /// Half-L1 drift between the per-category share marginals: 0 means
    /// identical mixes, larger means more drift. Because MOSAIC categories
    /// are **non-exclusive** (a trace carries several), this is a sum over
    /// marginals, not a probability-distribution distance — it can exceed
    /// 1 when many categories move at once.
    pub fn l1_drift(&self, other: &CategoryCounts) -> f64 {
        let cats: std::collections::BTreeSet<Category> =
            self.counts.keys().chain(other.counts.keys()).copied().collect();
        0.5 * cats.into_iter().map(|c| (self.fraction(c) - other.fraction(c)).abs()).sum::<f64>()
    }

    /// The categories whose share moved the most between `self` and
    /// `other`, as `(category, share delta)` sorted by |delta| descending.
    pub fn biggest_movers(&self, other: &CategoryCounts, top: usize) -> Vec<(Category, f64)> {
        let cats: std::collections::BTreeSet<Category> =
            self.counts.keys().chain(other.counts.keys()).copied().collect();
        let mut moves: Vec<(Category, f64)> =
            cats.into_iter().map(|c| (c, other.fraction(c) - self.fraction(c))).collect();
        moves.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
        moves.truncate(top);
        moves
    }

    /// Render a `name  count  percent` table, the terminal stand-in for the
    /// paper's distribution tables.
    pub fn render_table(&self, title: &str) -> String {
        let mut out = format!("{title} ({} traces)\n", self.total);
        let width = self.counts.keys().map(|c| c.name().len()).max().unwrap_or(8).max(8);
        for (c, n) in self.ranked() {
            out.push_str(&format!(
                "  {:width$}  {:>8}  {:>5.1}%\n",
                c.name(),
                n,
                100.0 * self.fraction(c),
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::{MetadataLabel, OpKindTag, TemporalityLabel};

    fn c_read_start() -> Category {
        Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::OnStart }
    }
    fn c_spike() -> Category {
        Category::Metadata(MetadataLabel::HighSpike)
    }

    #[test]
    fn counting_and_fractions() {
        let sets: Vec<BTreeSet<Category>> = vec![
            [c_read_start(), c_spike()].into_iter().collect(),
            [c_read_start()].into_iter().collect(),
            BTreeSet::new(),
            [c_spike()].into_iter().collect(),
        ];
        let counts = CategoryCounts::from_sets(&sets);
        assert_eq!(counts.total, 4);
        assert_eq!(counts.count(c_read_start()), 2);
        assert_eq!(counts.fraction(c_read_start()), 0.5);
        assert_eq!(counts.fraction(c_spike()), 0.5);
        let absent = Category::Metadata(MetadataLabel::HighDensity);
        assert_eq!(counts.count(absent), 0);
        assert_eq!(counts.fraction(absent), 0.0);
    }

    #[test]
    fn ranked_is_descending() {
        let sets: Vec<BTreeSet<Category>> = vec![
            [c_read_start(), c_spike()].into_iter().collect(),
            [c_read_start()].into_iter().collect(),
        ];
        let ranked = CategoryCounts::from_sets(&sets).ranked();
        assert_eq!(ranked[0], (c_read_start(), 2));
        assert_eq!(ranked[1], (c_spike(), 1));
    }

    #[test]
    fn empty_population() {
        let counts = CategoryCounts::default();
        assert_eq!(counts.fraction(c_spike()), 0.0);
        assert!(counts.ranked().is_empty());
    }

    #[test]
    fn table_rendering() {
        let sets: Vec<BTreeSet<Category>> =
            vec![[c_read_start()].into_iter().collect(), [c_read_start()].into_iter().collect()];
        let t = CategoryCounts::from_sets(&sets).render_table("Temporality");
        assert!(t.contains("Temporality (2 traces)"));
        assert!(t.contains("read_on_start"));
        assert!(t.contains("100.0%"));
    }

    #[test]
    fn csv_export() {
        let sets: Vec<BTreeSet<Category>> =
            vec![[c_read_start()].into_iter().collect(), BTreeSet::new()];
        let csv = CategoryCounts::from_sets(&sets).to_csv();
        assert!(csv.starts_with("category,count,fraction\n"));
        assert!(csv.contains("read_on_start,1,0.500000"));
    }

    #[test]
    fn l1_drift_distance() {
        let a = CategoryCounts::from_sets(&[
            [c_read_start()].into_iter().collect::<BTreeSet<Category>>(),
            [c_read_start()].into_iter().collect(),
        ]);
        let b = CategoryCounts::from_sets(&[
            [c_read_start()].into_iter().collect::<BTreeSet<Category>>(),
            [c_spike()].into_iter().collect(),
        ]);
        // a: read 100%, spike 0%; b: read 50%, spike 50% → TV = 0.5.
        assert!((a.l1_drift(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.l1_drift(&a), 0.0);
        // Symmetry.
        assert_eq!(a.l1_drift(&b), b.l1_drift(&a));
    }

    #[test]
    fn biggest_movers_ranked_by_magnitude() {
        let a = CategoryCounts::from_sets(&[[c_read_start()]
            .into_iter()
            .collect::<BTreeSet<Category>>()]);
        let b =
            CategoryCounts::from_sets(&[[c_spike()].into_iter().collect::<BTreeSet<Category>>()]);
        let movers = a.biggest_movers(&b, 5);
        assert_eq!(movers.len(), 2);
        assert!(movers.iter().any(|&(c, d)| c == c_read_start() && d == -1.0));
        assert!(movers.iter().any(|&(c, d)| c == c_spike() && d == 1.0));
    }

    #[test]
    fn serde_roundtrip() {
        let sets: Vec<BTreeSet<Category>> = vec![[c_spike()].into_iter().collect()];
        let counts = CategoryCounts::from_sets(&sets);
        let json = serde_json::to_string(&counts).unwrap();
        let back: CategoryCounts = serde_json::from_str(&json).unwrap();
        assert_eq!(back, counts);
    }
}
