//! Automatic category discovery — the paper's second future-work item.
//!
//! §V: *"category determination could be made more automatic using
//! clustering methods."* Table I's categories were designed by hand from a
//! literature survey; this module goes the other way: it embeds every
//! trace's report into a fixed feature vector (volumes, temporal chunk
//! shape, metadata pressure) and clusters the embeddings. The
//! [`ClusterProfile`]s then show which hand-made categories each discovered
//! cluster corresponds to — on the Blue Waters-like population the
//! discovered structure aligns with the paper's vocabulary, which is
//! evidence the hand-made taxonomy carves the space at its joints.

use crate::categorize::TraceReport;
use crate::category::Category;
use mosaic_clustering::kmeans::KMeans;
use mosaic_clustering::Clustering;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dimensionality of the trace embedding.
pub const FEATURE_DIM: usize = 12;

/// Embed one trace report:
/// `[log₁₀ read bytes, log₁₀ write bytes, read chunk shares ×4,
///   write chunk shares ×4, log₁₀ meta requests, log₁₀ meta peak r/s]`.
///
/// Chunk shares are normalized so shape (not volume) drives those axes;
/// insignificant directions embed as a flat zero shape.
pub fn features(report: &TraceReport) -> [f64; FEATURE_DIM] {
    let mut out = [0.0; FEATURE_DIM];
    out[0] = (1.0 + report.read.temporality.total_bytes as f64).log10();
    out[1] = (1.0 + report.write.temporality.total_bytes as f64).log10();
    fill_shape(&mut out[2..6], &report.read.temporality.chunk_bytes);
    fill_shape(&mut out[6..10], &report.write.temporality.chunk_bytes);
    out[10] = (1.0 + report.metadata.total_requests as f64).log10();
    out[11] = (1.0 + report.metadata.peak_rps as f64).log10();
    out
}

fn fill_shape(out: &mut [f64], chunks: &[f64]) {
    let total: f64 = chunks.iter().sum();
    if total <= 0.0 {
        return;
    }
    for (o, &c) in out.iter_mut().zip(chunks) {
        // Scaled ×2 so a fully concentrated chunk (share 1.0) carries
        // comparable weight to ~2 decades of volume difference.
        *o = 2.0 * c / total;
    }
}

/// What one discovered cluster contains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterProfile {
    /// Cluster id.
    pub cluster: usize,
    /// Member count.
    pub size: usize,
    /// Hand-made categories carried by members, as `(category, fraction of
    /// members)`, sorted by descending fraction.
    pub dominant: Vec<(Category, f64)>,
}

/// Discover `k` behaviour classes among trace reports.
pub fn discover<R: Rng>(reports: &[TraceReport], k: usize, rng: &mut R) -> Clustering<FEATURE_DIM> {
    let points: Vec<[f64; FEATURE_DIM]> = reports.iter().map(features).collect();
    KMeans::new(k).fit(&points, rng)
}

/// Profile each discovered cluster against the hand-made category sets.
/// Categories below `min_fraction` of a cluster's members are omitted.
pub fn profiles(
    reports: &[TraceReport],
    clustering: &Clustering<FEATURE_DIM>,
    min_fraction: f64,
) -> Vec<ClusterProfile> {
    let mut out = Vec::new();
    for c in 0..clustering.n_clusters() {
        let members = clustering.members(c);
        if members.is_empty() {
            continue;
        }
        let mut counts: BTreeMap<Category, usize> = BTreeMap::new();
        for &m in &members {
            for &cat in &reports[m].categories {
                *counts.entry(cat).or_insert(0) += 1;
            }
        }
        let mut dominant: Vec<(Category, f64)> = counts
            .into_iter()
            .map(|(cat, n)| (cat, n as f64 / members.len() as f64))
            .filter(|&(_, f)| f >= min_fraction)
            .collect();
        dominant.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.push(ClusterProfile { cluster: c, size: members.len(), dominant });
    }
    out.sort_by_key(|p| std::cmp::Reverse(p.size));
    out
}

/// Purity of the discovered clustering against a reference labeling: the
/// fraction of traces whose cluster's majority reference label matches
/// their own. 1.0 = every cluster is label-homogeneous.
pub fn purity(clustering: &Clustering<FEATURE_DIM>, labels: &[String]) -> f64 {
    assert_eq!(clustering.labels.len(), labels.len());
    if labels.is_empty() {
        return 1.0;
    }
    let mut majority_hits = 0usize;
    for c in 0..clustering.n_clusters() {
        let members = clustering.members(c);
        if members.is_empty() {
            continue;
        }
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for &m in &members {
            *counts.entry(labels[m].as_str()).or_insert(0) += 1;
        }
        majority_hits += counts.values().copied().max().unwrap_or(0);
    }
    majority_hits as f64 / labels.len() as f64
}

/// A coarse reference label for purity scoring: the joint
/// `read-temporality × write-temporality` class of a trace.
pub fn reference_label(report: &TraceReport) -> String {
    format!(
        "r_{}+w_{}",
        report.read.temporality.label.suffix(),
        report.write.temporality.label.suffix()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Categorizer, CategorizerConfig};
    use mosaic_darshan::ops::{OpKind, Operation, OperationView};
    use rand::SeedableRng;

    const MB: u64 = 1 << 20;

    fn report(reads: Vec<Operation>, writes: Vec<Operation>) -> TraceReport {
        let view = OperationView { runtime: 1000.0, nprocs: 8, reads, writes, meta: vec![] };
        Categorizer::new(CategorizerConfig::default()).categorize(&view)
    }

    fn op(kind: OpKind, start: f64, end: f64, bytes: u64) -> Operation {
        Operation { kind, start, end, bytes, ranks: 8 }
    }

    fn population() -> Vec<TraceReport> {
        let mut reports = Vec::new();
        for i in 0..12 {
            let b = (400 + i * 10) * MB;
            // Read-on-start apps.
            reports.push(report(vec![op(OpKind::Read, 1.0, 30.0, b)], vec![]));
            // Write-on-end apps.
            reports.push(report(vec![], vec![op(OpKind::Write, 960.0, 990.0, b)]));
            // Quiet apps.
            reports.push(report(vec![op(OpKind::Read, 1.0, 2.0, MB)], vec![]));
        }
        reports
    }

    #[test]
    fn features_distinguish_behaviours() {
        let reports = population();
        let f_start = features(&reports[0]);
        let f_end = features(&reports[1]);
        let f_quiet = features(&reports[2]);
        // Read-on-start: first read-chunk axis loaded.
        assert!(f_start[2] > 1.5, "{f_start:?}");
        // Write-on-end: last write-chunk axis loaded.
        assert!(f_end[9] > 1.5, "{f_end:?}");
        // Quiet: tiny volumes.
        assert!(f_quiet[0] < f_start[0]);
    }

    #[test]
    fn discovery_recovers_the_three_behaviours() {
        let reports = population();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let clustering = discover(&reports, 3, &mut rng);
        let labels: Vec<String> = reports.iter().map(reference_label).collect();
        let p = purity(&clustering, &labels);
        assert!(p > 0.9, "purity {p}");
    }

    #[test]
    fn profiles_surface_dominant_categories() {
        let reports = population();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let clustering = discover(&reports, 3, &mut rng);
        let profiles = profiles(&reports, &clustering, 0.5);
        assert_eq!(profiles.len(), 3);
        // Some cluster must be dominated by read_on_start.
        let names: Vec<String> =
            profiles.iter().flat_map(|p| p.dominant.iter().map(|(c, _)| c.name())).collect();
        assert!(names.iter().any(|n| n == "read_on_start"), "{names:?}");
        assert!(names.iter().any(|n| n == "write_on_end"), "{names:?}");
    }

    #[test]
    fn purity_degenerate_cases() {
        let c = Clustering::<FEATURE_DIM> { labels: vec![], centers: vec![] };
        assert_eq!(purity(&c, &[]), 1.0);
        let c = Clustering::<FEATURE_DIM> { labels: vec![0, 0], centers: vec![[0.0; FEATURE_DIM]] };
        assert_eq!(purity(&c, &["a".into(), "b".into()]), 0.5);
    }

    #[test]
    fn reference_labels_are_joint() {
        let r = report(vec![op(OpKind::Read, 1.0, 30.0, 500 * MB)], vec![]);
        assert_eq!(reference_label(&r), "r_on_start+w_insignificant");
    }
}
