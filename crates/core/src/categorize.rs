//! The categorization pipeline: merging → segmentation → the three
//! characterizations → a category set (Fig 1 of the paper).

use crate::category::{Category, OpKindTag};
use crate::columnar;
use crate::config::{CategorizerConfig, PeriodicityMethod};
use crate::merge::merge_all;
use crate::metadata::{self, MetadataResult};
use crate::periodicity::{detect_periodic, PeriodicPattern};
use crate::segment::segment;
use crate::temporality::{self, TemporalityResult};
use mosaic_darshan::ops::{OpKind, Operation, OperationView};
use mosaic_darshan::TraceLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Per-direction analysis detail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectionReport {
    /// Operations surviving the two merge passes.
    pub merged_ops: usize,
    /// Operations before merging.
    pub raw_ops: usize,
    /// Temporality verdict.
    pub temporality: TemporalityResult,
    /// Detected periodic patterns (possibly several).
    pub periodic: Vec<PeriodicPattern>,
}

/// The complete MOSAIC output for one trace (§III-B4's JSON payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// The assigned non-exclusive category set.
    pub categories: BTreeSet<Category>,
    /// Read-direction detail.
    pub read: DirectionReport,
    /// Write-direction detail.
    pub write: DirectionReport,
    /// Metadata detail.
    pub metadata: MetadataResult,
    /// Job runtime (seconds), echoed for downstream consumers.
    pub runtime: f64,
    /// Rank count, echoed for downstream consumers.
    pub nprocs: u32,
}

impl TraceReport {
    /// Canonical category names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.categories.iter().map(Category::name).collect()
    }

    /// `true` if the trace carries the category.
    pub fn has(&self, category: Category) -> bool {
        self.categories.contains(&category)
    }

    /// Project the category set onto one characterization axis.
    ///
    /// Metamorphic invariants are often per-axis: uniform time scaling must
    /// preserve the temporality axis exactly, while period-magnitude buckets
    /// (periodicity axis) legitimately move with absolute time.
    pub fn categories_on(&self, axis: crate::category::CategoryAxis) -> BTreeSet<Category> {
        self.categories.iter().filter(|c| c.axis() == axis).copied().collect()
    }

    /// Direction detail by kind.
    pub fn direction(&self, kind: OpKind) -> &DirectionReport {
        match kind {
            OpKind::Read => &self.read,
            OpKind::Write => &self.write,
        }
    }

    /// Serialize to the JSON document MOSAIC writes per trace.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parse a JSON report back.
    pub fn from_json(json: &str) -> Result<TraceReport, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Wall-clock split of one categorization call, for pipeline observability.
///
/// The merge passes and the rest of the categorization (segmentation,
/// temporality, periodicity, metadata) are timed separately so the pipeline
/// can report them as distinct stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategorizeTimings {
    /// Nanoseconds spent in the merge passes (both directions).
    pub merge_nanos: u64,
    /// Nanoseconds for the whole categorization, merging included.
    pub total_nanos: u64,
}

/// The MOSAIC categorizer. Cheap to clone; holds only configuration.
#[derive(Debug, Clone, Default)]
pub struct Categorizer {
    config: CategorizerConfig,
}

impl Categorizer {
    /// Build with the given thresholds.
    pub fn new(config: CategorizerConfig) -> Self {
        Categorizer { config: config.validated() }
    }

    /// Access the configuration.
    pub fn config(&self) -> &CategorizerConfig {
        &self.config
    }

    /// Categorize a full trace log (extracts the operation view first).
    pub fn categorize_log(&self, log: &TraceLog) -> TraceReport {
        self.categorize(&OperationView::from_log(log))
    }

    /// Like [`Categorizer::categorize_log`], but also reports the wall-clock
    /// split between merging and the rest of the categorization.
    pub fn categorize_log_timed(&self, log: &TraceLog) -> (TraceReport, CategorizeTimings) {
        self.categorize_timed(&OperationView::from_log(log))
    }

    /// Categorize an operation view. The core entry point.
    pub fn categorize(&self, view: &OperationView) -> TraceReport {
        self.categorize_timed(view).0
    }

    /// Like [`Categorizer::categorize`], but also reports the wall-clock
    /// split between merging and the rest of the categorization.
    pub fn categorize_timed(&self, view: &OperationView) -> (TraceReport, CategorizeTimings) {
        // lint: allow(nondeterminism, "timings feed MetricsReport telemetry only, never ResultSnapshot digests")
        let started = std::time::Instant::now();
        let mut merge_nanos = 0u64;
        let mut categories = BTreeSet::new();

        let read = self.direction(
            &view.reads,
            view.runtime,
            OpKind::Read,
            &mut categories,
            &mut merge_nanos,
        );
        let write = self.direction(
            &view.writes,
            view.runtime,
            OpKind::Write,
            &mut categories,
            &mut merge_nanos,
        );

        let metadata = metadata::characterize(&view.meta, view.runtime, view.nprocs, &self.config);
        for label in &metadata.labels {
            categories.insert(Category::Metadata(*label));
        }

        let report = TraceReport {
            categories,
            read,
            write,
            metadata,
            runtime: view.runtime,
            nprocs: view.nprocs,
        };
        // lint: allow(cast, "elapsed nanoseconds exceed u64 only after ~584 years")
        let total_nanos = started.elapsed().as_nanos() as u64;
        let timings = CategorizeTimings { merge_nanos, total_nanos };
        (report, timings)
    }

    /// Categorize a loaded [`columnar::TraceArena`] — the zero-copy
    /// pipeline's entry point. Produces the same [`TraceReport`] as
    /// [`Categorizer::categorize_timed`] on the equivalent
    /// [`OperationView`] (the `zerocopy-vs-owned` oracle pins this), while
    /// reusing the arena's buffers for merging and materialization.
    pub fn categorize_arena_timed(
        &self,
        arena: &mut columnar::TraceArena,
    ) -> (TraceReport, CategorizeTimings) {
        // lint: allow(nondeterminism, "timings feed MetricsReport telemetry only, never ResultSnapshot digests")
        let started = std::time::Instant::now();
        let mut merge_nanos = 0u64;
        let mut categories = BTreeSet::new();
        let trace = &arena.trace;
        let scratch = &mut arena.scratch;

        let read = self.direction_columnar(
            &trace.reads,
            trace.runtime,
            OpKind::Read,
            &mut categories,
            &mut merge_nanos,
            scratch,
        );
        let write = self.direction_columnar(
            &trace.writes,
            trace.runtime,
            OpKind::Write,
            &mut categories,
            &mut merge_nanos,
            scratch,
        );

        let metadata =
            metadata::characterize(&trace.meta, trace.runtime, trace.nprocs, &self.config);
        for label in &metadata.labels {
            categories.insert(Category::Metadata(*label));
        }

        let report = TraceReport {
            categories,
            read,
            write,
            metadata,
            runtime: trace.runtime,
            nprocs: trace.nprocs,
        };
        // lint: allow(cast, "elapsed nanoseconds exceed u64 only after ~584 years")
        let total_nanos = started.elapsed().as_nanos() as u64;
        (report, CategorizeTimings { merge_nanos, total_nanos })
    }

    fn direction(
        &self,
        raw: &[Operation],
        runtime: f64,
        kind: OpKind,
        categories: &mut BTreeSet<Category>,
        merge_nanos: &mut u64,
    ) -> DirectionReport {
        let tag = OpKindTag::from(kind);
        // lint: allow(nondeterminism, "timings feed MetricsReport telemetry only, never ResultSnapshot digests")
        let merge_started = std::time::Instant::now();
        let merged = merge_all(raw, runtime, &self.config);
        // lint: allow(cast, "elapsed nanoseconds exceed u64 only after ~584 years")
        *merge_nanos += merge_started.elapsed().as_nanos() as u64;
        let temporality = temporality::characterize(&merged, runtime, &self.config);
        categories.insert(Category::Temporality { kind: tag, label: temporality.label });

        // Periodicity is only meaningful for significant directions: an
        // insignificant direction contributes no periodic categories even if
        // its few tiny operations happen to be evenly spaced.
        let significant = temporality.label != crate::category::TemporalityLabel::Insignificant;
        let periodic =
            if significant { self.detect_periodicity(&merged, runtime) } else { Vec::new() };

        insert_periodic_categories(tag, &periodic, categories, self.config.busy_time_split);

        DirectionReport { merged_ops: merged.len(), raw_ops: raw.len(), temporality, periodic }
    }

    /// One direction of the arena path: columnar merge, columnar temporality,
    /// then segmentation/periodicity on the materialized (short) merged list.
    fn direction_columnar(
        &self,
        raw: &columnar::OpColumns,
        runtime: f64,
        kind: OpKind,
        categories: &mut BTreeSet<Category>,
        merge_nanos: &mut u64,
        scratch: &mut columnar::MergeScratch,
    ) -> DirectionReport {
        let tag = OpKindTag::from(kind);
        // lint: allow(nondeterminism, "timings feed MetricsReport telemetry only, never ResultSnapshot digests")
        let merge_started = std::time::Instant::now();
        columnar::merge_all_columnar(raw, runtime, &self.config, scratch);
        // lint: allow(cast, "elapsed nanoseconds exceed u64 only after ~584 years")
        *merge_nanos += merge_started.elapsed().as_nanos() as u64;
        let temporality =
            temporality::characterize_columnar(&scratch.merged, runtime, &self.config);
        categories.insert(Category::Temporality { kind: tag, label: temporality.label });

        let significant = temporality.label != crate::category::TemporalityLabel::Insignificant;
        let periodic = if significant {
            scratch.merged.materialize(kind, &mut scratch.ops);
            self.detect_periodicity(&scratch.ops, runtime)
        } else {
            Vec::new()
        };

        insert_periodic_categories(tag, &periodic, categories, self.config.busy_time_split);

        DirectionReport {
            merged_ops: scratch.merged.len(),
            raw_ops: raw.len(),
            temporality,
            periodic,
        }
    }

    /// Periodicity detection on one direction's merged operations — shared by
    /// the row-oriented and columnar paths.
    fn detect_periodicity(&self, merged: &[Operation], runtime: f64) -> Vec<PeriodicPattern> {
        {
            let segments = segment(merged, runtime);
            match self.config.periodicity_method {
                PeriodicityMethod::MeanShift => detect_periodic(&segments, &self.config),
                PeriodicityMethod::Spectral => {
                    crate::spectral::detect_periodic_spectral(&segments, runtime, &self.config)
                }
                PeriodicityMethod::Hybrid => {
                    // Clustering first; the spectral pass then only gets the
                    // segments clustering did not explain, so the two
                    // methods complement rather than double-report.
                    let mut patterns = detect_periodic(&segments, &self.config);
                    let explained: std::collections::BTreeSet<usize> =
                        patterns.iter().flat_map(|p| p.members.iter().copied()).collect();
                    let leftover_idx: Vec<usize> =
                        (0..segments.len()).filter(|i| !explained.contains(i)).collect();
                    // lint: allow(panic, "leftover_idx is built from 0..segments.len() above")
                    let leftovers: Vec<_> = leftover_idx.iter().map(|&i| segments[i]).collect();
                    let mut extra = crate::spectral::detect_periodic_spectral(
                        &leftovers,
                        runtime,
                        &self.config,
                    );
                    // Remap member indices back into the full segment list.
                    for p in &mut extra {
                        for m in &mut p.members {
                            // lint: allow(panic, "detect_periodic_spectral returns member indices < leftovers.len() == leftover_idx.len()")
                            *m = leftover_idx[*m];
                        }
                    }
                    patterns.extend(extra);
                    patterns.sort_by(|a, b| {
                        b.occurrences.cmp(&a.occurrences).then(a.period.total_cmp(&b.period))
                    });
                    patterns
                }
            }
        }
    }
}

/// Insert the periodicity categories a direction's detected patterns imply —
/// shared by the row-oriented and columnar paths.
fn insert_periodic_categories(
    tag: OpKindTag,
    periodic: &[PeriodicPattern],
    categories: &mut BTreeSet<Category>,
    busy_time_split: f64,
) {
    if !periodic.is_empty() {
        categories.insert(Category::Periodic { kind: tag });
        for p in periodic {
            categories.insert(Category::PeriodicMagnitude { kind: tag, magnitude: p.magnitude });
            if p.is_low_busy(busy_time_split) {
                categories.insert(Category::PeriodicLowBusyTime { kind: tag });
            } else {
                categories.insert(Category::PeriodicHighBusyTime { kind: tag });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::{MetadataLabel, PeriodMagnitude, TemporalityLabel};
    use mosaic_darshan::ops::{MetaEvent, MetaKind};

    const MB: u64 = 1 << 20;

    fn op(kind: OpKind, start: f64, end: f64, bytes: u64) -> Operation {
        Operation { kind, start, end, bytes, ranks: 8 }
    }

    fn view(reads: Vec<Operation>, writes: Vec<Operation>, meta: Vec<MetaEvent>) -> OperationView {
        OperationView { runtime: 1000.0, nprocs: 8, reads, writes, meta }
    }

    fn categorizer() -> Categorizer {
        Categorizer::new(CategorizerConfig::default())
    }

    #[test]
    fn read_compute_write_pattern() {
        // The classic: read input on start, write result on end.
        let v = view(
            vec![op(OpKind::Read, 5.0, 30.0, 800 * MB)],
            vec![op(OpKind::Write, 950.0, 990.0, 500 * MB)],
            vec![],
        );
        let r = categorizer().categorize(&v);
        assert!(r.has(Category::Temporality {
            kind: OpKindTag::Read,
            label: TemporalityLabel::OnStart
        }));
        assert!(
            r.has(Category::Temporality { kind: OpKindTag::Write, label: TemporalityLabel::OnEnd })
        );
        assert!(r.has(Category::Metadata(MetadataLabel::InsignificantLoad)));
    }

    #[test]
    fn periodic_checkpointing_detected_with_final_write() {
        // Numerical simulation: checkpoints every ~100 s plus a final
        // result — the paper's introduction example ("periodic" and
        // "write on end" both).
        let mut writes: Vec<Operation> = (0..9)
            .map(|i| op(OpKind::Write, 50.0 + 100.0 * i as f64, 58.0 + 100.0 * i as f64, 300 * MB))
            .collect();
        writes.push(op(OpKind::Write, 995.0, 999.0, 64 * MB));
        let r = categorizer().categorize(&view(vec![], writes, vec![]));
        assert!(r.has(Category::Periodic { kind: OpKindTag::Write }));
        assert!(r.has(Category::PeriodicMagnitude {
            kind: OpKindTag::Write,
            magnitude: PeriodMagnitude::Minute
        }));
        assert!(r.has(Category::PeriodicLowBusyTime { kind: OpKindTag::Write }));
        // The 9th checkpoint's segment stretches to the final write, which
        // may fall just outside the cluster window; at least 8 of the 9
        // checkpoint segments must group.
        assert!(r.write.periodic[0].occurrences >= 8);
        assert!(r.has(Category::Temporality {
            kind: OpKindTag::Read,
            label: TemporalityLabel::Insignificant
        }));
    }

    #[test]
    fn insignificant_direction_has_no_periodicity() {
        // Tiny, regular writes: insignificant volume suppresses periodic
        // labels.
        let writes: Vec<Operation> = (0..10)
            .map(|i| op(OpKind::Write, 100.0 * i as f64, 100.0 * i as f64 + 1.0, MB))
            .collect();
        let r = categorizer().categorize(&view(vec![], writes, vec![]));
        assert!(!r.has(Category::Periodic { kind: OpKindTag::Write }));
        assert!(r.write.periodic.is_empty());
    }

    #[test]
    fn desynchronized_ranks_merge_before_detection() {
        // 8 ranks × 6 checkpoints, ranks staggered 0.2 s: raw 48 ops,
        // merged 6, periodic.
        let mut writes = Vec::new();
        for round in 0..6 {
            for rank in 0..8 {
                let t = 100.0 * round as f64 + rank as f64 * 0.2;
                writes.push(op(OpKind::Write, t, t + 4.0, 100 * MB));
            }
        }
        let r = categorizer().categorize(&view(vec![], writes, vec![]));
        assert_eq!(r.write.raw_ops, 48);
        assert_eq!(r.write.merged_ops, 6);
        assert!(r.has(Category::Periodic { kind: OpKindTag::Write }));
    }

    #[test]
    fn metadata_categories_flow_through() {
        let meta: Vec<MetaEvent> = (0..10)
            .map(|i| MetaEvent { time: 100.0 * i as f64, kind: MetaKind::Open, count: 300 })
            .collect();
        let r = categorizer().categorize(&view(vec![], vec![], meta));
        assert!(r.has(Category::Metadata(MetadataLabel::HighSpike)));
        assert!(r.has(Category::Metadata(MetadataLabel::MultipleSpikes)));
        assert_eq!(r.metadata.peak_rps, 300);
    }

    #[test]
    fn json_roundtrip() {
        let v = view(
            vec![op(OpKind::Read, 5.0, 30.0, 800 * MB)],
            vec![op(OpKind::Write, 950.0, 990.0, 500 * MB)],
            vec![MetaEvent { time: 1.0, kind: MetaKind::Open, count: 16 }],
        );
        let r = categorizer().categorize(&v);
        let json = r.to_json();
        let back = TraceReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert!(json.contains("read_on_start"));
    }

    #[test]
    fn empty_view_is_doubly_insignificant() {
        let r = categorizer().categorize(&view(vec![], vec![], vec![]));
        assert!(r.has(Category::Temporality {
            kind: OpKindTag::Read,
            label: TemporalityLabel::Insignificant
        }));
        assert!(r.has(Category::Temporality {
            kind: OpKindTag::Write,
            label: TemporalityLabel::Insignificant
        }));
        assert!(r.has(Category::Metadata(MetadataLabel::InsignificantLoad)));
        assert_eq!(r.categories.len(), 3);
    }

    #[test]
    fn category_names_are_exposed() {
        let v = view(vec![op(OpKind::Read, 5.0, 30.0, 800 * MB)], vec![], vec![]);
        let names = categorizer().categorize(&v).names();
        assert!(names.iter().any(|n| n == "read_on_start"));
        assert!(names.iter().any(|n| n == "write_insignificant"));
    }

    #[test]
    fn timed_variant_matches_untimed_and_splits_sanely() {
        let v = view(
            vec![op(OpKind::Read, 5.0, 30.0, 800 * MB)],
            vec![op(OpKind::Write, 950.0, 990.0, 500 * MB)],
            vec![],
        );
        let c = categorizer();
        let (timed, t) = c.categorize_timed(&v);
        assert_eq!(timed, c.categorize(&v));
        assert!(t.total_nanos >= t.merge_nanos, "{t:?}");
    }

    #[test]
    fn arena_path_matches_view_path() {
        // Build a log whose reads are periodic and whose writes end-load,
        // run both the owned (view) and columnar (arena) paths, and demand
        // identical reports — including the periodicity sub-structure.
        use mosaic_darshan::counter::PosixCounter as C;
        use mosaic_darshan::counter::PosixFCounter as F;
        use mosaic_darshan::job::JobHeader;
        use mosaic_darshan::log::TraceLogBuilder;
        use mosaic_darshan::mdf;
        use mosaic_darshan::validate;
        use mosaic_darshan::view::{validate_view, TraceView};

        let mut b = TraceLogBuilder::new(JobHeader::new(9, 2, 8, 0, 1000).with_exe("/bin/sim"));
        for i in 0..9 {
            let r = b.begin_record(&format!("/ckpt{i}"), -1);
            b.record_mut(r)
                .set(C::Reads, 8)
                .set(C::BytesRead, (300 * MB) as i64)
                .set(C::Opens, 8)
                .set(C::Closes, 8)
                .setf(F::OpenStartTimestamp, 49.0 + 100.0 * i as f64)
                .setf(F::ReadStartTimestamp, 50.0 + 100.0 * i as f64)
                .setf(F::ReadEndTimestamp, 58.0 + 100.0 * i as f64)
                .setf(F::CloseEndTimestamp, 59.0 + 100.0 * i as f64);
        }
        let w = b.begin_record("/result", 0);
        b.record_mut(w)
            .set(C::Writes, 64)
            .set(C::BytesWritten, (500 * MB) as i64)
            .setf(F::WriteStartTimestamp, 950.0)
            .setf(F::WriteEndTimestamp, 990.0);
        let bad = b.begin_record("/corrupt", 0);
        b.record_mut(bad).set(C::BytesRead, -1);
        let log = b.finish();
        let bytes = mdf::to_bytes(&log);

        // Owned path.
        let report = validate::validate(&log);
        let mut sanitized = log.clone();
        validate::delete_invalid(&mut sanitized, &report);
        let (owned, _) = categorizer().categorize_log_timed(&sanitized);

        // Arena path.
        let tv = TraceView::parse(&bytes).unwrap();
        let mut arena = columnar::TraceArena::default();
        arena.trace.load(&tv, &validate_view(&tv));
        let (columnar_report, t) = categorizer().categorize_arena_timed(&mut arena);

        assert_eq!(columnar_report, owned);
        assert!(columnar_report.has(Category::Periodic { kind: OpKindTag::Read }));
        assert!(t.total_nanos >= t.merge_nanos, "{t:?}");

        // And again on the same arena: reuse must not perturb results.
        let tv = TraceView::parse(&bytes).unwrap();
        arena.trace.load(&tv, &validate_view(&tv));
        let (again, _) = categorizer().categorize_arena_timed(&mut arena);
        assert_eq!(again, owned);
    }

    #[test]
    fn categorize_log_matches_categorize_view() {
        use mosaic_darshan::counter::PosixCounter as C;
        use mosaic_darshan::counter::PosixFCounter as F;
        use mosaic_darshan::job::JobHeader;
        use mosaic_darshan::log::TraceLogBuilder;
        let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 8, 0, 1000));
        let h = b.begin_record("/in", -1);
        b.record_mut(h)
            .set(C::Reads, 8)
            .set(C::BytesRead, (800 * MB) as i64)
            .set(C::Opens, 8)
            .setf(F::OpenStartTimestamp, 4.0)
            .setf(F::ReadStartTimestamp, 5.0)
            .setf(F::ReadEndTimestamp, 30.0);
        let log = b.finish();
        let a = categorizer().categorize_log(&log);
        let b = categorizer().categorize(&OperationView::from_log(&log));
        assert_eq!(a, b);
    }
}
