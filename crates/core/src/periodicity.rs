//! Periodic-operation detection (§III-B3a, second half).
//!
//! Mean Shift groups segments whose opening operations "share comparable
//! duration and data size"; every group with more than one member is a
//! periodic operation candidate. Several groups — hence several interleaved
//! periodic operations — can be detected in one trace, which is exactly
//! where plain DFT peak-picking struggles.
//!
//! Two refinements over the paper's one-paragraph description, both needed
//! to make the multi-behaviour claim actually hold:
//!
//! * the clustering features are the **operation** duration and volume
//!   (log-scaled). When two periodic behaviours interleave, the *segment*
//!   length (start → next start of *any* operation) of the sparser
//!   behaviour is clipped by the denser one and no longer reflects its
//!   period — but its operations themselves stay self-similar;
//! * the **period** of a group is a robust estimate of the inter-arrival
//!   time of its member operations: gaps near a small integer multiple of
//!   the median gap are folded back onto the base (Mean Shift sometimes
//!   scatters a behaviour across clusters, leaving missed-occurrence
//!   holes), then the mean of the folded gaps is taken. A group is only
//!   accepted as periodic when the folded inter-arrivals are *regular*
//!   (coefficient of variation below a threshold) — merely looking alike
//!   is not periodicity.

use crate::category::PeriodMagnitude;
use crate::config::CategorizerConfig;
use crate::segment::Segment;
use mosaic_clustering::meanshift::MeanShift;
use serde::{Deserialize, Serialize};

/// One detected periodic operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicPattern {
    /// Number of occurrences (cluster size).
    pub occurrences: usize,
    /// Period in seconds: mean inter-arrival of member operations after
    /// folding missed-occurrence gaps back onto the base cadence.
    pub period: f64,
    /// Order of magnitude of the period.
    pub magnitude: PeriodMagnitude,
    /// Mean bytes moved per occurrence.
    pub mean_bytes: f64,
    /// Mean fraction of the period spent doing I/O.
    pub busy_fraction: f64,
    /// Regularity of the inter-arrivals (coefficient of variation; 0 =
    /// perfectly regular).
    pub regularity_cv: f64,
    /// Indices (into the segment list) of the member segments.
    pub members: Vec<usize>,
}

impl PeriodicPattern {
    /// `true` when the pattern spends less than `split` of each period doing
    /// I/O (the paper observes 96 % of periodic writes below 25 %).
    pub fn is_low_busy(&self, split: f64) -> bool {
        self.busy_fraction < split
    }
}

/// Clustering feature of one segment's opening operation:
/// `(log10(1 + op duration), log10(1 + volume))`.
fn op_feature(s: &Segment) -> [f64; 2] {
    [(1.0 + s.op_duration.max(0.0)).log10(), (1.0 + s.bytes as f64).log10()]
}

/// Largest integer multiple of the base period a gap may be folded down
/// from (i.e. up to two consecutive missed occurrences are tolerated).
const MAX_FOLD_FACTOR: f64 = 3.0;

/// Relative tolerance for treating a gap as an integer multiple of the
/// base period.
const FOLD_TOL: f64 = 0.2;

/// Median of an already-sorted, non-empty slice.
fn median_of_sorted(sorted: &[f64]) -> f64 {
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        // lint: allow(panic, "mid = len / 2 < len for odd non-empty slices")
        sorted[mid]
    } else {
        // lint: allow(panic, "even branch: len >= 2 (callers pass non-empty gap lists), so 1 <= mid < len")
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

/// Detect periodic operations among `segments` (which must be sorted by
/// start time, as [`crate::segment::segment`] produces them).
///
/// Returns patterns sorted by descending occurrence count.
pub fn detect_periodic(segments: &[Segment], config: &CategorizerConfig) -> Vec<PeriodicPattern> {
    if segments.len() < config.min_periodic_occurrences {
        return Vec::new();
    }
    let features: Vec<[f64; 2]> = segments.iter().map(op_feature).collect();
    let clustering = MeanShift::new(config.meanshift_bandwidth).fit(&features);

    let mut patterns = Vec::new();
    for (_, mut members) in clustering.clusters() {
        if members.len() < config.min_periodic_occurrences {
            continue;
        }
        members.sort_unstable();
        // lint: allow(panic, "clustering member indices are built from 0..segments.len()")
        let starts: Vec<f64> = members.iter().map(|&i| segments[i].start).collect();
        // lint: allow(panic, "windows(2) yields exactly-2-element slices")
        let gaps: Vec<f64> = starts.windows(2).map(|w| w[1] - w[0]).collect();
        debug_assert!(!gaps.is_empty());
        // Base-period estimate: the median gap. Mean Shift occasionally
        // scatters a behaviour's occurrences across clusters (jitter pushes
        // an op's duration over the bandwidth), which leaves double- or
        // triple-period holes in each cluster's arrival stream; a plain
        // mean inter-arrival then overshoots the true cadence.
        let mut sorted_gaps = gaps.clone();
        sorted_gaps.sort_by(f64::total_cmp);
        let base = median_of_sorted(&sorted_gaps);
        if base <= 0.0 {
            continue;
        }
        // Harmonic folding: a gap sitting near a small integer multiple of
        // the base is a missed occurrence, not a different cadence — fold
        // it back onto the base. The fold factor is capped so genuinely
        // irregular streams cannot be folded into false regularity.
        let folded: Vec<f64> = gaps
            .iter()
            .map(|&g| {
                let k = (g / base).round();
                if (2.0..=MAX_FOLD_FACTOR).contains(&k) && (g / k - base).abs() <= FOLD_TOL * base {
                    g / k
                } else {
                    g
                }
            })
            .collect();
        let period = folded.iter().sum::<f64>() / folded.len() as f64;
        if period <= 0.0 {
            continue;
        }
        // Regularity gate: similar-looking operations at irregular times
        // are repetition, not periodicity.
        let var = folded.iter().map(|g| (g - period).powi(2)).sum::<f64>() / folded.len() as f64;
        let regularity_cv = var.sqrt() / period;
        if regularity_cv > config.periodic_regularity_cv {
            continue;
        }
        let n = members.len() as f64;
        // lint: allow(panic, "clustering member indices are built from 0..segments.len()")
        let mean_bytes = members.iter().map(|&i| segments[i].bytes as f64).sum::<f64>() / n;
        let busy_fraction =
            // lint: allow(panic, "clustering member indices are built from 0..segments.len()")
            (members.iter().map(|&i| segments[i].op_duration).sum::<f64>() / n / period)
                .clamp(0.0, 1.0);
        patterns.push(PeriodicPattern {
            occurrences: members.len(),
            period,
            magnitude: PeriodMagnitude::of(period),
            mean_bytes,
            busy_fraction,
            regularity_cv,
            members,
        });
    }
    patterns.sort_by(|a, b| b.occurrences.cmp(&a.occurrences).then(a.period.total_cmp(&b.period)));
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a regular train of operations: `count` segments starting at
    /// multiples of `period`, each `op_duration` long with `bytes` volume.
    fn train(period: f64, count: usize, bytes: u64, op_duration: f64) -> Vec<Segment> {
        (0..count)
            .map(|i| Segment {
                start: period * (i as f64 + 0.3),
                duration: period,
                bytes,
                op_duration,
            })
            .collect()
    }

    fn by_start(mut segs: Vec<Segment>) -> Vec<Segment> {
        segs.sort_by(|a, b| a.start.total_cmp(&b.start));
        segs
    }

    fn cfg() -> CategorizerConfig {
        CategorizerConfig::default()
    }

    #[test]
    fn uniform_checkpoints_form_one_pattern() {
        let segments = train(120.0, 8, 256 << 20, 10.0);
        let patterns = detect_periodic(&segments, &cfg());
        assert_eq!(patterns.len(), 1);
        let p = &patterns[0];
        assert_eq!(p.occurrences, 8);
        assert!((p.period - 120.0).abs() < 1.0);
        assert_eq!(p.magnitude, PeriodMagnitude::Minute);
        assert!(p.is_low_busy(0.25));
        assert!(p.regularity_cv < 0.01);
    }

    #[test]
    fn two_interleaved_periodic_behaviors_are_separated() {
        // The paper's key scenario: checkpoint writes (10-min period,
        // 2 GiB, 24 s ops) interleaved with frequent small writes (20-s
        // period, 150 MiB, 2 s ops).
        let mut segments = train(600.0, 12, 2 << 30, 24.0);
        segments.extend(train(20.0, 340, 150 << 20, 2.0));
        let segments = by_start(segments);
        let patterns = detect_periodic(&segments, &cfg());
        assert_eq!(patterns.len(), 2, "{patterns:?}");
        assert!((patterns[0].period - 20.0).abs() < 2.0, "{patterns:?}");
        assert_eq!(patterns[0].magnitude, PeriodMagnitude::Second);
        assert!((patterns[1].period - 600.0).abs() < 20.0, "{patterns:?}");
        assert_eq!(patterns[1].magnitude, PeriodMagnitude::Minute);
    }

    #[test]
    fn jittered_periods_still_cluster() {
        // ±10 % jitter on op duration and volume stays within the log-space
        // bandwidth; inter-arrival jitter stays under the regularity gate.
        let segments: Vec<Segment> = (0..10)
            .map(|i| {
                let j = 1.0 + 0.1 * ((i % 3) as f64 - 1.0);
                Segment {
                    start: 300.0 * i as f64 + 10.0 * ((i % 3) as f64 - 1.0),
                    duration: 300.0,
                    bytes: ((64u64 << 20) as f64 * j) as u64,
                    op_duration: 5.0 * j,
                }
            })
            .collect();
        let patterns = detect_periodic(&segments, &cfg());
        assert_eq!(patterns.len(), 1);
        assert_eq!(patterns[0].occurrences, 10);
        assert!((patterns[0].period - 300.0).abs() < 10.0);
    }

    #[test]
    fn similar_but_irregular_ops_are_not_periodic() {
        // Identical ops at wildly irregular times: repetition without
        // periodicity — the regularity gate must reject them.
        let starts = [0.0, 11.0, 300.0, 304.0, 2100.0, 2111.0];
        let segments: Vec<Segment> = starts
            .iter()
            .map(|&s| Segment { start: s, duration: 10.0, bytes: 1 << 30, op_duration: 3.0 })
            .collect();
        assert!(detect_periodic(&segments, &cfg()).is_empty());
    }

    #[test]
    fn one_off_operations_are_not_periodic() {
        let segments = vec![
            Segment { start: 10.0, duration: 10.0, bytes: 1 << 30, op_duration: 5.0 },
            Segment { start: 4000.0, duration: 5000.0, bytes: 100, op_duration: 1.0 },
            Segment { start: 9000.0, duration: 0.5, bytes: 5 << 20, op_duration: 0.5 },
        ];
        assert!(detect_periodic(&segments, &cfg()).is_empty());
    }

    #[test]
    fn too_few_segments_short_circuit() {
        assert!(detect_periodic(&[], &cfg()).is_empty());
        let one = train(60.0, 1, 100, 1.0);
        assert!(detect_periodic(&one, &cfg()).is_empty());
    }

    #[test]
    fn magnitude_labels_span_buckets() {
        for (period, magnitude) in [
            (30.0, PeriodMagnitude::Second),
            (600.0, PeriodMagnitude::Minute),
            (7200.0, PeriodMagnitude::Hour),
            (172_800.0, PeriodMagnitude::DayOrMore),
        ] {
            let segments = train(period, 4, 1 << 20, 1.0);
            let patterns = detect_periodic(&segments, &cfg());
            assert_eq!(patterns[0].magnitude, magnitude, "period {period}");
        }
    }

    #[test]
    fn high_busy_pattern_detected() {
        let segments = train(100.0, 5, 1 << 20, 60.0);
        let patterns = detect_periodic(&segments, &cfg());
        assert!(!patterns[0].is_low_busy(0.25));
        assert!((patterns[0].busy_fraction - 0.6).abs() < 1e-9);
    }

    #[test]
    fn min_occurrence_threshold_respected() {
        let config = CategorizerConfig { min_periodic_occurrences: 4, ..cfg() };
        assert!(detect_periodic(&train(60.0, 3, 1 << 20, 1.0), &config).is_empty());
        assert_eq!(detect_periodic(&train(60.0, 4, 1 << 20, 1.0), &config).len(), 1);
    }

    #[test]
    fn missed_occurrences_fold_back_to_the_base_period() {
        // Regression: when Mean Shift scatters a 120 s behaviour across
        // clusters, a cluster that keeps 12 of 16 rounds sees a handful of
        // 240 s gaps; a plain mean inter-arrival overshoots (the dxt_views
        // integration test observed 152 s for a true 120 s cadence). The
        // double-period gaps must fold back so the reported period stays
        // at the base cadence.
        let segments: Vec<Segment> = (0..16)
            .filter(|i| ![3, 7, 11, 14].contains(i))
            .map(|i| Segment {
                start: 120.0 * i as f64,
                duration: 120.0,
                bytes: 128 << 20,
                op_duration: 6.0,
            })
            .collect();
        let patterns = detect_periodic(&segments, &cfg());
        assert_eq!(patterns.len(), 1, "{patterns:?}");
        assert!((patterns[0].period - 120.0).abs() < 1.0, "{patterns:?}");
        assert!(patterns[0].regularity_cv < 0.05, "{patterns:?}");
    }

    #[test]
    fn folding_does_not_rescue_irregular_streams() {
        // Gaps far from any small multiple of the median must stay
        // unfolded, so the regularity gate still rejects the stream.
        let starts = [0.0, 130.0, 260.0, 980.0, 1110.0];
        let segments: Vec<Segment> = starts
            .iter()
            .map(|&s| Segment { start: s, duration: 100.0, bytes: 1 << 30, op_duration: 3.0 })
            .collect();
        assert!(detect_periodic(&segments, &cfg()).is_empty());
    }

    #[test]
    fn regularity_gate_is_configurable() {
        // Mild irregularity passes a loose gate, fails a strict one.
        let starts = [0.0, 95.0, 210.0, 290.0, 405.0];
        let segments: Vec<Segment> = starts
            .iter()
            .map(|&s| Segment { start: s, duration: 100.0, bytes: 1 << 30, op_duration: 3.0 })
            .collect();
        let loose = CategorizerConfig { periodic_regularity_cv: 0.5, ..cfg() };
        assert_eq!(detect_periodic(&segments, &loose).len(), 1);
        let strict = CategorizerConfig { periodic_regularity_cv: 0.05, ..cfg() };
        assert!(detect_periodic(&segments, &strict).is_empty());
    }
}
