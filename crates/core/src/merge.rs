//! Operation merging — MOSAIC pre-processing step ② (§III-B2).
//!
//! Read and write operations are handled independently; both passes take a
//! start-time-sorted operation list and return a (shorter) merged one.
//!
//! * **Concurrent merging** (②a): overlapping operations fuse into one.
//!   This absorbs process desynchronization (several ranks writing the same
//!   checkpoint slightly out of phase appear as one operation) and
//!   de-clutters the trace for periodicity detection.
//! * **Neighbor merging** (②b): two consecutive operations whose gap is
//!   negligible — less than 0.1 % of the total execution time *or* less
//!   than 1 % of the duration of the nearby merged operation — also fuse.
//!   This catches slow drift that has already slid operations past the
//!   overlap point.

use crate::config::CategorizerConfig;
use mosaic_darshan::ops::Operation;

/// Fuse `b` into `a` (interval hull, byte sum, rank sum).
fn fuse(a: &mut Operation, b: &Operation) {
    a.start = a.start.min(b.start);
    a.end = a.end.max(b.end);
    a.bytes = a.bytes.saturating_add(b.bytes);
    a.ranks = a.ranks.saturating_add(b.ranks);
}

/// Concurrent merging: fuse every group of transitively overlapping
/// operations into a single operation.
///
/// Input need not be sorted; output is sorted by start time.
pub fn merge_concurrent(ops: &[Operation]) -> Vec<Operation> {
    let mut sorted: Vec<Operation> = ops.to_vec();
    sorted.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.end.total_cmp(&b.end)));
    let mut out: Vec<Operation> = Vec::with_capacity(sorted.len());
    for op in sorted {
        match out.last_mut() {
            Some(last) if op.start <= last.end => fuse(last, &op),
            _ => out.push(op),
        }
    }
    out
}

/// Neighbor merging: fuse consecutive operations whose gap is below
/// `max(neighbor_gap_runtime_frac · runtime, neighbor_gap_op_frac ·
/// duration(previous merged op))`.
///
/// Expects concurrent-merged (sorted, non-overlapping) input.
pub fn merge_neighbors(
    ops: &[Operation],
    runtime: f64,
    config: &CategorizerConfig,
) -> Vec<Operation> {
    let runtime_gap = config.neighbor_gap_runtime_frac * runtime.max(0.0);
    let mut out: Vec<Operation> = Vec::with_capacity(ops.len());
    for op in ops {
        match out.last_mut() {
            Some(last) => {
                let gap = op.start - last.end;
                let op_gap = config.neighbor_gap_op_frac * last.duration();
                if gap <= runtime_gap.max(op_gap) {
                    fuse(last, op);
                } else {
                    out.push(*op);
                }
            }
            None => out.push(*op),
        }
    }
    out
}

/// Both passes in order: the full §III-B2 pre-processing for one direction.
pub fn merge_all(ops: &[Operation], runtime: f64, config: &CategorizerConfig) -> Vec<Operation> {
    merge_neighbors(&merge_concurrent(ops), runtime, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_darshan::ops::OpKind;

    fn op(start: f64, end: f64, bytes: u64) -> Operation {
        Operation { kind: OpKind::Write, start, end, bytes, ranks: 1 }
    }

    fn cfg() -> CategorizerConfig {
        CategorizerConfig::default()
    }

    #[test]
    fn overlapping_ops_fuse() {
        let merged = merge_concurrent(&[op(0.0, 2.0, 10), op(1.0, 3.0, 20), op(2.5, 4.0, 5)]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].start, 0.0);
        assert_eq!(merged[0].end, 4.0);
        assert_eq!(merged[0].bytes, 35);
        assert_eq!(merged[0].ranks, 3);
    }

    #[test]
    fn disjoint_ops_stay_separate() {
        let merged = merge_concurrent(&[op(0.0, 1.0, 1), op(5.0, 6.0, 2), op(10.0, 11.0, 3)]);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn touching_endpoints_fuse() {
        // Closed intervals: start == previous end counts as overlap.
        let merged = merge_concurrent(&[op(0.0, 1.0, 1), op(1.0, 2.0, 1)]);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let merged = merge_concurrent(&[op(5.0, 6.0, 2), op(0.0, 1.0, 1), op(0.5, 2.0, 4)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].bytes, 5);
        assert!(merged.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn desynchronized_ranks_collapse_to_one_operation() {
        // 64 ranks each writing [t, t+1.0] with 10 ms stagger: one op.
        let ops: Vec<Operation> =
            (0..64).map(|r| op(10.0 + r as f64 * 0.01, 11.0 + r as f64 * 0.01, 1 << 20)).collect();
        let merged = merge_concurrent(&ops);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].ranks, 64);
        assert_eq!(merged[0].bytes, 64 << 20);
    }

    #[test]
    fn neighbor_merge_uses_runtime_fraction() {
        // runtime 10_000 → gap threshold 10. Ops 3 apart fuse.
        let ops = vec![op(0.0, 1.0, 1), op(4.0, 5.0, 1)];
        let merged = merge_neighbors(&ops, 10_000.0, &cfg());
        assert_eq!(merged.len(), 1);
        // runtime 100 → threshold 0.1: stays split (op threshold 0.01 too).
        let merged = merge_neighbors(&ops, 100.0, &cfg());
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn neighbor_merge_uses_op_duration_fraction() {
        // Long 1000 s op followed by a gap of 8 s: 8 < 1 % of 1000 → fuse,
        // even though the runtime fraction (0.1 % of 2000 = 2) would not.
        let ops = vec![op(0.0, 1000.0, 10), op(1008.0, 1009.0, 1)];
        let merged = merge_neighbors(&ops, 2000.0, &cfg());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].end, 1009.0);
    }

    #[test]
    fn neighbor_merge_cascades_through_drift() {
        // Each op 10 s, gaps 0.05 s — drift chain all fuses (gap < 1 % of
        // growing merged duration).
        let mut ops = Vec::new();
        let mut t = 0.0;
        for _ in 0..10 {
            ops.push(op(t, t + 10.0, 1));
            t += 10.05;
        }
        let merged = merge_neighbors(&ops, 1000.0, &cfg());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].bytes, 10);
    }

    #[test]
    fn periodic_pattern_survives_both_merges() {
        // Checkpoints 100 s apart must NOT merge.
        let ops: Vec<Operation> =
            (0..6).map(|i| op(i as f64 * 100.0, i as f64 * 100.0 + 5.0, 7)).collect();
        let merged = merge_all(&ops, 600.0, &cfg());
        assert_eq!(merged.len(), 6);
    }

    #[test]
    fn empty_input() {
        assert!(merge_concurrent(&[]).is_empty());
        assert!(merge_neighbors(&[], 100.0, &cfg()).is_empty());
        assert!(merge_all(&[], 100.0, &cfg()).is_empty());
    }

    #[test]
    fn byte_and_rank_conservation() {
        let ops: Vec<Operation> =
            (0..50).map(|i| op(i as f64 * 0.8, i as f64 * 0.8 + 1.0, i as u64)).collect();
        let total_bytes: u64 = ops.iter().map(|o| o.bytes).sum();
        let total_ranks: u32 = ops.iter().map(|o| o.ranks).sum();
        let merged = merge_all(&ops, 100.0, &cfg());
        assert_eq!(merged.iter().map(|o| o.bytes).sum::<u64>(), total_bytes);
        assert_eq!(merged.iter().map(|o| o.ranks).sum::<u32>(), total_ranks);
    }
}
