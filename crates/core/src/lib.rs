//! # mosaic-core
//!
//! MOSAIC — *Merging Operations and SegmentAtion for I/o Categorization* —
//! as described in Jolivel, Tessier, Monniot & Pallez, PDSW/SC 2024.
//!
//! Given the operation view of a Darshan-like trace
//! ([`mosaic_darshan::OperationView`]), MOSAIC assigns the trace a set of
//! non-exclusive categories along three axes (Table I of the paper):
//!
//! * **Temporality** — *when* reads and writes happen: `on_start`, `on_end`,
//!   `after_start`, `before_end`, `after_start_before_end`, `steady`, or
//!   `insignificant` (per direction, below a 100 MB threshold);
//! * **Periodicity** — checkpoint-style repetition, detected by segmenting
//!   the trace at operation starts and Mean Shift-clustering the
//!   `(segment duration, volume)` pairs; clusters of size > 1 are periodic
//!   operations, labeled with a period magnitude
//!   (`second`/`minute`/`hour`/`day_or_more`) and a busy-time class;
//! * **Metadata impact** — load on the metadata server: `high_spike`
//!   (> 250 req/s once), `multiple_spikes` (≥ 5 spikes of ≥ 50 req/s),
//!   `high_density` (≥ 5 spikes *and* ≥ 50 req/s on average), or
//!   `insignificant_load` (fewer requests than ranks).
//!
//! Before categorization, two merging passes clean the trace (§III-B2):
//! **concurrent merging** fuses overlapping operations (process
//! desynchronization), and **neighbor merging** fuses operations separated
//! by a negligible gap (< 0.1 % of the runtime or < 1 % of the neighbor's
//! duration).
//!
//! ## Quick example
//!
//! ```
//! use mosaic_core::{Categorizer, CategorizerConfig};
//! use mosaic_darshan::ops::{OpKind, Operation, OperationView};
//!
//! // A synthetic view: 6 checkpoint writes, one per ~100 s.
//! let writes: Vec<Operation> = (0..6)
//!     .map(|i| Operation {
//!         kind: OpKind::Write,
//!         start: 50.0 + 100.0 * i as f64,
//!         end: 60.0 + 100.0 * i as f64,
//!         bytes: 200 << 20,
//!         ranks: 64,
//!     })
//!     .collect();
//! let view = OperationView { runtime: 650.0, nprocs: 64, reads: vec![], writes, meta: vec![] };
//!
//! let report = Categorizer::new(CategorizerConfig::default()).categorize(&view);
//! assert!(report.names().iter().any(|n| n == "write_periodic_minute"));
//! assert!(report.names().iter().any(|n| n == "read_insignificant"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod categorize;
pub mod category;
pub mod columnar;
pub mod config;
pub mod discovery;
pub mod jaccard;
pub mod merge;
pub mod metadata;
pub mod online;
pub mod periodicity;
pub mod report;
pub mod segment;
pub mod spectral;
pub mod temporality;
pub mod units;

pub use categorize::{CategorizeTimings, Categorizer, TraceReport};
pub use category::{Category, CategoryAxis, MetadataLabel, PeriodMagnitude, TemporalityLabel};
pub use config::{CategorizerConfig, PeriodicityMethod};
pub use jaccard::JaccardMatrix;
