//! Categorizer thresholds — every number the paper specifies, in one place.

use serde::{Deserialize, Serialize};

/// Which periodicity detector the categorizer runs (§III-B3a vs the §V
/// future-work spectral method).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PeriodicityMethod {
    /// Segmentation + Mean Shift clustering — the paper's method.
    #[default]
    MeanShift,
    /// Periodogram peaks + time-domain lattice verification — the paper's
    /// planned signal-processing upgrade.
    Spectral,
    /// Run Mean Shift first, then let the spectral detector claim whatever
    /// operations clustering left unexplained.
    Hybrid,
}

/// All thresholds of the MOSAIC categorization pipeline. Defaults are the
/// values fixed in the paper; §III-A notes they "can be modified in MOSAIC
/// to extend or narrow the amount of I/O activities to categorize".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategorizerConfig {
    // ---- significance (§III-A) ----
    /// Per-direction byte volume below which a trace is `insignificant`
    /// (default 100 MB).
    pub insignificant_bytes: u64,

    // ---- neighbor merging (§III-B2b) ----
    /// Merge when the gap is under this fraction of total runtime
    /// (default 0.1 %).
    pub neighbor_gap_runtime_frac: f64,
    /// ... or under this fraction of the nearby merged operation's duration
    /// (default 1 %).
    pub neighbor_gap_op_frac: f64,

    // ---- periodicity (§III-B3a) ----
    /// Mean Shift bandwidth in log₁₀ feature space (duration, volume). The
    /// paper set its thresholds empirically on a month of traces; 0.15
    /// groups segments within ×1.4 of each other on both axes.
    pub meanshift_bandwidth: f64,
    /// Minimum cluster size to call a group periodic (paper: strictly
    /// greater than 1, i.e. 2).
    pub min_periodic_occurrences: usize,
    /// Busy-time split: below this fraction of the period spent doing I/O
    /// is `low_busy_time` (§IV-D observes 96 % of periodic writes < 25 %).
    pub busy_time_split: f64,
    /// Maximum coefficient of variation of a group's inter-arrival times
    /// for it to count as periodic (regular repetition, not just
    /// similar-looking operations).
    pub periodic_regularity_cv: f64,
    /// Which periodicity detector to run.
    pub periodicity_method: PeriodicityMethod,

    // ---- temporality (§III-B3b) ----
    /// Number of equal execution-time chunks (paper: 4).
    pub chunks: usize,
    /// A chunk is dominant if it exceeds every other chunk by this factor
    /// (paper: "more than twice the amount").
    pub dominance_factor: f64,
    /// Steady when the coefficient of variation across chunks is below this
    /// (paper: 25 %).
    pub steady_cv: f64,

    // ---- metadata (§III-B3c, thresholds from Kunkel & Markomanolis) ----
    /// `high_spike`: more than this many requests in one second.
    pub high_spike_requests: u64,
    /// A "spike" is a second with at least this many requests.
    pub spike_requests: u64,
    /// `multiple_spikes` / `high_density`: at least this many spikes.
    pub min_spikes: usize,
    /// `high_density`: mean requests per second over the execution.
    pub density_mean_rps: f64,
}

impl Default for CategorizerConfig {
    fn default() -> Self {
        CategorizerConfig {
            insignificant_bytes: 100 * 1024 * 1024,
            neighbor_gap_runtime_frac: 0.001,
            neighbor_gap_op_frac: 0.01,
            meanshift_bandwidth: 0.15,
            min_periodic_occurrences: 2,
            busy_time_split: 0.25,
            periodic_regularity_cv: 0.5,
            periodicity_method: PeriodicityMethod::MeanShift,
            chunks: 4,
            dominance_factor: 2.0,
            steady_cv: 0.25,
            high_spike_requests: 250,
            spike_requests: 50,
            min_spikes: 5,
            density_mean_rps: 50.0,
        }
    }
}

impl CategorizerConfig {
    /// Panic on nonsensical settings, returning `self` otherwise.
    pub fn validated(self) -> Self {
        assert!(self.chunks >= 2, "need at least 2 temporal chunks");
        assert!(self.dominance_factor > 1.0, "dominance factor must exceed 1");
        assert!(self.steady_cv > 0.0, "steady CV threshold must be positive");
        assert!(self.meanshift_bandwidth > 0.0, "bandwidth must be positive");
        assert!(self.min_periodic_occurrences >= 2, "periodic groups need >= 2 members");
        assert!((0.0..=1.0).contains(&self.busy_time_split), "busy split in [0,1]");
        assert!(self.periodic_regularity_cv > 0.0, "regularity CV must be positive");
        assert!(self.neighbor_gap_runtime_frac >= 0.0 && self.neighbor_gap_op_frac >= 0.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CategorizerConfig::default().validated();
        assert_eq!(c.insignificant_bytes, 100 * 1024 * 1024);
        assert_eq!(c.chunks, 4);
        assert_eq!(c.high_spike_requests, 250);
        assert_eq!(c.spike_requests, 50);
        assert_eq!(c.min_spikes, 5);
        assert_eq!(c.density_mean_rps, 50.0);
        assert_eq!(c.steady_cv, 0.25);
        assert_eq!(c.dominance_factor, 2.0);
        assert_eq!(c.neighbor_gap_runtime_frac, 0.001);
        assert_eq!(c.neighbor_gap_op_frac, 0.01);
        assert_eq!(c.busy_time_split, 0.25);
        assert_eq!(c.periodic_regularity_cv, 0.5);
    }

    #[test]
    #[should_panic(expected = "temporal chunks")]
    fn bad_chunks_panic() {
        let _ = CategorizerConfig { chunks: 1, ..Default::default() }.validated();
    }

    #[test]
    fn config_serializes() {
        let c = CategorizerConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: CategorizerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
