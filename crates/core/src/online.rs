//! Online categorization of partially observed traces.
//!
//! §IV-E: "beyond analysis on a large set of traces, MOSAIC can also be
//! used for application-by-application categorization to provide
//! information to a job scheduler". A scheduler does not want to wait for
//! the job to finish — it wants the category as soon as the evidence
//! supports it. This module categorizes the *prefix* of a trace observed up
//! to time `t` and measures when the verdict stabilizes.
//!
//! Prefix semantics: operations that started after `t` are invisible;
//! operations spanning `t` are clipped with their bytes prorated (the
//! tracer would only have seen the data moved so far); the runtime becomes
//! `t`, so chunk analysis reflects the observed window — exactly what an
//! in-flight Darshan snapshot would deliver.

use crate::categorize::{Categorizer, TraceReport};
use mosaic_darshan::ops::{Operation, OperationView};

/// The observable prefix of a view at time `t`.
pub fn truncate_view(view: &OperationView, t: f64) -> OperationView {
    let t = t.clamp(0.0, view.runtime);
    let clip = |ops: &[Operation]| -> Vec<Operation> {
        ops.iter()
            .filter(|o| o.start < t)
            .map(|o| {
                if o.end <= t {
                    *o
                } else {
                    let full = (o.end - o.start).max(1e-12);
                    let frac = (t - o.start) / full;
                    // lint: allow(cast, "f64-to-u64 `as` saturates; frac is in [0, 1] so the product stays within o.bytes")
                    Operation { end: t, bytes: (o.bytes as f64 * frac) as u64, ..*o }
                }
            })
            .collect()
    };
    OperationView {
        runtime: t,
        nprocs: view.nprocs,
        reads: clip(&view.reads),
        writes: clip(&view.writes),
        meta: view.meta.iter().filter(|e| e.time <= t).copied().collect(),
    }
}

/// Categorize the prefix observed up to `t`.
pub fn categorize_at(categorizer: &Categorizer, view: &OperationView, t: f64) -> TraceReport {
    categorizer.categorize(&truncate_view(view, t))
}

/// Sweep observation fractions and report, for each, whether the prefix
/// verdict already matches the final verdict on every axis a scheduler
/// would act on (both temporality labels and write periodicity presence).
pub fn stabilization_profile(
    categorizer: &Categorizer,
    view: &OperationView,
    fractions: &[f64],
) -> Vec<(f64, bool)> {
    let final_report = categorizer.categorize(view);
    fractions
        .iter()
        .map(|&f| {
            let report = categorize_at(categorizer, view, view.runtime * f);
            (f, verdicts_match(&report, &final_report))
        })
        .collect()
}

/// Earliest fraction (from `fractions`, ascending) at which the verdict
/// matches the final one *and stays matching* for all later fractions.
/// `None` if only the full trace suffices.
pub fn decision_fraction(
    categorizer: &Categorizer,
    view: &OperationView,
    fractions: &[f64],
) -> Option<f64> {
    let profile = stabilization_profile(categorizer, view, fractions);
    let mut earliest = None;
    for &(f, stable) in &profile {
        if stable {
            earliest.get_or_insert(f);
        } else {
            earliest = None;
        }
    }
    earliest
}

fn verdicts_match(a: &TraceReport, b: &TraceReport) -> bool {
    a.read.temporality.label == b.read.temporality.label
        && a.write.temporality.label == b.write.temporality.label
        && a.write.periodic.is_empty() == b.write.periodic.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::TemporalityLabel;
    use mosaic_darshan::ops::OpKind;

    const MB: u64 = 1 << 20;

    fn op(kind: OpKind, start: f64, end: f64, bytes: u64) -> Operation {
        Operation { kind, start, end, bytes, ranks: 8 }
    }

    fn categorizer() -> Categorizer {
        Categorizer::default()
    }

    #[test]
    fn truncation_clips_and_prorates() {
        let view = OperationView {
            runtime: 100.0,
            nprocs: 8,
            reads: vec![op(OpKind::Read, 10.0, 30.0, 1000 * MB), op(OpKind::Read, 60.0, 70.0, MB)],
            writes: vec![],
            meta: vec![],
        };
        let half = truncate_view(&view, 20.0);
        assert_eq!(half.runtime, 20.0);
        assert_eq!(half.reads.len(), 1);
        assert_eq!(half.reads[0].end, 20.0);
        assert_eq!(half.reads[0].bytes, 500 * MB); // half the interval seen
    }

    #[test]
    fn read_on_start_is_decidable_early() {
        // Big read in the first 5 %, nothing after: by 40 % of runtime the
        // verdict matches the final one.
        let view = OperationView {
            runtime: 1000.0,
            nprocs: 8,
            reads: vec![op(OpKind::Read, 5.0, 40.0, 900 * MB)],
            writes: vec![],
            meta: vec![],
        };
        let c = categorizer();
        let fractions = [0.25, 0.5, 0.75, 1.0];
        let d = decision_fraction(&c, &view, &fractions);
        assert!(d.is_some() && d.unwrap() <= 0.5, "decision at {d:?}");
    }

    #[test]
    fn write_on_end_needs_the_end() {
        let view = OperationView {
            runtime: 1000.0,
            nprocs: 8,
            reads: vec![],
            writes: vec![op(OpKind::Write, 950.0, 990.0, 900 * MB)],
            meta: vec![],
        };
        let c = categorizer();
        // At half time nothing has happened: verdict is write-insignificant,
        // not write_on_end.
        let half = categorize_at(&c, &view, 500.0);
        assert_eq!(half.write.temporality.label, TemporalityLabel::Insignificant);
        let d = decision_fraction(&c, &view, &[0.25, 0.5, 0.75, 1.0]);
        assert_eq!(d, Some(1.0));
    }

    #[test]
    fn periodic_writes_detectable_midway() {
        let writes: Vec<Operation> = (0..10)
            .map(|i| op(OpKind::Write, 100.0 * i as f64 + 30.0, 100.0 * i as f64 + 38.0, 400 * MB))
            .collect();
        let view =
            OperationView { runtime: 1000.0, nprocs: 8, reads: vec![], writes, meta: vec![] };
        let c = categorizer();
        let half = categorize_at(&c, &view, 500.0);
        assert!(!half.write.periodic.is_empty(), "five checkpoints are enough to call the pattern");
    }

    #[test]
    fn full_fraction_always_matches() {
        let view = OperationView {
            runtime: 500.0,
            nprocs: 4,
            reads: vec![op(OpKind::Read, 1.0, 10.0, 200 * MB)],
            writes: vec![op(OpKind::Write, 480.0, 490.0, 200 * MB)],
            meta: vec![],
        };
        let profile = stabilization_profile(&categorizer(), &view, &[1.0]);
        assert_eq!(profile, vec![(1.0, true)]);
    }

    #[test]
    fn truncation_edge_cases() {
        let view = OperationView {
            runtime: 100.0,
            nprocs: 1,
            reads: vec![op(OpKind::Read, 0.0, 100.0, 100)],
            writes: vec![],
            meta: vec![],
        };
        let zero = truncate_view(&view, 0.0);
        assert!(zero.reads.is_empty());
        let over = truncate_view(&view, 500.0); // clamps to runtime
        assert_eq!(over.runtime, 100.0);
        assert_eq!(over.reads[0].bytes, 100);
    }
}
