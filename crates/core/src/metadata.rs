//! Metadata-impact characterization (§III-B3c).
//!
//! MOSAIC bins the trace's metadata requests (opens, closes, and the seeks
//! assumed co-located with opens) into one-second buckets and inspects the
//! per-second request-rate profile:
//!
//! * `high_spike` — more than 250 requests in a single second, at least
//!   once (the thresholds derive from mdworkbench measurements of a Lustre
//!   MDS comparable to Blue Waters', which saturates near 3000 req/s);
//! * `multiple_spikes` — at least 5 seconds with 50+ requests;
//! * `high_density` — at least 5 spikes *and* an average of 50+ requests
//!   per second across the execution;
//! * `insignificant_load` — fewer total metadata operations than ranks.

use crate::category::MetadataLabel;
use crate::config::CategorizerConfig;
use mosaic_darshan::ops::MetaEvent;
use serde::{Deserialize, Serialize};

/// Metadata verdict with the evidence kept for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetadataResult {
    /// Assigned labels (non-exclusive; empty only when there were requests
    /// but none of the high-load patterns matched).
    pub labels: Vec<MetadataLabel>,
    /// Total metadata requests.
    pub total_requests: u64,
    /// Peak requests observed in one second.
    pub peak_rps: u64,
    /// Number of seconds with at least `spike_requests` requests.
    pub spike_count: usize,
    /// Mean requests per second over the execution.
    pub mean_rps: f64,
}

impl MetadataResult {
    /// `true` if a given label was assigned.
    pub fn has(&self, label: MetadataLabel) -> bool {
        self.labels.contains(&label)
    }
}

/// Bin metadata events into one-second buckets over `[0, runtime]`.
pub fn requests_per_second(meta: &[MetaEvent], runtime: f64) -> Vec<u64> {
    // lint: allow(cast, "f64-to-usize `as` saturates; NaN and negatives go to 0 and .max(1) floors")
    let bins = (runtime.ceil() as usize).max(1);
    let mut hist = vec![0u64; bins];
    for e in meta {
        // lint: allow(cast, "f64-to-usize `as` saturates; clamped below by max(0.0), above by min(bins - 1)")
        let b = (e.time.max(0.0) as usize).min(bins - 1);
        // lint: allow(panic, "b is clamped to bins - 1 and hist.len() == bins >= 1")
        hist[b] += e.count;
    }
    hist
}

/// Characterize the metadata impact of one trace.
pub fn characterize(
    meta: &[MetaEvent],
    runtime: f64,
    nprocs: u32,
    config: &CategorizerConfig,
) -> MetadataResult {
    let total_requests: u64 = meta.iter().map(|e| e.count).sum();
    let hist = requests_per_second(meta, runtime);
    let peak_rps = hist.iter().copied().max().unwrap_or(0);
    let spike_count = hist.iter().filter(|&&c| c >= config.spike_requests).count();
    let mean_rps = total_requests as f64 / runtime.max(1.0);

    let mut labels = Vec::new();
    if total_requests < u64::from(nprocs) {
        labels.push(MetadataLabel::InsignificantLoad);
        return MetadataResult { labels, total_requests, peak_rps, spike_count, mean_rps };
    }
    if peak_rps > config.high_spike_requests {
        labels.push(MetadataLabel::HighSpike);
    }
    if spike_count >= config.min_spikes {
        labels.push(MetadataLabel::MultipleSpikes);
        if mean_rps >= config.density_mean_rps {
            labels.push(MetadataLabel::HighDensity);
        }
    }
    MetadataResult { labels, total_requests, peak_rps, spike_count, mean_rps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_darshan::ops::MetaKind;

    fn ev(time: f64, count: u64) -> MetaEvent {
        MetaEvent { time, kind: MetaKind::Open, count }
    }

    fn cfg() -> CategorizerConfig {
        CategorizerConfig::default()
    }

    #[test]
    fn insignificant_when_fewer_requests_than_ranks() {
        let r = characterize(&[ev(1.0, 63)], 100.0, 64, &cfg());
        assert_eq!(r.labels, vec![MetadataLabel::InsignificantLoad]);
        // Exactly nprocs requests: no longer insignificant.
        let r = characterize(&[ev(1.0, 64)], 100.0, 64, &cfg());
        assert!(!r.has(MetadataLabel::InsignificantLoad));
    }

    #[test]
    fn high_spike_above_250_in_one_second() {
        let r = characterize(&[ev(5.2, 251)], 100.0, 4, &cfg());
        assert!(r.has(MetadataLabel::HighSpike));
        assert_eq!(r.peak_rps, 251);
        let r = characterize(&[ev(5.2, 250)], 100.0, 4, &cfg());
        assert!(!r.has(MetadataLabel::HighSpike));
    }

    #[test]
    fn spikes_in_same_second_accumulate() {
        // Two bursts of 130 in the same second cross the 250 threshold.
        let r = characterize(&[ev(5.1, 130), ev(5.9, 130)], 100.0, 4, &cfg());
        assert!(r.has(MetadataLabel::HighSpike));
    }

    #[test]
    fn multiple_spikes_needs_five() {
        let four: Vec<MetaEvent> = (0..4).map(|i| ev(i as f64 * 10.0, 60)).collect();
        let r = characterize(&four, 100.0, 4, &cfg());
        assert!(!r.has(MetadataLabel::MultipleSpikes));
        let five: Vec<MetaEvent> = (0..5).map(|i| ev(i as f64 * 10.0, 60)).collect();
        let r = characterize(&five, 100.0, 4, &cfg());
        assert!(r.has(MetadataLabel::MultipleSpikes));
        assert_eq!(r.spike_count, 5);
    }

    #[test]
    fn high_density_needs_spikes_and_mean() {
        // 5 spikes but low mean over a long run: multiple_spikes only.
        let sparse: Vec<MetaEvent> = (0..5).map(|i| ev(i as f64 * 100.0, 60)).collect();
        let r = characterize(&sparse, 1000.0, 4, &cfg());
        assert!(r.has(MetadataLabel::MultipleSpikes));
        assert!(!r.has(MetadataLabel::HighDensity));
        // Dense: 60 req/s average over a 10 s run with 6 spikes.
        let dense: Vec<MetaEvent> = (0..10).map(|i| ev(i as f64, 60)).collect();
        let r = characterize(&dense, 10.0, 4, &cfg());
        assert!(r.has(MetadataLabel::HighDensity));
        assert!(r.mean_rps >= 50.0);
    }

    #[test]
    fn histogram_binning() {
        let hist = requests_per_second(&[ev(0.2, 3), ev(0.8, 2), ev(7.5, 1)], 10.0);
        assert_eq!(hist.len(), 10);
        assert_eq!(hist[0], 5);
        assert_eq!(hist[7], 1);
        // Events past runtime clamp into the last bin.
        let hist = requests_per_second(&[ev(99.0, 4)], 10.0);
        assert_eq!(hist[9], 4);
    }

    #[test]
    fn empty_meta_is_insignificant() {
        let r = characterize(&[], 100.0, 4, &cfg());
        assert_eq!(r.labels, vec![MetadataLabel::InsignificantLoad]);
        assert_eq!(r.total_requests, 0);
    }

    #[test]
    fn spike_threshold_boundary_is_inclusive() {
        // A "spike" is >= 50 requests (inclusive); 49 is not.
        let at_49: Vec<MetaEvent> = (0..5).map(|i| ev(i as f64 * 10.0, 49)).collect();
        assert!(!characterize(&at_49, 100.0, 4, &cfg()).has(MetadataLabel::MultipleSpikes));
        let at_50: Vec<MetaEvent> = (0..5).map(|i| ev(i as f64 * 10.0, 50)).collect();
        assert!(characterize(&at_50, 100.0, 4, &cfg()).has(MetadataLabel::MultipleSpikes));
    }

    #[test]
    fn density_mean_uses_full_runtime() {
        // 6 spikes of 100 over 600 s: mean 1 req/s — spiky but not dense.
        let sparse: Vec<MetaEvent> = (0..6).map(|i| ev(i as f64 * 100.0, 100)).collect();
        let r = characterize(&sparse, 600.0, 4, &cfg());
        assert!(r.has(MetadataLabel::MultipleSpikes));
        assert!(!r.has(MetadataLabel::HighDensity));
        assert!((r.mean_rps - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quiet_but_significant_load_gets_no_labels() {
        // More requests than ranks, but no spikes: empty label set.
        let r = characterize(&[ev(1.0, 10), ev(50.0, 10)], 100.0, 4, &cfg());
        assert!(r.labels.is_empty());
    }
}
