//! Columnar (struct-of-arrays) interval storage and merging — the zero-copy
//! hot path's counterpart to [`crate::merge`].
//!
//! The row-oriented path clones `Vec<Operation>`s at every stage; at corpus
//! scale the allocator traffic and pointer-chasing dominate parse→merge. This
//! module keeps one direction's intervals as four parallel vectors
//! ([`OpColumns`]) inside a reusable per-thread [`TraceArena`], so that
//!
//! * concurrent-overlap merging walks contiguous `starts`/`ends` arrays,
//! * the quartile-chunk temporality scan streams the same arrays, and
//! * per-trace allocations collapse to arena `clear()`s that keep capacity.
//!
//! **Equivalence contract:** every function here performs bit-identical
//! arithmetic, in the same order, as its row-oriented twin — the
//! `zerocopy-vs-owned` differential oracle and the agreement property tests
//! pin this. The one structural difference is sorting: the owned path
//! stable-sorts extraction order by `start` ([`OperationView::from_log`])
//! and then stable-sorts that by `(start, end)` ([`crate::merge::
//! merge_concurrent`]). Because both sorts are stable and the second key
//! refines the first, the composition equals a single stable sort of
//! extraction order by `(start, end)` — which is what
//! [`merge_concurrent_columnar`] does with one index sort.
//!
//! Arena ownership rule: an arena borrows nothing and owns all its buffers;
//! a loaded [`ColumnarTrace`] is valid until the next `load`, and anything
//! that must outlive the trace (the report) is built from copies.

use crate::config::CategorizerConfig;
use mosaic_darshan::convert::{nonneg_u64, usize_to_u64};
use mosaic_darshan::counter::{PosixCounter as C, PosixFCounter as F};
use mosaic_darshan::ops::{MetaEvent, MetaKind, OpKind, Operation};
use mosaic_darshan::validate::ValidityReport;
use mosaic_darshan::view::TraceView;

/// One direction's intervals in struct-of-arrays layout. The four vectors
/// always have equal length; element `i` of each describes one operation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpColumns {
    /// Operation start times (seconds relative to job start).
    pub starts: Vec<f64>,
    /// Operation end times.
    pub ends: Vec<f64>,
    /// Bytes moved per operation.
    pub bytes: Vec<u64>,
    /// Participating ranks per operation.
    pub ranks: Vec<u32>,
}

impl OpColumns {
    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` when no operations are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Drop all operations, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.starts.clear();
        self.ends.clear();
        self.bytes.clear();
        self.ranks.clear();
    }

    /// Heap bytes held by the four column buffers (capacity, not length —
    /// arenas keep capacity across `clear()`, and resident memory is what
    /// the `mosaic.arena.resident_bytes` gauge reports).
    pub fn resident_bytes(&self) -> u64 {
        usize_to_u64(self.starts.capacity().saturating_mul(std::mem::size_of::<f64>()))
            .saturating_add(usize_to_u64(
                self.ends.capacity().saturating_mul(std::mem::size_of::<f64>()),
            ))
            .saturating_add(usize_to_u64(
                self.bytes.capacity().saturating_mul(std::mem::size_of::<u64>()),
            ))
            .saturating_add(usize_to_u64(
                self.ranks.capacity().saturating_mul(std::mem::size_of::<u32>()),
            ))
    }

    /// Append one operation.
    #[inline]
    pub fn push(&mut self, start: f64, end: f64, bytes: u64, ranks: u32) {
        self.starts.push(start);
        self.ends.push(end);
        self.bytes.push(bytes);
        self.ranks.push(ranks);
    }

    fn truncate(&mut self, len: usize) {
        self.starts.truncate(len);
        self.ends.truncate(len);
        self.bytes.truncate(len);
        self.ranks.truncate(len);
    }

    /// Copy operation `src` over operation `dst` (compaction helper).
    fn copy_within(&mut self, src: usize, dst: usize) {
        if src == dst {
            return;
        }
        // lint: allow(panic, "callers pass src/dst < len; compaction never reads past the write head")
        self.starts[dst] = self.starts[src];
        // lint: allow(panic, "callers pass src/dst < len; compaction never reads past the write head")
        self.ends[dst] = self.ends[src];
        // lint: allow(panic, "callers pass src/dst < len; compaction never reads past the write head")
        self.bytes[dst] = self.bytes[src];
        // lint: allow(panic, "callers pass src/dst < len; compaction never reads past the write head")
        self.ranks[dst] = self.ranks[src];
    }

    /// Fuse operation `i` of `other` into operation `dst` of `self` —
    /// interval hull, byte sum, rank sum, the exact arithmetic (and
    /// argument order, for NaN behaviour) of [`crate::merge`]'s `fuse`.
    fn fuse_from(&mut self, dst: usize, other: &OpColumns, i: usize) {
        // lint: allow(panic, "dst < self.len() and i < other.len() by the merge walk's construction")
        self.starts[dst] = self.starts[dst].min(other.starts[i]);
        // lint: allow(panic, "dst < self.len() and i < other.len() by the merge walk's construction")
        self.ends[dst] = self.ends[dst].max(other.ends[i]);
        // lint: allow(panic, "dst < self.len() and i < other.len() by the merge walk's construction")
        self.bytes[dst] = self.bytes[dst].saturating_add(other.bytes[i]);
        // lint: allow(panic, "dst < self.len() and i < other.len() by the merge walk's construction")
        self.ranks[dst] = self.ranks[dst].saturating_add(other.ranks[i]);
    }

    /// Materialize row-oriented operations (for segmentation/periodicity,
    /// which run on the short post-merge list).
    pub fn materialize(&self, kind: OpKind, out: &mut Vec<Operation>) {
        out.clear();
        out.reserve(self.len());
        let columns = self.starts.iter().zip(&self.ends).zip(&self.bytes).zip(&self.ranks);
        for (((&start, &end), &bytes), &ranks) in columns {
            out.push(Operation { kind, start, end, bytes, ranks });
        }
    }

    /// Load from row-oriented operations (bench + test helper).
    pub fn load_ops(&mut self, ops: &[Operation]) {
        self.clear();
        for op in ops {
            self.push(op.start, op.end, op.bytes, op.ranks);
        }
    }
}

/// One trace's extracted operation view in columnar form — what the
/// zero-copy pipeline hands the categorizer instead of an
/// [`mosaic_darshan::OperationView`].
#[derive(Debug, Clone, Default)]
pub struct ColumnarTrace {
    /// Job wallclock runtime in seconds.
    pub runtime: f64,
    /// Number of processes in the job.
    pub nprocs: u32,
    /// Read operations, in record-extraction order (merging sorts).
    pub reads: OpColumns,
    /// Write operations, in record-extraction order.
    pub writes: OpColumns,
    /// Metadata events, sorted by time.
    pub meta: Vec<MetaEvent>,
    /// Total bytes moved by the surviving records (the dedup weight),
    /// accumulated during extraction so the wire bytes are walked once.
    pub weight: i64,
}

impl ColumnarTrace {
    /// Extract a borrowed trace into the columns, skipping the records the
    /// validity `report` flagged (the zero-copy equivalent of
    /// `delete_invalid` + [`mosaic_darshan::OperationView::from_log`]).
    ///
    /// Extraction order, the per-record op/meta conditions, and the final
    /// stable meta sort mirror `from_log`'s `push_record` exactly.
    pub fn load(&mut self, view: &TraceView<'_>, report: &ValidityReport) {
        self.runtime = view.runtime();
        self.nprocs = view.nprocs;
        self.reads.clear();
        self.writes.clear();
        self.meta.clear();
        let mut bytes_read: i64 = 0;
        let mut bytes_written: i64 = 0;
        let mut bad = report.record_errors.iter().map(|(i, _)| *i).peekable();
        for (i, rec) in view.records().enumerate() {
            if bad.peek() == Some(&i) {
                bad.next();
                continue;
            }
            let ranks = rec.rank_count(self.nprocs);
            if let Some((start, end)) = rec.read_interval() {
                self.reads.push(start, end, nonneg_u64(rec.bytes_read()), ranks);
            }
            if let Some((start, end)) = rec.write_interval() {
                self.writes.push(start, end, nonneg_u64(rec.bytes_written()), ranks);
            }
            let opens = nonneg_u64(rec.get(C::Opens));
            if opens > 0 {
                self.meta.push(MetaEvent {
                    time: rec.getf(F::OpenStartTimestamp),
                    kind: MetaKind::Open,
                    count: opens,
                });
            }
            let seeks = nonneg_u64(rec.get(C::Seeks));
            if seeks > 0 {
                self.meta.push(MetaEvent {
                    time: rec.getf(F::OpenStartTimestamp),
                    kind: MetaKind::Seek,
                    count: seeks,
                });
            }
            let stats = nonneg_u64(rec.get(C::Stats));
            if stats > 0 {
                self.meta.push(MetaEvent {
                    time: rec.getf(F::OpenStartTimestamp),
                    kind: MetaKind::Stat,
                    count: stats,
                });
            }
            let closes = nonneg_u64(rec.get(C::Closes));
            if closes > 0 {
                self.meta.push(MetaEvent {
                    time: rec.getf(F::CloseEndTimestamp),
                    kind: MetaKind::Close,
                    count: closes,
                });
            }
            bytes_read += rec.bytes_read();
            bytes_written += rec.bytes_written();
        }
        self.meta.sort_by(|a, b| a.time.total_cmp(&b.time));
        self.weight = bytes_read + bytes_written;
    }
}

/// Reusable merge scratch space: the sort-index buffer, the merged columns,
/// and a row-op buffer for the (short) post-merge segmentation input.
#[derive(Debug, Clone, Default)]
pub struct MergeScratch {
    idx: Vec<usize>,
    /// Output of the merge passes for the direction most recently processed.
    pub merged: OpColumns,
    /// Row-op materialization of `merged` (filled on demand).
    pub ops: Vec<Operation>,
}

/// A per-thread trace arena: the extracted columnar trace plus the merge
/// scratch. All buffers are owned; `load` + the merge passes only `clear()`
/// them, so steady-state processing allocates nothing per trace.
#[derive(Debug, Clone, Default)]
pub struct TraceArena {
    /// The extracted trace (input side).
    pub trace: ColumnarTrace,
    /// Merge/materialization scratch (working side).
    pub scratch: MergeScratch,
}

impl ColumnarTrace {
    /// Heap bytes held by the trace's column and meta buffers (capacity,
    /// not length).
    pub fn resident_bytes(&self) -> u64 {
        self.reads.resident_bytes().saturating_add(self.writes.resident_bytes()).saturating_add(
            usize_to_u64(self.meta.capacity().saturating_mul(std::mem::size_of::<MetaEvent>())),
        )
    }
}

impl MergeScratch {
    /// Heap bytes held by the scratch buffers (capacity, not length).
    pub fn resident_bytes(&self) -> u64 {
        usize_to_u64(self.idx.capacity().saturating_mul(std::mem::size_of::<usize>()))
            .saturating_add(self.merged.resident_bytes())
            .saturating_add(usize_to_u64(
                self.ops.capacity().saturating_mul(std::mem::size_of::<Operation>()),
            ))
    }
}

impl TraceArena {
    /// Total heap bytes resident in this arena — what one worker's
    /// steady-state trace processing keeps allocated.
    pub fn resident_bytes(&self) -> u64 {
        self.trace.resident_bytes().saturating_add(self.scratch.resident_bytes())
    }
}

/// Concurrent merging on columns: one stable index sort by `(start, end)`,
/// then the same fuse-or-push walk as [`crate::merge::merge_concurrent`].
/// The result lands in `scratch.merged`.
pub fn merge_concurrent_columnar(input: &OpColumns, scratch: &mut MergeScratch) {
    scratch.idx.clear();
    scratch.idx.extend(0..input.len());
    scratch.idx.sort_by(|&a, &b| {
        // lint: allow(panic, "sort indices range over 0..input.len()")
        (input.starts[a].total_cmp(&input.starts[b])).then(input.ends[a].total_cmp(&input.ends[b]))
    });
    scratch.merged.clear();
    for &i in &scratch.idx {
        let n = scratch.merged.len();
        // lint: allow(panic, "i < input.len(); n - 1 < merged.len() when n > 0")
        if n > 0 && input.starts[i] <= scratch.merged.ends[n - 1] {
            scratch.merged.fuse_from(n - 1, input, i);
        } else {
            // lint: allow(panic, "i < input.len() by construction of idx")
            scratch.merged.push(input.starts[i], input.ends[i], input.bytes[i], input.ranks[i]);
        }
    }
}

/// Neighbor merging on columns, in place: the same gap arithmetic as
/// [`crate::merge::merge_neighbors`], as a two-pointer compaction.
pub fn merge_neighbors_columnar(cols: &mut OpColumns, runtime: f64, config: &CategorizerConfig) {
    let runtime_gap = config.neighbor_gap_runtime_frac * runtime.max(0.0);
    let mut w = 0usize; // cols[..w] is the merged prefix
    for i in 0..cols.len() {
        if w == 0 {
            cols.copy_within(i, 0);
            w = 1;
            continue;
        }
        // lint: allow(panic, "w >= 1 here and w <= i + 1 <= len; i < len")
        let gap = cols.starts[i] - cols.ends[w - 1];
        // lint: allow(panic, "w >= 1 here and w <= i + 1 <= len")
        let op_gap = config.neighbor_gap_op_frac * (cols.ends[w - 1] - cols.starts[w - 1]);
        if gap <= runtime_gap.max(op_gap) {
            // Fuse in place: hull + saturating sums, same order as `fuse`.
            // lint: allow(panic, "w - 1 < w <= len and i < len")
            cols.starts[w - 1] = cols.starts[w - 1].min(cols.starts[i]);
            // lint: allow(panic, "w - 1 < w <= len and i < len")
            cols.ends[w - 1] = cols.ends[w - 1].max(cols.ends[i]);
            // lint: allow(panic, "w - 1 < w <= len and i < len")
            cols.bytes[w - 1] = cols.bytes[w - 1].saturating_add(cols.bytes[i]);
            // lint: allow(panic, "w - 1 < w <= len and i < len")
            cols.ranks[w - 1] = cols.ranks[w - 1].saturating_add(cols.ranks[i]);
        } else {
            cols.copy_within(i, w);
            w += 1;
        }
    }
    cols.truncate(w);
}

/// Both merge passes for one direction — the columnar
/// [`crate::merge::merge_all`]. The result is `scratch.merged`.
pub fn merge_all_columnar(
    input: &OpColumns,
    runtime: f64,
    config: &CategorizerConfig,
    scratch: &mut MergeScratch,
) {
    merge_concurrent_columnar(input, scratch);
    merge_neighbors_columnar(&mut scratch.merged, runtime, config);
}

/// Columnar twin of [`crate::temporality::chunk_volumes`]: apportion bytes
/// over `chunks` equal time chunks, streaming the three column arrays.
/// Float arithmetic and clamping are identical to the row version.
pub fn chunk_volumes_columnar(cols: &OpColumns, runtime: f64, chunks: usize) -> Vec<f64> {
    let mut sums = vec![0.0; chunks];
    if runtime <= 0.0 || chunks == 0 {
        return sums;
    }
    let width = runtime / chunks as f64;
    for i in 0..cols.len() {
        // lint: allow(panic, "i < len and all four columns share that length")
        let (op_start, op_end, op_bytes) = (cols.starts[i], cols.ends[i], cols.bytes[i]);
        if op_bytes == 0 {
            continue;
        }
        if op_start > runtime || op_end < 0.0 {
            continue;
        }
        let s = op_start.max(0.0);
        let e = op_end.min(runtime).max(s);
        if e <= s {
            // lint: allow(cast, "f64-to-usize `as` saturates; s >= 0 and min(chunks - 1) clamps above")
            let c = ((s / width) as usize).min(chunks - 1);
            // lint: allow(panic, "c is clamped to chunks - 1 == sums.len() - 1")
            sums[c] += op_bytes as f64;
            continue;
        }
        let density = op_bytes as f64 / (e - s);
        // lint: allow(cast, "f64-to-usize `as` saturates; s >= 0 and min(chunks - 1) clamps above")
        let first = ((s / width) as usize).min(chunks - 1);
        // lint: allow(cast, "f64-to-usize `as` saturates; e >= s >= 0 and min(chunks - 1) clamps above")
        let last = ((e / width) as usize).min(chunks - 1);
        #[allow(clippy::needless_range_loop)] // index math over a time window
        for c in first..=last {
            let lo = s.max(c as f64 * width);
            let hi = e.min((c + 1) as f64 * width);
            if hi > lo {
                // lint: allow(panic, "c <= last, which is clamped to chunks - 1 == sums.len() - 1")
                sums[c] += density * (hi - lo);
            }
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{merge_all, merge_concurrent, merge_neighbors};
    use crate::temporality::chunk_volumes;
    use mosaic_darshan::job::JobHeader;
    use mosaic_darshan::log::TraceLogBuilder;
    use mosaic_darshan::mdf;
    use mosaic_darshan::ops::OperationView;
    use mosaic_darshan::validate;
    use mosaic_darshan::view::{validate_view, TraceView};

    fn op(start: f64, end: f64, bytes: u64) -> Operation {
        Operation { kind: OpKind::Write, start, end, bytes, ranks: 1 }
    }

    fn cfg() -> CategorizerConfig {
        CategorizerConfig::default()
    }

    fn merged_rows(ops: &[Operation], runtime: f64) -> Vec<Operation> {
        let mut cols = OpColumns::default();
        cols.load_ops(ops);
        let mut scratch = MergeScratch::default();
        merge_all_columnar(&cols, runtime, &cfg(), &mut scratch);
        let mut out = Vec::new();
        scratch.merged.materialize(OpKind::Write, &mut out);
        out
    }

    // ---- boundary tests for the columnar interval layout ----

    #[test]
    fn empty_trace_columns() {
        let cols = OpColumns::default();
        let mut scratch = MergeScratch::default();
        merge_all_columnar(&cols, 100.0, &cfg(), &mut scratch);
        assert!(scratch.merged.is_empty());
        assert_eq!(chunk_volumes_columnar(&cols, 100.0, 4), vec![0.0; 4]);
        assert_eq!(merged_rows(&[], 100.0), merge_all(&[], 100.0, &cfg()));
    }

    #[test]
    fn single_interval_column() {
        let ops = [op(10.0, 20.0, 64)];
        assert_eq!(merged_rows(&ops, 100.0), merge_all(&ops, 100.0, &cfg()));
        let mut cols = OpColumns::default();
        cols.load_ops(&ops);
        assert_eq!(chunk_volumes_columnar(&cols, 100.0, 4), chunk_volumes(&ops, 100.0, 4));
        assert_eq!(cols.len(), 1);
    }

    #[test]
    fn interval_straddling_chunk_edges() {
        // Ops crossing every quartile edge, plus one instantaneous op
        // exactly on an edge and one clamped at the runtime boundary.
        let ops = [
            op(20.0, 30.0, 100), // straddles the 25 s edge
            op(45.0, 55.0, 100), // straddles the 50 s edge
            op(70.0, 80.0, 100), // straddles the 75 s edge
            op(25.0, 25.0, 7),   // instantaneous exactly on an edge
            op(95.0, 120.0, 40), // clipped at runtime
            op(-5.0, 5.0, 40),   // clipped at zero
        ];
        let mut cols = OpColumns::default();
        cols.load_ops(&ops);
        let columnar = chunk_volumes_columnar(&cols, 100.0, 4);
        let rows = chunk_volumes(&ops, 100.0, 4);
        assert_eq!(columnar, rows, "chunk apportioning must be bit-identical");
    }

    #[test]
    fn merge_agrees_on_overlapping_and_touching_ops() {
        let ops = [
            op(5.0, 6.0, 2),
            op(0.0, 1.0, 1),
            op(0.5, 2.0, 4),
            op(2.0, 3.0, 8),    // touching endpoint: closed-interval fuse
            op(6.004, 7.0, 16), // within the neighbor gap for runtime 10_000
        ];
        assert_eq!(merged_rows(&ops, 10_000.0), merge_all(&ops, 10_000.0, &cfg()));
        // And pass-by-pass agreement, not just end-to-end.
        let mut cols = OpColumns::default();
        cols.load_ops(&ops);
        let mut scratch = MergeScratch::default();
        merge_concurrent_columnar(&cols, &mut scratch);
        let mut conc = Vec::new();
        scratch.merged.materialize(OpKind::Write, &mut conc);
        assert_eq!(conc, merge_concurrent(&ops));
        merge_neighbors_columnar(&mut scratch.merged, 10_000.0, &cfg());
        let mut neigh = Vec::new();
        scratch.merged.materialize(OpKind::Write, &mut neigh);
        assert_eq!(neigh, merge_neighbors(&conc, 10_000.0, &cfg()));
    }

    #[test]
    fn equal_start_ties_preserve_extraction_order() {
        // Stable-sort equivalence: equal (start, end) pairs with different
        // payloads must fuse in extraction order on both paths.
        let ops = [op(1.0, 2.0, 10), op(1.0, 2.0, 20), op(1.0, 1.5, 5), op(1.0, 2.0, 40)];
        assert_eq!(merged_rows(&ops, 100.0), merge_all(&ops, 100.0, &cfg()));
    }

    #[test]
    fn max_clamp_values_agree_between_parsers() {
        // The PR-6 bomb-guard clamps, exercised at their exact boundary
        // values through BOTH parsers: the borrowed parser must accept and
        // reject the same inputs with the same errors.
        let log = TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 10)).finish();
        let bytes = mdf::to_bytes(&log);
        let exe_len_off = 8 + 2 + 2 + 8 + 4 + 4 + 8 + 8;
        let exe_len =
            u32::from_le_bytes(bytes[exe_len_off..exe_len_off + 4].try_into().unwrap()) as usize;
        let n_records_off = exe_len_off + 4 + exe_len;

        let patch = |off: usize, value: u32| {
            let mut b = bytes.clone();
            b[off..off + 4].copy_from_slice(&value.to_le_bytes());
            let n = b.len();
            let crc = mosaic_darshan::synthutil::Crc32::checksum(&b[..n - 4]);
            b[n - 4..].copy_from_slice(&crc.to_le_bytes());
            b
        };
        for (off, value) in [
            (n_records_off, mdf::MAX_RECORDS),     // at the cap: truncated
            (n_records_off, mdf::MAX_RECORDS + 1), // past the cap: implausible
            (n_records_off + 4, mdf::MAX_NAMES),   // name-table cap
            (n_records_off + 4, mdf::MAX_NAMES + 1),
            (exe_len_off, mdf::MAX_EXE_LEN),     // exe cap: truncated
            (exe_len_off, mdf::MAX_EXE_LEN + 1), // past: implausible
        ] {
            let b = patch(off, value);
            let owned = mdf::from_bytes(&b).map(|_| ());
            let borrowed = TraceView::parse(&b).map(|_| ());
            assert_eq!(borrowed, owned, "clamp at offset {off} value {value}");
            assert!(owned.is_err(), "clamp value {value} must be rejected");
        }
    }

    // ---- extraction agreement ----

    #[test]
    fn load_matches_from_log_extraction_and_weight() {
        let mut b = TraceLogBuilder::new(JobHeader::new(7, 3, 8, 0, 1000).with_exe("/bin/sim"));
        let r = b.begin_record("/in", -1);
        b.record_mut(r)
            .set(C::Reads, 8)
            .set(C::BytesRead, 800)
            .set(C::Opens, 8)
            .set(C::Seeks, 16)
            .set(C::Closes, 8)
            .setf(F::OpenStartTimestamp, 1.0)
            .setf(F::ReadStartTimestamp, 2.0)
            .setf(F::ReadEndTimestamp, 4.0)
            .setf(F::CloseEndTimestamp, 5.0);
        let w = b.begin_record("/out", 3);
        b.record_mut(w)
            .set(C::Writes, 1)
            .set(C::BytesWritten, 300)
            .set(C::Stats, 2)
            .setf(F::OpenStartTimestamp, 900.0)
            .setf(F::WriteStartTimestamp, 901.0)
            .setf(F::WriteEndTimestamp, 950.0);
        let bad = b.begin_record("/bad", 0);
        b.record_mut(bad).set(C::BytesRead, -5); // sanitized away
        let log = b.finish();
        let bytes = mdf::to_bytes(&log);

        // Owned path: validate, delete, extract.
        let report = validate::validate(&log);
        let mut sanitized = log.clone();
        validate::delete_invalid(&mut sanitized, &report);
        let view_owned = OperationView::from_log(&sanitized);

        // Columnar path: borrowed view, same report, extract.
        let tv = TraceView::parse(&bytes).unwrap();
        let vreport = validate_view(&tv);
        assert_eq!(vreport, report);
        let mut trace = ColumnarTrace::default();
        trace.load(&tv, &vreport);

        assert_eq!(trace.runtime, view_owned.runtime);
        assert_eq!(trace.nprocs, view_owned.nprocs);
        assert_eq!(trace.meta, view_owned.meta);
        assert_eq!(trace.weight, sanitized.io_weight());
        // Columns are pre-sort; the owned view is start-sorted. Compare
        // through the merge (where the owned path sorts anyway).
        let mut scratch = MergeScratch::default();
        merge_all_columnar(&trace.reads, trace.runtime, &cfg(), &mut scratch);
        let mut merged_cols = Vec::new();
        scratch.merged.materialize(OpKind::Read, &mut merged_cols);
        assert_eq!(merged_cols, merge_all(&view_owned.reads, view_owned.runtime, &cfg()));
        merge_all_columnar(&trace.writes, trace.runtime, &cfg(), &mut scratch);
        let mut merged_w = Vec::new();
        scratch.merged.materialize(OpKind::Write, &mut merged_w);
        assert_eq!(merged_w, merge_all(&view_owned.writes, view_owned.runtime, &cfg()));
    }

    #[test]
    fn arena_reuse_is_clean_across_traces() {
        // Load a big trace, then a small one: no state may leak through.
        let mut arena = TraceArena::default();
        let mk = |n: usize| {
            let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 4, 0, 100).with_exe("/bin/x"));
            for i in 0..n {
                let r = b.begin_record(&format!("/f{i}"), 0);
                b.record_mut(r)
                    .set(C::Reads, 1)
                    .set(C::BytesRead, 10)
                    .setf(F::ReadStartTimestamp, 1.0 + i as f64)
                    .setf(F::ReadEndTimestamp, 1.5 + i as f64);
            }
            mdf::to_bytes(&b.finish())
        };
        let big = mk(40);
        let small = mk(2);

        let tv = TraceView::parse(&big).unwrap();
        arena.trace.load(&tv, &validate_view(&tv));
        assert_eq!(arena.trace.reads.len(), 40);

        let tv = TraceView::parse(&small).unwrap();
        arena.trace.load(&tv, &validate_view(&tv));
        assert_eq!(arena.trace.reads.len(), 2);
        assert!(arena.trace.writes.is_empty());
        assert!(arena.trace.meta.is_empty());

        // Fresh-load equals arena-reuse load.
        let mut fresh = ColumnarTrace::default();
        let tv = TraceView::parse(&small).unwrap();
        fresh.load(&tv, &validate_view(&tv));
        assert_eq!(arena.trace.reads, fresh.reads);
        assert_eq!(arena.trace.weight, fresh.weight);
    }
}
