//! Trace segmentation (§III-B3a, first half).
//!
//! After merging, the trace of one direction is divided into segments: "a
//! segment starts at the beginning of an I/O operation and ends at the
//! beginning of the next one". The last operation's segment extends to the
//! end of the execution. Each segment carries the duration and the volume
//! of data moved by the operation that opens it; the `(duration, volume)`
//! pairs are the features Mean Shift clusters.

use mosaic_darshan::ops::Operation;
use serde::{Deserialize, Serialize};

/// One segment of the per-direction timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start of the opening operation (seconds, relative).
    pub start: f64,
    /// Segment length: distance to the next operation's start (or to the end
    /// of the execution for the last operation).
    pub duration: f64,
    /// Bytes moved by the opening operation.
    pub bytes: u64,
    /// Duration of the opening operation itself (for busy-time analysis).
    pub op_duration: f64,
}

impl Segment {
    /// Fraction of the segment spent doing I/O (clamped to `[0, 1]`).
    pub fn busy_fraction(&self) -> f64 {
        if self.duration <= 0.0 {
            return 1.0;
        }
        (self.op_duration / self.duration).clamp(0.0, 1.0)
    }

    /// Clustering feature: `(log10(1+duration), log10(1+bytes))`. Log space
    /// makes "comparable duration and data size" a multiplicative window,
    /// which is the natural notion across the many orders of magnitude HPC
    /// I/O spans.
    pub fn feature(&self) -> [f64; 2] {
        [(1.0 + self.duration.max(0.0)).log10(), (1.0 + self.bytes as f64).log10()]
    }
}

/// Segment a merged, start-sorted operation list over `[0, runtime]`.
pub fn segment(ops: &[Operation], runtime: f64) -> Vec<Segment> {
    let mut out = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let next_start = ops.get(i + 1).map(|n| n.start).unwrap_or_else(|| runtime.max(op.end));
        out.push(Segment {
            start: op.start,
            duration: (next_start - op.start).max(0.0),
            bytes: op.bytes,
            op_duration: op.duration(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_darshan::ops::OpKind;

    fn op(start: f64, end: f64, bytes: u64) -> Operation {
        Operation { kind: OpKind::Read, start, end, bytes, ranks: 1 }
    }

    #[test]
    fn segments_span_start_to_next_start() {
        let segs = segment(&[op(10.0, 12.0, 5), op(110.0, 113.0, 6), op(210.0, 211.0, 7)], 300.0);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].duration, 100.0);
        assert_eq!(segs[1].duration, 100.0);
        assert_eq!(segs[2].duration, 90.0); // to end of execution
        assert_eq!(segs[0].bytes, 5);
        assert_eq!(segs[2].op_duration, 1.0);
    }

    #[test]
    fn last_segment_never_negative() {
        // Operation ending past the nominal runtime (slack case).
        let segs = segment(&[op(95.0, 105.0, 1)], 100.0);
        assert_eq!(segs[0].duration, 10.0); // extends to op end
    }

    #[test]
    fn busy_fraction() {
        let s = Segment { start: 0.0, duration: 100.0, bytes: 1, op_duration: 10.0 };
        assert!((s.busy_fraction() - 0.1).abs() < 1e-12);
        let s = Segment { start: 0.0, duration: 0.0, bytes: 1, op_duration: 1.0 };
        assert_eq!(s.busy_fraction(), 1.0);
        let s = Segment { start: 0.0, duration: 5.0, bytes: 1, op_duration: 50.0 };
        assert_eq!(s.busy_fraction(), 1.0); // clamped
    }

    #[test]
    fn features_are_log_scaled() {
        let s = Segment { start: 0.0, duration: 99.0, bytes: 999_999, op_duration: 1.0 };
        let f = s.feature();
        assert!((f[0] - 2.0).abs() < 1e-12);
        assert!((f[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn empty_ops_yield_no_segments() {
        assert!(segment(&[], 100.0).is_empty());
    }

    #[test]
    fn equal_periods_give_equal_features() {
        let ops: Vec<Operation> =
            (0..5).map(|i| op(i as f64 * 60.0, i as f64 * 60.0 + 2.0, 1 << 20)).collect();
        let segs = segment(&ops, 300.0);
        let f0 = segs[0].feature();
        for s in &segs {
            let f = s.feature();
            assert!((f[0] - f0[0]).abs() < 1e-9);
            assert!((f[1] - f0[1]).abs() < 1e-9);
        }
    }
}
