//! Spectral periodicity detection — the paper's short-term future work.
//!
//! §V: *"some signal-processing-based techniques for periodic I/O detection
//! have been shown to be effective [Tarraf et al.]. In the short term, we
//! plan to implement these techniques to improve the detection of this type
//! of pattern."* This module does so: the per-direction operations are
//! rasterized into an activity signal, periodogram peaks propose candidate
//! periods, and each candidate is then *verified in the time domain* — a
//! phase is fitted and the operations that sit on the resulting lattice
//! become the pattern's members. The time-domain step is what turns a bare
//! spectral peak into the same rich [`PeriodicPattern`] (occurrences,
//! volume, busy time) the clustering path produces, and it filters out
//! harmonics, which match fewer operations than their fundamental.
//!
//! Select it with [`crate::config::PeriodicityMethod::Spectral`], or run
//! both and merge with [`crate::config::PeriodicityMethod::Hybrid`].

use crate::category::PeriodMagnitude;
use crate::config::CategorizerConfig;
use crate::periodicity::PeriodicPattern;
use crate::segment::Segment;
use mosaic_signal::periodogram::{find_peaks, periodogram};
use mosaic_signal::window::{rasterize, remove_mean};

/// Raster resolution for the activity signal.
const BINS: usize = 4096;
/// Max spectral peaks examined per direction.
const MAX_PEAKS: usize = 10;
/// Peaks below this fraction of the strongest are ignored.
const PEAK_THRESHOLD: f64 = 0.15;
/// An operation belongs to a candidate lattice when its start is within
/// this fraction of the period from the nearest lattice point.
const PHASE_TOLERANCE: f64 = 0.2;

/// Detect periodic operations via periodogram peaks + time-domain
/// verification. Consumes the same segment list as the clustering detector
/// so the two methods are drop-in interchangeable.
pub fn detect_periodic_spectral(
    segments: &[Segment],
    runtime: f64,
    config: &CategorizerConfig,
) -> Vec<PeriodicPattern> {
    if segments.len() < config.min_periodic_occurrences || runtime <= 0.0 {
        return Vec::new();
    }
    let intervals: Vec<(f64, f64, f64)> =
        segments.iter().map(|s| (s.start, s.start + s.op_duration, s.bytes as f64)).collect();
    let mut signal = rasterize(&intervals, runtime, BINS);
    remove_mean(&mut signal);
    let sample_rate = BINS as f64 / runtime;
    let (freqs, powers) = periodogram(&signal, sample_rate);
    let peaks = find_peaks(&freqs, &powers, MAX_PEAKS, PEAK_THRESHOLD);

    let mut patterns: Vec<PeriodicPattern> = Vec::new();
    let mut claimed = vec![false; segments.len()];
    for peak in peaks {
        let period = peak.period;
        if !period.is_finite() || period <= 0.0 || period > runtime {
            continue;
        }
        let Some((mut members, mut phase_spread)) = lattice_members(segments, &claimed, period)
        else {
            continue;
        };
        // Sub-harmonic refinement: if the lattice at period/k captures
        // substantially more operations, the spectral peak was a multiple of
        // the true cadence (e.g. a 120 s peak over a 60 s train catches only
        // every other operation). Descend while that keeps paying off.
        let mut period = period;
        let mut refined = true;
        while refined {
            refined = false;
            for k in 2..=4u32 {
                let finer = period / k as f64;
                if finer <= 0.0 {
                    continue;
                }
                if let Some((m2, s2)) = lattice_members(segments, &claimed, finer) {
                    if m2.len() as f64 >= 1.5 * members.len() as f64 {
                        period = finer;
                        members = m2;
                        phase_spread = s2;
                        refined = true;
                        break;
                    }
                }
            }
        }
        if members.len() < config.min_periodic_occurrences {
            continue;
        }
        // Occupancy gate: a true period of T over a runtime R produces about
        // R/T occurrences. The k-th harmonic occupies only 1/k of its
        // lattice slots and chance alignments of sparse operations far
        // fewer, so requiring 60 % occupancy filters both.
        let expected_slots = runtime / period;
        if (members.len() as f64) < 0.6 * expected_slots {
            continue;
        }
        // Equivalent of the clustering path's regularity gate: the phase
        // spread plays the role of the inter-arrival CV.
        if phase_spread > config.periodic_regularity_cv {
            continue;
        }
        // Inter-arrival consistency: the members' actual cadence must match
        // the candidate period. Sub-/super-harmonics that capture a denser
        // or sparser train fail this even when the lattice looks occupied
        // (several operations can share one slot).
        // lint: allow(panic, "lattice_members returns indices built from 0..segments.len()")
        let mut starts: Vec<f64> = members.iter().map(|&i| segments[i].start).collect();
        starts.sort_by(f64::total_cmp);
        // lint: allow(panic, "windows(2) yields exactly-2-element slices")
        let gaps: Vec<f64> = starts.windows(2).map(|w| w[1] - w[0]).collect();
        if gaps.is_empty() {
            continue;
        }
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        if (mean_gap - period).abs() > 0.25 * period {
            continue;
        }
        let gap_var = gaps.iter().map(|g| (g - mean_gap).powi(2)).sum::<f64>() / gaps.len() as f64;
        if gap_var.sqrt() / mean_gap > config.periodic_regularity_cv {
            continue;
        }
        for &m in &members {
            // lint: allow(panic, "m < segments.len() == claimed.len() (allocated together in the caller)")
            claimed[m] = true;
        }
        let n = members.len() as f64;
        // lint: allow(panic, "lattice_members returns indices built from 0..segments.len()")
        let mean_bytes = members.iter().map(|&i| segments[i].bytes as f64).sum::<f64>() / n;
        let busy_fraction =
            // lint: allow(panic, "lattice_members returns indices built from 0..segments.len()")
            (members.iter().map(|&i| segments[i].op_duration).sum::<f64>() / n / period)
                .clamp(0.0, 1.0);
        patterns.push(PeriodicPattern {
            occurrences: members.len(),
            period,
            magnitude: PeriodMagnitude::of(period),
            mean_bytes,
            busy_fraction,
            regularity_cv: phase_spread,
            members,
        });
    }
    patterns.sort_by(|a, b| b.occurrences.cmp(&a.occurrences).then(a.period.total_cmp(&b.period)));
    patterns
}

/// Fit a phase for `period` and return the unclaimed segments sitting on
/// the lattice, plus the normalized spread of their phase residuals.
///
/// The phase is chosen by *mode seeking*: every unclaimed segment proposes
/// its own start phase, and the proposal capturing the most segments wins.
/// A circular mean would be pulled off target by unrelated operations (the
/// other interleaved behaviour), which is exactly the situation this
/// detector is evaluated in.
fn lattice_members(
    segments: &[Segment],
    claimed: &[bool],
    period: f64,
) -> Option<(Vec<usize>, f64)> {
    // lint: allow(panic, "i ranges over 0..segments.len(); claimed.len() == segments.len() (allocated together in the caller)")
    let unclaimed: Vec<usize> = (0..segments.len()).filter(|&i| !claimed[i]).collect();
    if unclaimed.is_empty() {
        return None;
    }

    let residual = |start: f64, phase: f64| -> f64 {
        let mut r = (start - phase) % period;
        if r > period / 2.0 {
            r -= period;
        }
        if r < -period / 2.0 {
            r += period;
        }
        r
    };

    // Mode-seek the phase over the candidates' own proposals.
    let tol = PHASE_TOLERANCE * period;
    let mut best_phase = 0.0;
    let mut best_count = 0usize;
    for &i in &unclaimed {
        // lint: allow(panic, "unclaimed holds indices built from 0..segments.len()")
        let phase = segments[i].start % period;
        let count =
            // lint: allow(panic, "unclaimed holds indices built from 0..segments.len()")
            unclaimed.iter().filter(|&&j| residual(segments[j].start, phase).abs() <= tol).count();
        if count > best_count {
            best_count = count;
            best_phase = phase;
        }
    }
    if best_count == 0 {
        return None;
    }

    let mut members = Vec::new();
    let mut residuals = Vec::new();
    for &i in &unclaimed {
        // lint: allow(panic, "unclaimed holds indices built from 0..segments.len()")
        let r = residual(segments[i].start, best_phase);
        if r.abs() <= tol {
            members.push(i);
            residuals.push(r / period);
        }
    }
    let mean = residuals.iter().sum::<f64>() / residuals.len() as f64;
    let var = residuals.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / residuals.len() as f64;
    Some((members, var.sqrt() * 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(period: f64, count: usize, bytes: u64, op_duration: f64) -> Vec<Segment> {
        (0..count)
            .map(|i| Segment {
                start: period * (i as f64 + 0.3),
                duration: period,
                bytes,
                op_duration,
            })
            .collect()
    }

    fn cfg() -> CategorizerConfig {
        CategorizerConfig::default()
    }

    #[test]
    fn clean_train_is_detected_with_correct_period() {
        let segments = train(120.0, 30, 256 << 20, 8.0);
        let runtime = 120.0 * 30.0;
        let patterns = detect_periodic_spectral(&segments, runtime, &cfg());
        assert!(!patterns.is_empty());
        let p = &patterns[0];
        assert!((p.period - 120.0).abs() < 12.0, "period {}", p.period);
        assert!(p.occurrences >= 25, "occurrences {}", p.occurrences);
        assert_eq!(p.magnitude, PeriodMagnitude::Minute);
        assert!(p.is_low_busy(0.25));
    }

    #[test]
    fn aperiodic_ops_are_rejected() {
        let starts = [3.0, 250.0, 260.0, 900.0, 1700.0, 3100.0];
        let segments: Vec<Segment> = starts
            .iter()
            .map(|&s| Segment { start: s, duration: 10.0, bytes: 1 << 30, op_duration: 4.0 })
            .collect();
        let patterns = detect_periodic_spectral(&segments, 3600.0, &cfg());
        // A spurious weak peak may appear, but no confident pattern should
        // cover most operations.
        assert!(
            patterns.iter().all(|p| p.occurrences < 5),
            "unexpected confident pattern: {patterns:?}"
        );
    }

    #[test]
    fn two_interleaved_trains_both_recovered() {
        let mut segments = train(60.0, 120, 100 << 20, 2.0);
        // Offset the slow train so the lattices do not coincide.
        let slow: Vec<Segment> = (0..12)
            .map(|i| Segment {
                start: 600.0 * i as f64 + 40.0,
                duration: 600.0,
                bytes: 2 << 30,
                op_duration: 5.0,
            })
            .collect();
        segments.extend(slow);
        segments.sort_by(|a, b| a.start.total_cmp(&b.start));
        let patterns = detect_periodic_spectral(&segments, 7200.0, &cfg());
        let periods: Vec<f64> = patterns.iter().map(|p| p.period).collect();
        assert!(periods.iter().any(|&p| (p - 60.0).abs() < 6.0), "fast train missing: {periods:?}");
        // The slow train is 10 % of the energy; the spectral method may or
        // may not surface it — that asymmetry vs Mean Shift is exactly what
        // the ablation bench quantifies. Only the fast train is required.
    }

    #[test]
    fn short_inputs_short_circuit() {
        assert!(detect_periodic_spectral(&[], 100.0, &cfg()).is_empty());
        let one = train(10.0, 1, 100, 1.0);
        assert!(detect_periodic_spectral(&one, 100.0, &cfg()).is_empty());
        let segments = train(10.0, 5, 100, 1.0);
        assert!(detect_periodic_spectral(&segments, 0.0, &cfg()).is_empty());
    }

    #[test]
    fn members_are_claimed_once() {
        let segments = train(90.0, 40, 1 << 30, 3.0);
        let patterns = detect_periodic_spectral(&segments, 3600.0, &cfg());
        let mut seen = std::collections::BTreeSet::new();
        for p in &patterns {
            for &m in &p.members {
                assert!(seen.insert(m), "segment {m} claimed twice");
            }
        }
    }
}
