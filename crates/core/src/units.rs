//! Unit-carrying newtypes for the two feature axes: seconds of duration
//! and bytes of volume.
//!
//! The MOSAIC feature space is built from `(segment duration, volume)`
//! pairs, and most of the arithmetic in this workspace moves one or the
//! other around as a bare `f64`. The workspace linter's L7 rule flags
//! `+`/`-` arithmetic that mixes identifiers from the two families;
//! these newtypes are the structural fix it points at: once a quantity is
//! a [`Secs`] or a [`ByteVol`], adding a duration to a volume no longer
//! type-checks at all.
//!
//! Both types are thin `f64` wrappers: `Copy`, ordered by `total_cmp`
//! semantics via `PartialOrd`, and convertible back with [`Secs::get`] /
//! [`ByteVol::get`] at the boundary where an external API needs the raw
//! float. Only same-unit addition/subtraction is implemented, plus the
//! scalar scaling that both units support; the deliberate omission of any
//! `Secs + ByteVol` impl is the point.

use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration in seconds (relative to job start, like all Darshan times).
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Secs(f64);

/// A data volume in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct ByteVol(f64);

impl Secs {
    /// Wrap a raw seconds value.
    #[inline]
    pub fn new(secs: f64) -> Self {
        Secs(secs)
    }

    /// The raw seconds value, for boundaries that need the bare float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl ByteVol {
    /// Wrap a raw byte count.
    #[inline]
    pub fn new(bytes: f64) -> Self {
        ByteVol(bytes)
    }

    /// The raw byte count, for boundaries that need the bare float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The rate obtained by spreading this volume over `dt`: bytes/second
    /// as a bare `f64` (a ratio of the two units, so neither newtype fits).
    #[inline]
    pub fn per(self, dt: Secs) -> f64 {
        self.0 / dt.0
    }
}

macro_rules! same_unit_arith {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
    };
}

same_unit_arith!(Secs);
same_unit_arith!(ByteVol);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_unit_arithmetic_works() {
        let a = Secs::new(1.5) + Secs::new(0.5);
        assert_eq!(a.get(), 2.0);
        let mut v = ByteVol::new(1024.0);
        v += ByteVol::new(1024.0);
        v -= ByteVol::new(512.0);
        assert_eq!(v.get(), 1536.0);
        assert_eq!((Secs::new(4.0) - Secs::new(1.0)).get(), 3.0);
    }

    #[test]
    fn scalar_scaling_works() {
        assert_eq!((ByteVol::new(100.0) * 2.0).get(), 200.0);
        assert_eq!((Secs::new(10.0) / 4.0).get(), 2.5);
    }

    #[test]
    fn rates_are_bare_floats() {
        assert_eq!(ByteVol::new(4096.0).per(Secs::new(2.0)), 2048.0);
    }

    #[test]
    fn ordering_follows_the_raw_value() {
        assert!(Secs::new(1.0) < Secs::new(2.0));
        assert!(ByteVol::new(2.0) > ByteVol::new(1.0));
    }
}
