//! Temporality characterization (§III-B3b).
//!
//! The trace is split into four equal execution-time chunks; each chunk's
//! byte volume is the sum of the bytes of the operations overlapping it
//! (apportioned uniformly over each operation's interval — the trace does
//! not know the distribution inside an operation, which is precisely the
//! failure mode behind the paper's 8 % misclassifications). The chunk sums
//! then decide the label:
//!
//! * total volume below the significance threshold → `insignificant`;
//! * coefficient of variation across chunks < 25 % → `steady`;
//! * one chunk more than twice every other → `on_start` / `after_start` /
//!   `before_end` / `on_end` by position;
//! * the two middle chunks jointly dominant → `after_start_before_end`;
//! * otherwise, the largest chunk's positional label (the "sub-optimal"
//!   fallback the paper's accuracy section describes).

use crate::category::TemporalityLabel;
use crate::config::CategorizerConfig;
use mosaic_darshan::ops::Operation;
use serde::{Deserialize, Serialize};

/// The temporality verdict for one direction, with the evidence kept for
/// reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalityResult {
    /// Assigned label.
    pub label: TemporalityLabel,
    /// Byte volume attributed to each chunk.
    pub chunk_bytes: Vec<f64>,
    /// Total bytes of the direction.
    pub total_bytes: u64,
    /// `true` when the label came from the dominance/steady rules, `false`
    /// when it came from the argmax fallback (lower confidence).
    pub confident: bool,
}

/// Apportion operation bytes over `chunks` equal time chunks of
/// `[0, runtime]`.
pub fn chunk_volumes(ops: &[Operation], runtime: f64, chunks: usize) -> Vec<f64> {
    let mut sums = vec![0.0; chunks];
    if runtime <= 0.0 || chunks == 0 {
        return sums;
    }
    let width = runtime / chunks as f64;
    for op in ops {
        if op.bytes == 0 {
            continue;
        }
        // Ops entirely outside the job window carry no in-window bytes;
        // apportioning them would dump phantom volume into an edge chunk.
        if op.start > runtime || op.end < 0.0 {
            continue;
        }
        let s = op.start.max(0.0);
        let e = op.end.min(runtime).max(s);
        if e <= s {
            // Instantaneous operation: all bytes in its containing chunk.
            // lint: allow(cast, "f64-to-usize `as` saturates; s >= 0 and min(chunks - 1) clamps above")
            let c = ((s / width) as usize).min(chunks - 1);
            // lint: allow(panic, "c is clamped to chunks - 1 == sums.len() - 1")
            sums[c] += op.bytes as f64;
            continue;
        }
        let density = op.bytes as f64 / (e - s);
        // lint: allow(cast, "f64-to-usize `as` saturates; s >= 0 and min(chunks - 1) clamps above")
        let first = ((s / width) as usize).min(chunks - 1);
        // lint: allow(cast, "f64-to-usize `as` saturates; e >= s >= 0 and min(chunks - 1) clamps above")
        let last = ((e / width) as usize).min(chunks - 1);
        #[allow(clippy::needless_range_loop)] // index math over a time window
        for c in first..=last {
            let lo = s.max(c as f64 * width);
            let hi = e.min((c + 1) as f64 * width);
            if hi > lo {
                // lint: allow(panic, "c <= last, which is clamped to chunks - 1 == sums.len() - 1")
                sums[c] += density * (hi - lo);
            }
        }
    }
    sums
}

/// Positional label of chunk `i` among `n` chunks (generalizes the paper's
/// four-chunk mapping to other chunk counts for the ablation bench).
fn positional_label(i: usize, n: usize) -> TemporalityLabel {
    if i == 0 {
        TemporalityLabel::OnStart
    } else if i == n - 1 {
        TemporalityLabel::OnEnd
    } else if i <= (n - 1) / 2 {
        TemporalityLabel::AfterStart
    } else {
        TemporalityLabel::BeforeEnd
    }
}

/// Characterize the temporality of one direction from its (merged)
/// operations.
pub fn characterize(
    ops: &[Operation],
    runtime: f64,
    config: &CategorizerConfig,
) -> TemporalityResult {
    let total_bytes: u64 = ops.iter().map(|o| o.bytes).sum();
    let chunk_bytes = chunk_volumes(ops, runtime, config.chunks);
    characterize_from_chunks(chunk_bytes, total_bytes, config)
}

/// Characterize from columnar (struct-of-arrays) merged operations — the
/// zero-copy path's entry point. The chunk apportioning streams the column
/// arrays; the decision core is shared with [`characterize`].
pub fn characterize_columnar(
    cols: &crate::columnar::OpColumns,
    runtime: f64,
    config: &CategorizerConfig,
) -> TemporalityResult {
    let total_bytes: u64 = cols.bytes.iter().sum();
    let chunk_bytes = crate::columnar::chunk_volumes_columnar(cols, runtime, config.chunks);
    characterize_from_chunks(chunk_bytes, total_bytes, config)
}

/// The label decision, shared verbatim by the row and columnar entry points
/// so the two paths cannot drift.
pub fn characterize_from_chunks(
    chunk_bytes: Vec<f64>,
    total_bytes: u64,
    config: &CategorizerConfig,
) -> TemporalityResult {
    if total_bytes < config.insignificant_bytes {
        return TemporalityResult {
            label: TemporalityLabel::Insignificant,
            chunk_bytes,
            total_bytes,
            confident: true,
        };
    }

    let n = chunk_bytes.len();
    let mean = chunk_bytes.iter().sum::<f64>() / n as f64;
    let var = chunk_bytes.iter().map(|&c| (c - mean).powi(2)).sum::<f64>() / n as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    if cv < config.steady_cv {
        return TemporalityResult {
            label: TemporalityLabel::Steady,
            chunk_bytes,
            total_bytes,
            confident: true,
        };
    }

    // Single dominant chunk: more than `dominance_factor` times every other.
    for i in 0..n {
        let dominant = (0..n)
            .filter(|&j| j != i)
            // lint: allow(panic, "i and j range over 0..n == chunk_bytes.len()")
            .all(|j| chunk_bytes[i] > config.dominance_factor * chunk_bytes[j]);
        if dominant {
            return TemporalityResult {
                label: positional_label(i, n),
                chunk_bytes,
                total_bytes,
                confident: true,
            };
        }
    }

    // Middle chunks jointly dominant over the edges.
    if n >= 4 {
        // lint: allow(panic, "n >= 4 checked above; 1..n-1 is a valid sub-slice")
        let middle: f64 = chunk_bytes[1..n - 1].iter().sum();
        // lint: allow(panic, "n >= 4 checked above; 0 and n-1 are in bounds")
        let edges = chunk_bytes[0] + chunk_bytes[n - 1];
        if middle > config.dominance_factor * edges {
            return TemporalityResult {
                label: TemporalityLabel::AfterStartBeforeEnd,
                chunk_bytes,
                total_bytes,
                confident: true,
            };
        }
    }

    // Fallback: positional label of the largest chunk, flagged unconfident.
    let argmax = chunk_bytes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    TemporalityResult {
        label: positional_label(argmax, n),
        chunk_bytes,
        total_bytes,
        confident: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_darshan::ops::OpKind;

    const MB: u64 = 1 << 20;

    fn op(start: f64, end: f64, bytes: u64) -> Operation {
        Operation { kind: OpKind::Read, start, end, bytes, ranks: 1 }
    }

    fn cfg() -> CategorizerConfig {
        CategorizerConfig::default()
    }

    #[test]
    fn chunk_apportioning_is_uniform() {
        // One op spanning the whole runtime: equal quarters.
        let sums = chunk_volumes(&[op(0.0, 100.0, 400)], 100.0, 4);
        for s in sums {
            assert!((s - 100.0).abs() < 1e-9);
        }
        // Op covering exactly the second chunk.
        let sums = chunk_volumes(&[op(25.0, 50.0, 100)], 100.0, 4);
        assert!((sums[1] - 100.0).abs() < 1e-9);
        assert!(sums[0].abs() < 1e-9 && sums[2].abs() < 1e-9);
    }

    #[test]
    fn instantaneous_op_lands_in_one_chunk() {
        let sums = chunk_volumes(&[op(99.9, 99.9, 64)], 100.0, 4);
        assert_eq!(sums[3], 64.0);
    }

    #[test]
    fn ops_outside_runtime_are_skipped() {
        // Entirely after job end: previously dumped every byte into the
        // last chunk as a bogus "instantaneous" operation.
        let sums = chunk_volumes(&[op(120.0, 130.0, 100)], 100.0, 4);
        assert!(sums.iter().all(|&s| s == 0.0), "{sums:?}");
        // Entirely before job start.
        let sums = chunk_volumes(&[op(-10.0, -1.0, 100)], 100.0, 4);
        assert!(sums.iter().all(|&s| s == 0.0), "{sums:?}");
        // Straddling the start: clamped into chunk 0, bytes conserved.
        let sums = chunk_volumes(&[op(-5.0, 5.0, 100)], 100.0, 4);
        assert!((sums[0] - 100.0).abs() < 1e-9, "{sums:?}");
    }

    #[test]
    fn insignificant_below_100mb() {
        let r = characterize(&[op(0.0, 1.0, 99 * MB)], 100.0, &cfg());
        assert_eq!(r.label, TemporalityLabel::Insignificant);
        assert!(r.confident);
        let r = characterize(&[op(0.0, 1.0, 101 * MB)], 100.0, &cfg());
        assert_ne!(r.label, TemporalityLabel::Insignificant);
    }

    #[test]
    fn on_start_and_on_end() {
        let r = characterize(&[op(1.0, 10.0, 500 * MB)], 100.0, &cfg());
        assert_eq!(r.label, TemporalityLabel::OnStart);
        let r = characterize(&[op(90.0, 99.0, 500 * MB)], 100.0, &cfg());
        assert_eq!(r.label, TemporalityLabel::OnEnd);
    }

    #[test]
    fn after_start_and_before_end() {
        let r = characterize(&[op(30.0, 45.0, 500 * MB)], 100.0, &cfg());
        assert_eq!(r.label, TemporalityLabel::AfterStart);
        let r = characterize(&[op(55.0, 70.0, 500 * MB)], 100.0, &cfg());
        assert_eq!(r.label, TemporalityLabel::BeforeEnd);
    }

    #[test]
    fn steady_when_even() {
        let ops: Vec<Operation> =
            (0..20).map(|i| op(i as f64 * 5.0, i as f64 * 5.0 + 2.0, 50 * MB)).collect();
        let r = characterize(&ops, 100.0, &cfg());
        assert_eq!(r.label, TemporalityLabel::Steady);
    }

    #[test]
    fn middle_heavy_is_after_start_before_end() {
        let r = characterize(&[op(30.0, 70.0, 900 * MB)], 100.0, &cfg());
        // Spread over chunks 1 and 2 (25–75): middle dominant.
        assert_eq!(r.label, TemporalityLabel::AfterStartBeforeEnd);
    }

    #[test]
    fn fallback_is_flagged_unconfident() {
        // Two equal bursts in first and last chunk: no single dominance, not
        // steady, middle not dominant → argmax fallback.
        let r = characterize(&[op(0.0, 10.0, 300 * MB), op(90.0, 100.0, 299 * MB)], 100.0, &cfg());
        assert!(!r.confident);
        assert_eq!(r.label, TemporalityLabel::OnStart);
    }

    #[test]
    fn dominance_respects_paper_example() {
        // Paper: "if the first chunk contains more than twice the amount of
        // bytes operated in the other segments" → read_on_start.
        let ops = vec![op(0.0, 20.0, 500 * MB), op(30.0, 100.0, 200 * MB)];
        let r = characterize(&ops, 100.0, &cfg());
        assert_eq!(r.label, TemporalityLabel::OnStart);
    }

    #[test]
    fn zero_runtime_and_empty_ops() {
        let r = characterize(&[], 100.0, &cfg());
        assert_eq!(r.label, TemporalityLabel::Insignificant);
        let sums = chunk_volumes(&[op(0.0, 1.0, 10)], 0.0, 4);
        assert!(sums.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn dominance_boundary_is_strict() {
        // Exactly 2x the other chunks is NOT dominant (paper: "more than
        // twice"); just above is.
        let ops = vec![
            op(0.0, 25.0, 400 * MB),
            op(25.0, 50.0, 200 * MB),
            op(50.0, 75.0, 200 * MB),
            op(75.0, 100.0, 200 * MB),
        ];
        let r = characterize(&ops, 100.0, &cfg());
        // Exactly 2x reaches OnStart only through the argmax fallback, so
        // the verdict is flagged low-confidence.
        assert!(!r.confident, "exactly 2x must not satisfy the dominance rule");
        let ops = vec![
            op(0.0, 25.0, 401 * MB),
            op(25.0, 50.0, 200 * MB),
            op(50.0, 75.0, 200 * MB),
            op(75.0, 100.0, 200 * MB),
        ];
        let r = characterize(&ops, 100.0, &cfg());
        assert_eq!(r.label, TemporalityLabel::OnStart);
        assert!(r.confident, "just above 2x satisfies the dominance rule");
    }

    #[test]
    fn steady_cv_boundary() {
        // Four chunks with CV just under/over 25%.
        // values (1, 1, 1, 1+d): mean = 1+d/4, cv grows with d.
        let mk = |d: u64| {
            vec![
                op(0.0, 25.0, 200 * MB),
                op(25.0, 50.0, 200 * MB),
                op(50.0, 75.0, 200 * MB),
                op(75.0, 100.0, (200 + d) * MB),
            ]
        };
        // Small imbalance: steady.
        assert_eq!(characterize(&mk(50), 100.0, &cfg()).label, TemporalityLabel::Steady);
        // Large imbalance: no longer steady.
        assert_ne!(characterize(&mk(400), 100.0, &cfg()).label, TemporalityLabel::Steady);
    }

    #[test]
    fn ops_straddling_chunk_boundaries_apportion_exactly() {
        // One op covering [20, 30): 5/10 of bytes in chunk 0, 5/10 in chunk 1.
        let sums = chunk_volumes(&[op(20.0, 30.0, 100)], 100.0, 4);
        assert!((sums[0] - 50.0).abs() < 1e-9);
        assert!((sums[1] - 50.0).abs() < 1e-9);
        let total: f64 = sums.iter().sum();
        assert!((total - 100.0).abs() < 1e-9, "bytes must be conserved");
    }

    #[test]
    fn generalized_chunk_counts() {
        let config = CategorizerConfig { chunks: 8, ..cfg() };
        let r = characterize(&[op(1.0, 10.0, 500 * MB)], 100.0, &config);
        assert_eq!(r.label, TemporalityLabel::OnStart);
        assert_eq!(r.chunk_bytes.len(), 8);
    }
}
