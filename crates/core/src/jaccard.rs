//! Jaccard co-occurrence analysis (§III-B4, Fig 5).
//!
//! For every pair of categories `(a, b)`, the Jaccard index
//! `J = |Tₐ ∩ T_b| / |Tₐ ∪ T_b|` over the sets of traces carrying each
//! category measures how systematically the two behaviours co-occur. The
//! paper uses the resulting heatmap to surface scheduler-relevant
//! correlations (e.g. *read on start* ∧ *write on end* — the classic
//! read-compute-write motif).

use crate::category::Category;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A symmetric category × category Jaccard matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JaccardMatrix {
    /// Categories present in at least one input set, sorted.
    pub categories: Vec<Category>,
    /// Row-major `categories.len()²` matrix of Jaccard indices.
    pub values: Vec<f64>,
    /// Number of traces carrying each category (diagonal support).
    pub support: Vec<usize>,
    /// Number of trace sets analyzed.
    pub n_traces: usize,
}

impl JaccardMatrix {
    /// Compute the matrix from one category set per trace.
    pub fn compute(sets: &[BTreeSet<Category>]) -> JaccardMatrix {
        let mut members: BTreeMap<Category, BTreeSet<usize>> = BTreeMap::new();
        for (i, set) in sets.iter().enumerate() {
            for &c in set {
                members.entry(c).or_default().insert(i);
            }
        }
        let categories: Vec<Category> = members.keys().copied().collect();
        let n = categories.len();
        let support: Vec<usize> = members.values().map(BTreeSet::len).collect();
        let mut values = Vec::with_capacity(n * n);
        for ta in members.values() {
            for tb in members.values() {
                let inter = ta.intersection(tb).count();
                let union = ta.union(tb).count();
                values.push(if union == 0 { 0.0 } else { inter as f64 / union as f64 });
            }
        }
        JaccardMatrix { categories, values, support, n_traces: sets.len() }
    }

    /// Jaccard index of a pair, `None` if either category never occurred.
    pub fn get(&self, a: Category, b: Category) -> Option<f64> {
        let i = self.categories.iter().position(|&c| c == a)?;
        let j = self.categories.iter().position(|&c| c == b)?;
        self.values.get(i * self.categories.len() + j).copied()
    }

    /// Conditional co-occurrence `P(b | a) = |Tₐ ∩ T_b| / |Tₐ|` — the form
    /// behind statements like "66 % of applications reading on start write
    /// on end". `None` if `a` never occurred.
    pub fn conditional(
        &self,
        sets: &[BTreeSet<Category>],
        a: Category,
        b: Category,
    ) -> Option<f64> {
        let with_a: Vec<&BTreeSet<Category>> = sets.iter().filter(|s| s.contains(&a)).collect();
        if with_a.is_empty() {
            return None;
        }
        let both = with_a.iter().filter(|s| s.contains(&b)).count();
        Some(both as f64 / with_a.len() as f64)
    }

    /// Pairs with an index of at least `threshold`, excluding the diagonal,
    /// sorted by descending index. This is the "relevant correlations" view
    /// Fig 5 plots (the paper shows values above 1 %).
    pub fn relevant_pairs(&self, threshold: f64) -> Vec<(Category, Category, f64)> {
        let n = self.categories.len();
        let mut out = Vec::new();
        for (i, &a) in self.categories.iter().enumerate() {
            for (j, &b) in self.categories.iter().enumerate().skip(i + 1) {
                let v = self.values.get(i * n + j).copied().unwrap_or(0.0);
                if v >= threshold {
                    out.push((a, b, v));
                }
            }
        }
        out.sort_by(|a, b| b.2.total_cmp(&a.2));
        out
    }

    /// Render the matrix as an aligned text heatmap (category names down the
    /// side, percentages in the cells), the terminal stand-in for Fig 5.
    pub fn render_text(&self) -> String {
        let n = self.categories.len();
        let names: Vec<String> = self.categories.iter().map(Category::name).collect();
        let width = names.iter().map(String::len).max().unwrap_or(8).max(6);
        let mut out = String::new();
        out.push_str(&format!("{:width$}  ", "", width = width));
        for j in 0..n {
            out.push_str(&format!("{:>6}", format!("[{j}]")));
        }
        out.push('\n');
        for (i, name) in names.iter().enumerate() {
            out.push_str(&format!("{name:width$}  "));
            for j in 0..n {
                let v = self.values.get(i * n + j).copied().unwrap_or(0.0);
                if v < 0.01 && i != j {
                    out.push_str(&format!("{:>6}", "."));
                } else {
                    out.push_str(&format!("{:>6.0}", v * 100.0));
                }
            }
            out.push_str(&format!("  [{i}]\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::{MetadataLabel, OpKindTag, TemporalityLabel};

    fn read_on_start() -> Category {
        Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::OnStart }
    }
    fn write_on_end() -> Category {
        Category::Temporality { kind: OpKindTag::Write, label: TemporalityLabel::OnEnd }
    }
    fn meta_spike() -> Category {
        Category::Metadata(MetadataLabel::HighSpike)
    }

    fn sets() -> Vec<BTreeSet<Category>> {
        vec![
            [read_on_start(), write_on_end()].into_iter().collect(),
            [read_on_start(), write_on_end()].into_iter().collect(),
            [read_on_start()].into_iter().collect(),
            [meta_spike()].into_iter().collect(),
        ]
    }

    #[test]
    fn jaccard_values() {
        let m = JaccardMatrix::compute(&sets());
        // read_on_start: {0,1,2}; write_on_end: {0,1} → J = 2/3.
        assert!((m.get(read_on_start(), write_on_end()).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // Disjoint pair.
        assert_eq!(m.get(read_on_start(), meta_spike()).unwrap(), 0.0);
        // Diagonal is 1.
        assert_eq!(m.get(meta_spike(), meta_spike()).unwrap(), 1.0);
        assert_eq!(m.n_traces, 4);
    }

    #[test]
    fn symmetry() {
        let m = JaccardMatrix::compute(&sets());
        let n = m.categories.len();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(m.values[i * n + j], m.values[j * n + i]);
            }
        }
    }

    #[test]
    fn conditional_probability() {
        let m = JaccardMatrix::compute(&sets());
        let s = sets();
        // P(write_on_end | read_on_start) = 2/3.
        assert!(
            (m.conditional(&s, read_on_start(), write_on_end()).unwrap() - 2.0 / 3.0).abs() < 1e-12
        );
        // P(read_on_start | write_on_end) = 1.
        assert_eq!(m.conditional(&s, write_on_end(), read_on_start()).unwrap(), 1.0);
        let absent = Category::Metadata(MetadataLabel::HighDensity);
        assert_eq!(m.conditional(&s, absent, read_on_start()), None);
    }

    #[test]
    fn relevant_pairs_sorted_and_thresholded() {
        let m = JaccardMatrix::compute(&sets());
        let pairs = m.relevant_pairs(0.5);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (read_on_start(), write_on_end()));
        let all = m.relevant_pairs(0.0);
        assert!(all.len() >= pairs.len());
        assert!(all.windows(2).all(|w| w[0].2 >= w[1].2));
    }

    #[test]
    fn support_counts() {
        let m = JaccardMatrix::compute(&sets());
        let i = m.categories.iter().position(|&c| c == read_on_start()).unwrap();
        assert_eq!(m.support[i], 3);
    }

    #[test]
    fn empty_input() {
        let m = JaccardMatrix::compute(&[]);
        assert!(m.categories.is_empty());
        assert!(m.relevant_pairs(0.0).is_empty());
        assert_eq!(m.get(read_on_start(), write_on_end()), None);
    }

    #[test]
    fn text_rendering_contains_names_and_percentages() {
        let m = JaccardMatrix::compute(&sets());
        let text = m.render_text();
        assert!(text.contains("read_on_start"));
        assert!(text.contains("metadata_high_spike"));
        assert!(text.contains("100")); // diagonal
    }
}
