//! Golden snapshots: the standard corpora's full pipeline answers, pinned
//! in committed JSON.
//!
//! Differential and metamorphic oracles prove *internal* consistency — two
//! ways of computing agree — but cannot see a change that shifts every
//! implementation at once (a threshold tweak in `core::categorize`, a new
//! eviction rule). The golden suite pins the *absolute* answer: for each
//! [`MiniCorpus`], the canonical [`ResultSnapshot`] JSON lives in
//! `tests/golden/<corpus>.json`. Any drift fails the check; intentional
//! drift is re-blessed with `mosaic verify --golden --bless` and reviewed
//! as a diff of the committed files.

use crate::VerifyReport;
use mosaic_pipeline::executor::{process, PipelineConfig};
use mosaic_pipeline::source::VecSource;
use mosaic_pipeline::ResultSnapshot;
use mosaic_synth::MiniCorpus;
use std::path::{Path, PathBuf};

/// The committed golden directory: `tests/golden/` at the repository root.
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join("tests").join("golden")
}

/// The pinned answer for one corpus, computed fresh.
pub fn snapshot_of(corpus: &MiniCorpus) -> ResultSnapshot {
    let inputs = crate::differential::inputs_of(corpus);
    ResultSnapshot::of(&process(&VecSource::new(inputs), &PipelineConfig::default()))
}

fn golden_path(dir: &Path, corpus: &MiniCorpus) -> PathBuf {
    dir.join(format!("{}.json", corpus.name()))
}

/// Compare every standard corpus against its committed snapshot.
pub fn check(dir: &Path, report: &mut VerifyReport) {
    for corpus in MiniCorpus::standard() {
        let name = format!("golden/snapshot/{}", corpus.name());
        let path = golden_path(dir, &corpus);
        let committed = match std::fs::read_to_string(&path) {
            Ok(json) => json,
            Err(err) => {
                report.check(
                    name,
                    false,
                    format!(
                        "cannot read {}: {err}\nrun `mosaic verify --golden --bless` to create it",
                        path.display()
                    ),
                );
                continue;
            }
        };
        let fresh = snapshot_of(&corpus);
        match ResultSnapshot::from_json(&committed) {
            Ok(pinned) if pinned == fresh => {
                report.check(
                    name,
                    true,
                    format!("matches {} (digest {:016x})", path.display(), fresh.digest()),
                );
            }
            Ok(pinned) => {
                report.check(
                    name,
                    false,
                    format!(
                        "categorization drifted from {}\n\
                         pinned digest {:016x}, fresh digest {:016x}\n\
                         pinned funnel {:?}\nfresh  funnel {:?}\n\
                         if the change is intentional, re-bless with \
                         `mosaic verify --golden --bless` and commit the diff",
                        path.display(),
                        pinned.digest(),
                        fresh.digest(),
                        pinned.funnel,
                        fresh.funnel
                    ),
                );
            }
            Err(err) => {
                report.check(
                    name,
                    false,
                    format!("{} is not a valid snapshot: {err}", path.display()),
                );
            }
        }
    }
}

/// Regenerate every golden file, reporting what changed.
pub fn bless(dir: &Path, report: &mut VerifyReport) {
    if let Err(err) = std::fs::create_dir_all(dir) {
        report.check("golden/bless", false, format!("cannot create {}: {err}", dir.display()));
        return;
    }
    for corpus in MiniCorpus::standard() {
        let name = format!("golden/bless/{}", corpus.name());
        let path = golden_path(dir, &corpus);
        let fresh = snapshot_of(&corpus).to_canonical_json();
        let previous = std::fs::read_to_string(&path).ok();
        match std::fs::write(&path, &fresh) {
            Ok(()) => {
                let verb = match previous {
                    Some(old) if old == fresh => "unchanged",
                    Some(_) => "updated",
                    None => "created",
                };
                report.check(name, true, format!("{verb} {}", path.display()));
            }
            Err(err) => {
                report.check(name, false, format!("cannot write {}: {err}", path.display()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_reproducible() {
        let corpus = MiniCorpus::standard().remove(0);
        let a = snapshot_of(&corpus);
        let b = snapshot_of(&corpus);
        assert_eq!(a, b);
        assert_eq!(a.to_canonical_json(), b.to_canonical_json());
    }

    #[test]
    fn bless_then_check_roundtrips() {
        let dir = std::env::temp_dir().join(format!("mosaic_golden_{}", std::process::id()));
        let mut blessing = VerifyReport::default();
        bless(&dir, &mut blessing);
        assert!(blessing.passed(), "{}", blessing.render());
        assert!(blessing.render().contains("created"));

        let mut checking = VerifyReport::default();
        check(&dir, &mut checking);
        assert!(checking.passed(), "{}", checking.render());

        // Re-blessing an up-to-date directory rewrites nothing.
        let mut again = VerifyReport::default();
        bless(&dir, &mut again);
        assert!(again.render().contains("unchanged"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_golden_file_fails_with_bless_hint() {
        let dir = std::env::temp_dir().join(format!("mosaic_golden_miss_{}", std::process::id()));
        let mut report = VerifyReport::default();
        check(&dir, &mut report);
        assert!(!report.passed());
        assert!(report.render().contains("--bless"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_golden_file_fails_with_drift_message() {
        let dir = std::env::temp_dir().join(format!("mosaic_golden_tamper_{}", std::process::id()));
        let mut blessing = VerifyReport::default();
        bless(&dir, &mut blessing);
        // Flip the pinned valid count: the check must flag drift.
        let corpus = MiniCorpus::standard().remove(0);
        let path = dir.join(format!("{}.json", corpus.name()));
        let mut pinned =
            ResultSnapshot::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        pinned.funnel.valid += 1;
        std::fs::write(&path, pinned.to_canonical_json()).unwrap();

        let mut report = VerifyReport::default();
        check(&dir, &mut report);
        assert!(!report.passed());
        assert!(report.render().contains("drifted"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
