//! Differential oracles: independent implementations of the same contract
//! must produce bit-identical results.
//!
//! Three pairings, each run over every standard mini-corpus:
//!
//! * **serial vs parallel** — the batch executor on a 1-thread pool vs
//!   2- and 4-thread pools vs Rayon's global default. Categorization is a
//!   pure per-trace function and aggregation is order-normalized, so the
//!   [`ResultSnapshot`]s must match byte-for-byte;
//! * **batch vs incremental** — the one-shot executor vs the streaming
//!   [`IncrementalAnalyzer`] fed the same traces one at a time. Both route
//!   through the same `ingest_one`, so funnel and both category
//!   distributions must agree exactly;
//! * **MDF roundtrip** — `write → parse → re-write` must be byte-stable for
//!   every parseable trace, and a pipeline fed serialized bytes must answer
//!   exactly like one fed the decoded logs;
//! * **traced vs untraced** — a run with structured span tracing enabled
//!   must snapshot byte-identically to one without: the timeline is
//!   observability, never part of the answer;
//! * **metrics on vs off** — a run with the metrics registry enabled must
//!   snapshot byte-identically to one without, and must actually attach a
//!   registry export: gauges, sketches, and eviction counters are
//!   telemetry, never part of the answer;
//! * **zero-copy vs owned** — the borrowed-view/columnar parse mode against
//!   the owned reference path, over the same wire bytes: per corpus, and
//!   once over a 2 000-trace mixed-corruption synthetic sweep. The hot-path
//!   rewrite may not move the answer by a byte.

use crate::VerifyReport;
use mosaic_darshan::mdf;
use mosaic_pipeline::executor::{process, ParseMode, PipelineConfig};
use mosaic_pipeline::source::{TraceInput, VecSource};
use mosaic_pipeline::{IncrementalAnalyzer, ResultSnapshot};
use mosaic_synth::{Dataset, DatasetConfig, MiniCorpus, Payload};

/// A corpus as pipeline inputs, decoded logs passed as logs and corrupt
/// bytes as bytes (the cheapest, most direct representation).
pub fn inputs_of(corpus: &MiniCorpus) -> Vec<TraceInput> {
    (0..corpus.len())
        .map(|i| match corpus.payload(i) {
            Payload::Log(log) => TraceInput::log(log),
            Payload::Bytes(bytes) => TraceInput::bytes(bytes),
        })
        .collect()
}

fn config(threads: Option<usize>) -> PipelineConfig {
    PipelineConfig { threads, ..Default::default() }
}

fn compare(report: &mut VerifyReport, name: String, a: &ResultSnapshot, b: &ResultSnapshot) {
    if a == b {
        report.check(name, true, format!("identical snapshots, digest {:016x}", a.digest()));
    } else {
        report.check(
            name,
            false,
            format!(
                "snapshots diverge: digest {:016x} vs {:016x}\n\
                 funnel lhs {:?}\nfunnel rhs {:?}",
                a.digest(),
                b.digest(),
                a.funnel,
                b.funnel
            ),
        );
    }
}

/// Run every differential oracle, appending one check per comparison.
pub fn run(report: &mut VerifyReport) {
    for corpus in MiniCorpus::standard() {
        let inputs = inputs_of(&corpus);
        let serial =
            ResultSnapshot::of(&process(&VecSource::new(inputs.clone()), &config(Some(1))));

        // Serial vs explicit pools vs the global default.
        for threads in [Some(2), Some(4), None] {
            let parallel =
                ResultSnapshot::of(&process(&VecSource::new(inputs.clone()), &config(threads)));
            let label = match threads {
                Some(n) => format!("{n}-threads"),
                None => "default-pool".to_owned(),
            };
            compare(
                report,
                format!("differential/serial-vs-{label}/{}", corpus.name()),
                &serial,
                &parallel,
            );
        }

        // Batch vs incremental: same traces, one at a time.
        let mut inc = IncrementalAnalyzer::new(Default::default());
        for input in inputs.clone() {
            inc.ingest(input);
        }
        let agrees = inc.funnel() == &serial.funnel
            && inc.all_runs_counts() == &serial.all_runs
            && inc.single_run_counts() == serial.single_run;
        report.check(
            format!("differential/batch-vs-incremental/{}", corpus.name()),
            agrees,
            if agrees {
                format!("funnel + both distributions agree over {} traces", corpus.len())
            } else {
                format!(
                    "streaming diverges from batch\nbatch funnel {:?}\nstream funnel {:?}",
                    serial.funnel,
                    inc.funnel()
                )
            },
        );

        // MDF write → parse → re-write byte stability.
        let mut unstable = Vec::new();
        for (i, log) in corpus.logs() {
            let first = mdf::to_bytes(&log);
            match mdf::from_bytes(&first) {
                Ok(parsed) if parsed == log && mdf::to_bytes(&parsed) == first => {}
                Ok(_) => unstable.push(format!("trace {i}: re-write not byte-identical")),
                Err(err) => unstable.push(format!("trace {i}: own output rejected: {err:?}")),
            }
        }
        report.check(
            format!("differential/mdf-roundtrip-bytes/{}", corpus.name()),
            unstable.is_empty(),
            if unstable.is_empty() {
                format!("{} logs write→parse→re-write byte-stable", corpus.logs().len())
            } else {
                unstable.join("\n")
            },
        );

        // Tracing on vs off: the snapshot may not move by a byte, and the
        // traced run must actually have produced a timeline.
        let traced_config = PipelineConfig { trace_capacity: Some(4096), ..config(Some(2)) };
        let traced_result = process(&VecSource::new(inputs.clone()), &traced_config);
        let has_timeline = traced_result.timeline.is_some();
        let traced = ResultSnapshot::of(&traced_result);
        let untraced =
            ResultSnapshot::of(&process(&VecSource::new(inputs.clone()), &config(Some(2))));
        let identical = traced.to_canonical_json() == untraced.to_canonical_json();
        report.check(
            format!("differential/traced-vs-untraced/{}", corpus.name()),
            identical && has_timeline,
            if identical && has_timeline {
                format!(
                    "snapshots byte-identical with tracing on, digest {:016x}; timeline attached",
                    traced.digest()
                )
            } else if !has_timeline {
                "tracing was requested but no timeline was attached".to_owned()
            } else {
                format!(
                    "tracing perturbed the snapshot: digest {:016x} vs {:016x}",
                    traced.digest(),
                    untraced.digest()
                )
            },
        );

        // Metrics on vs off: the snapshot may not move by a byte, and the
        // metered run must actually have exported a registry.
        let metered_config = PipelineConfig { metrics: true, ..config(Some(2)) };
        let metered_result = process(&VecSource::new(inputs.clone()), &metered_config);
        let has_registry = metered_result.registry.is_some();
        let metered = ResultSnapshot::of(&metered_result);
        let unmetered =
            ResultSnapshot::of(&process(&VecSource::new(inputs.clone()), &config(Some(2))));
        let identical = metered.to_canonical_json() == unmetered.to_canonical_json();
        report.check(
            format!("differential/metrics-on-vs-off/{}", corpus.name()),
            identical && has_registry,
            if identical && has_registry {
                format!(
                    "snapshots byte-identical with metrics on, digest {:016x}; registry exported",
                    metered.digest()
                )
            } else if !has_registry {
                "metrics were requested but no registry export was attached".to_owned()
            } else {
                format!(
                    "metrics perturbed the snapshot: digest {:016x} vs {:016x}",
                    metered.digest(),
                    unmetered.digest()
                )
            },
        );

        // A pipeline fed wire bytes answers exactly like one fed logs.
        let byte_inputs: Vec<TraceInput> =
            (0..corpus.len()).map(|i| TraceInput::bytes(corpus.mdf_bytes(i))).collect();
        let from_bytes =
            ResultSnapshot::of(&process(&VecSource::new(byte_inputs.clone()), &config(Some(2))));
        compare(
            report,
            format!("differential/log-source-vs-bytes-source/{}", corpus.name()),
            &serial,
            &from_bytes,
        );

        // Zero-copy vs owned parse mode over the same wire bytes: the
        // borrowed-view/columnar hot path against the reference owned path.
        let owned_config = PipelineConfig { parse_mode: ParseMode::Owned, ..config(Some(2)) };
        let from_owned = ResultSnapshot::of(&process(&VecSource::new(byte_inputs), &owned_config));
        compare(
            report,
            format!("differential/zerocopy-vs-owned/{}", corpus.name()),
            &from_bytes,
            &from_owned,
        );
    }

    // Zero-copy vs owned over a 2 000-trace synthetic sweep (mixed
    // corruption), byte-fed through both parse modes — the at-scale pin the
    // mini-corpora cannot give.
    let sweep =
        Dataset::new(DatasetConfig { n_traces: 2000, corruption_rate: 0.32, seed: 0xC011A9E });
    let sweep_inputs: Vec<TraceInput> = (0..sweep.len())
        .map(|i| match sweep.generate(i).payload {
            Payload::Log(log) => TraceInput::bytes(mdf::to_bytes(&log)),
            Payload::Bytes(bytes) => TraceInput::bytes(bytes),
        })
        .collect();
    let zc = ResultSnapshot::of(&process(&VecSource::new(sweep_inputs.clone()), &config(Some(2))));
    let owned_config = PipelineConfig { parse_mode: ParseMode::Owned, ..config(Some(2)) };
    let owned = ResultSnapshot::of(&process(&VecSource::new(sweep_inputs), &owned_config));
    compare(report, "differential/zerocopy-vs-owned/synthetic-2k".to_owned(), &zc, &owned);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_differential_oracles_pass() {
        let mut report = VerifyReport::default();
        run(&mut report);
        assert!(report.passed(), "{}", report.render());
        // 9 checks per corpus (3 pool comparisons, incremental, roundtrip,
        // traced-vs-untraced, metrics-on-vs-off, bytes-source,
        // zerocopy-vs-owned) × 3 corpora, plus the 2k-sweep
        // zerocopy-vs-owned check.
        assert_eq!(report.checks.len(), 28);
    }

    #[test]
    fn inputs_match_corpus_length() {
        let corpus = MiniCorpus::standard().remove(0);
        assert_eq!(inputs_of(&corpus).len(), corpus.len());
    }
}
