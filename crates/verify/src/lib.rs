//! # mosaic-verify
//!
//! The conformance harness: proves that every way of running the MOSAIC
//! pipeline gives the *same answer*, and that the answer itself has not
//! drifted. The paper validates categorization against 512 hand-labeled
//! traces; this reproduction substitutes three mechanical oracles, run over
//! seeded [`mosaic_synth::MiniCorpus`] populations:
//!
//! * [`differential`] — two implementations of the same contract must
//!   agree bit-for-bit: batch executor vs incremental analyzer, serial vs
//!   N-thread Rayon pools, and MDF write→parse→re-write roundtrips;
//! * [`metamorphic`] — transformations categorization must be blind to:
//!   global time-shift (full category set), uniform power-of-two time-scale
//!   (temporality axis), trace-order permutation (funnel, distributions and
//!   dedup winners), and corruption injection (monotone funnel: corrupted
//!   traces move to evictions, survivors' reports do not move at all);
//! * [`golden`] — committed snapshots (`tests/golden/*.json`) pin the
//!   standard corpora's full [`mosaic_pipeline::ResultSnapshot`]s; any
//!   categorization drift shows up as a snapshot diff, and intentional
//!   changes are re-blessed explicitly.
//!
//! The harness is the tier-1 gate for refactor and performance PRs: run it
//! via `mosaic verify --all`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod differential;
pub mod golden;
pub mod metamorphic;

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Outcome of one conformance check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckResult {
    /// Hierarchical check name, `suite/check/corpus`.
    pub name: String,
    /// `true` when the invariant held.
    pub passed: bool,
    /// Human-readable evidence: what was compared, and on failure, how the
    /// two sides differ.
    pub detail: String,
}

/// Aggregated harness run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Every executed check, in execution order.
    pub checks: Vec<CheckResult>,
}

impl VerifyReport {
    /// Record a check outcome.
    pub fn check(&mut self, name: impl Into<String>, passed: bool, detail: impl Into<String>) {
        self.checks.push(CheckResult { name: name.into(), passed, detail: detail.into() });
    }

    /// `true` when every check passed (an empty report passes vacuously).
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failed checks.
    pub fn failures(&self) -> Vec<&CheckResult> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Render a terminal summary: one line per check (with the first detail
    /// line inline, so e.g. a bless's created/updated/unchanged verdict is
    /// visible), failures expanded in full.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            if c.passed {
                match c.detail.lines().next().filter(|l| !l.is_empty()) {
                    Some(first) => out.push_str(&format!("PASS  {} — {first}\n", c.name)),
                    None => out.push_str(&format!("PASS  {}\n", c.name)),
                }
            } else {
                out.push_str(&format!("FAIL  {}\n", c.name));
                for line in c.detail.lines() {
                    out.push_str(&format!("      {line}\n"));
                }
            }
        }
        let failed = self.failures().len();
        out.push_str(&format!(
            "{} checks, {} passed, {} failed\n",
            self.checks.len(),
            self.checks.len() - failed,
            failed
        ));
        out
    }

    /// JSON rendering for machine consumers.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

/// Which suites to run, and how.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Run the differential oracles.
    pub differential: bool,
    /// Run the metamorphic invariants.
    pub metamorphic: bool,
    /// Run (or bless) the golden-snapshot suite.
    pub golden: bool,
    /// Regenerate golden files instead of checking them.
    pub bless: bool,
    /// Where the golden files live.
    pub golden_dir: PathBuf,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            differential: true,
            metamorphic: true,
            golden: true,
            bless: false,
            golden_dir: golden::default_dir(),
        }
    }
}

/// Run the selected suites and collect every check outcome.
pub fn run(options: &VerifyOptions) -> VerifyReport {
    let mut report = VerifyReport::default();
    if options.differential {
        differential::run(&mut report);
    }
    if options.metamorphic {
        metamorphic::run(&mut report);
    }
    if options.golden {
        if options.bless {
            golden::bless(&options.golden_dir, &mut report);
        } else {
            golden::check(&options.golden_dir, &mut report);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_bookkeeping() {
        let mut r = VerifyReport::default();
        assert!(r.passed());
        r.check("a/b", true, "ok");
        assert!(r.passed());
        r.check("a/c", false, "lhs != rhs\nsecond line");
        assert!(!r.passed());
        assert_eq!(r.failures().len(), 1);
        let text = r.render();
        assert!(text.contains("PASS  a/b"));
        assert!(text.contains("FAIL  a/c"));
        assert!(text.contains("      second line"));
        assert!(text.contains("2 checks, 1 passed, 1 failed"));
    }

    #[test]
    fn report_json_roundtrips() {
        let mut r = VerifyReport::default();
        r.check("x", true, "fine");
        let back: VerifyReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }
}
