//! Metamorphic invariants: transformations of the input that the pipeline's
//! answer must be blind to (or react to in exactly one predicted way).
//!
//! * **time-shift** — moving a job along the wallclock changes nothing the
//!   categorizer reads (all operation times are job-relative), so the full
//!   [`TraceReport`] must be bit-identical;
//! * **time-scale** — uniformly dilating the job's internal timeline by a
//!   power of two preserves every *fraction-of-runtime* quantity exactly, so
//!   the temporality axis must not move. (Periodicity-axis labels carry
//!   absolute period magnitudes — second/minute/hour — which legitimately
//!   change, so only the temporality axis is asserted.)
//! * **permutation** — the archive's ordering is an accident of time; any
//!   reordering of the source must leave the funnel, both category
//!   distributions, and every dedup winner's `(uid, app, weight)` unchanged;
//! * **corrupt-monotone** — corrupting a chosen subset of traces may only
//!   move *those* traces into the evictions: totals hold, the valid count
//!   drops by exactly the subset size, and every survivor's report is
//!   byte-identical to its uncorrupted baseline.

use crate::differential::inputs_of;
use crate::VerifyReport;
use mosaic_core::category::CategoryAxis;
use mosaic_core::{Categorizer, TraceReport};
use mosaic_darshan::transform::{scale_time, shift_time};
use mosaic_darshan::{validate, TraceLog};
use mosaic_pipeline::executor::{process, PipelineConfig, PipelineResult};
use mosaic_pipeline::source::{TraceInput, VecSource};
use mosaic_synth::corrupt::{corrupt_as, CorruptArtifact, CorruptionKind};
use mosaic_synth::MiniCorpus;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// The corpus logs the categorizer-level invariants run on: parseable and
/// cleanly valid, i.e. exactly what the pipeline would categorize unchanged.
fn clean_logs(corpus: &MiniCorpus) -> Vec<(usize, TraceLog)> {
    corpus.logs().into_iter().filter(|(_, log)| validate::validate(log).is_clean()).collect()
}

fn run_pipeline(inputs: Vec<TraceInput>) -> PipelineResult {
    process(&VecSource::new(inputs), &PipelineConfig::default())
}

fn shift_check(report: &mut VerifyReport, corpus: &MiniCorpus, categorizer: &Categorizer) {
    let mut broken = Vec::new();
    let logs = clean_logs(corpus);
    for (i, log) in &logs {
        let base = categorizer.categorize_log(log);
        for delta in [86_400i64, -3_600] {
            let shifted = categorizer.categorize_log(&shift_time(log, delta));
            if shifted != base {
                broken.push(format!("trace {i}: report moved under shift {delta:+}s"));
            }
        }
    }
    report.check(
        format!("metamorphic/time-shift/{}", corpus.name()),
        broken.is_empty(),
        if broken.is_empty() {
            format!("{} clean logs invariant under ±wallclock shifts", logs.len())
        } else {
            broken.join("\n")
        },
    );
}

fn scale_check(report: &mut VerifyReport, corpus: &MiniCorpus, categorizer: &Categorizer) {
    let mut broken = Vec::new();
    let logs = clean_logs(corpus);
    for (i, log) in &logs {
        let base = categorizer.categorize_log(log).categories_on(CategoryAxis::Temporality);
        for factor in [2.0, 4.0] {
            let scaled = categorizer
                .categorize_log(&scale_time(log, factor))
                .categories_on(CategoryAxis::Temporality);
            if scaled != base {
                broken.push(format!(
                    "trace {i}: temporality moved under x{factor} scale: {base:?} -> {scaled:?}"
                ));
            }
        }
    }
    report.check(
        format!("metamorphic/time-scale/{}", corpus.name()),
        broken.is_empty(),
        if broken.is_empty() {
            format!("{} clean logs temporality-invariant under power-of-two scales", logs.len())
        } else {
            broken.join("\n")
        },
    );
}

/// The order-independent core of a result: funnel, both distributions, and
/// the dedup winners reduced to `(uid, app, weight)` (a tie between
/// equal-weight runs may legitimately crown a different index).
fn order_free_view(result: &PipelineResult) -> impl PartialEq + std::fmt::Debug {
    let winners: Vec<(u32, String, i64)> = {
        let mut v: Vec<_> = result
            .representatives()
            .map(|o| (o.app_key.0, o.app_key.1.clone(), o.weight))
            .collect();
        v.sort();
        v
    };
    (result.funnel.clone(), result.all_runs_counts(), result.single_run_counts(), winners)
}

fn permutation_check(report: &mut VerifyReport, corpus: &MiniCorpus) {
    let inputs = inputs_of(corpus);
    let base = order_free_view(&run_pipeline(inputs.clone()));

    let reversed: Vec<TraceInput> = inputs.iter().rev().cloned().collect();
    // A stride walk: 7 is coprime with the corpus sizes, so this visits
    // every index exactly once in a thoroughly shuffled order.
    let n = inputs.len();
    let strided: Vec<TraceInput> = (0..n).map(|i| inputs[(i * 7) % n].clone()).collect();

    for (label, permuted) in [("reversed", reversed), ("strided", strided)] {
        let view = order_free_view(&run_pipeline(permuted));
        let passed = view == base;
        report.check(
            format!("metamorphic/permutation-{label}/{}", corpus.name()),
            passed,
            if passed {
                format!("funnel, distributions and dedup winners stable over {n} traces")
            } else {
                format!("order-free views diverge\nbase {base:?}\npermuted {view:?}")
            },
        );
    }
}

fn corrupt_monotone_check(report: &mut VerifyReport, corpus: &MiniCorpus) {
    let baseline = run_pipeline(inputs_of(corpus));
    let baseline_reports: BTreeMap<usize, &TraceReport> =
        baseline.outcomes.iter().map(|o| (o.index, &o.report)).collect();

    // Corrupt every 5th cleanly-valid trace, cycling the corruption kinds.
    let clean: BTreeMap<usize, TraceLog> = clean_logs(corpus).into_iter().collect();
    let mut corrupted = Vec::new();
    let mut inputs = inputs_of(corpus);
    for (slot, (&i, log)) in clean.iter().enumerate() {
        if slot % 5 != 0 {
            continue;
        }
        let kind = CorruptionKind::ALL[slot / 5 % CorruptionKind::ALL.len()];
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0FF_EE00 ^ i as u64);
        inputs[i] = match corrupt_as(log.clone(), kind, &mut rng) {
            CorruptArtifact::Bytes(bytes) => TraceInput::bytes(bytes),
            CorruptArtifact::Log(log) => TraceInput::log(log),
        };
        corrupted.push(i);
    }

    let after = run_pipeline(inputs);
    let mut problems = Vec::new();
    if after.funnel.total != baseline.funnel.total {
        problems.push(format!("total moved: {} -> {}", baseline.funnel.total, after.funnel.total));
    }
    if after.funnel.valid != baseline.funnel.valid - corrupted.len() {
        problems.push(format!(
            "valid should drop by exactly {}: {} -> {}",
            corrupted.len(),
            baseline.funnel.valid,
            after.funnel.valid
        ));
    }
    if after.funnel.evicted() != baseline.funnel.evicted() + corrupted.len() {
        problems.push("evictions did not absorb exactly the corrupted set".to_owned());
    }
    if after.funnel.by_reason.values().sum::<usize>() != after.funnel.evicted() {
        problems.push("by_reason no longer sums to evictions".to_owned());
    }
    for outcome in &after.outcomes {
        if corrupted.contains(&outcome.index) {
            problems.push(format!("corrupted trace {} survived the funnel", outcome.index));
        } else if baseline_reports.get(&outcome.index) != Some(&&outcome.report) {
            problems.push(format!("survivor {}'s report moved", outcome.index));
        }
    }
    if after.outcomes.len() != baseline.outcomes.len() - corrupted.len() {
        problems.push("survivor count inconsistent with corrupted set".to_owned());
    }

    report.check(
        format!("metamorphic/corrupt-monotone/{}", corpus.name()),
        problems.is_empty(),
        if problems.is_empty() {
            format!(
                "{} injected corruptions moved exactly themselves into evictions; \
                 {} survivors byte-identical",
                corrupted.len(),
                after.outcomes.len()
            )
        } else {
            problems.join("\n")
        },
    );
}

/// Run every metamorphic invariant, appending one check per invariant per
/// corpus.
pub fn run(report: &mut VerifyReport) {
    let categorizer = Categorizer::default();
    for corpus in MiniCorpus::standard() {
        shift_check(report, &corpus, &categorizer);
        scale_check(report, &corpus, &categorizer);
        permutation_check(report, &corpus);
        corrupt_monotone_check(report, &corpus);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metamorphic_invariants_hold() {
        let mut report = VerifyReport::default();
        run(&mut report);
        assert!(report.passed(), "{}", report.render());
        // 5 checks per corpus (shift, scale, 2 permutations, corrupt).
        assert_eq!(report.checks.len(), 15);
    }

    #[test]
    fn clean_logs_are_a_subset_of_parseable_logs() {
        let corpus = MiniCorpus::standard().remove(1);
        let clean = clean_logs(&corpus);
        assert!(!clean.is_empty());
        assert!(clean.len() <= corpus.logs().len());
    }
}
