//! Direct trace builders: archetype + seeded RNG → `TraceLog` + ground truth.
//!
//! Builders construct Darshan-shaped records (aggregated intervals, open
//! bursts) whose *intended* behaviour is known exactly. Temporality and
//! periodicity truths come from the construction; the metadata truth is
//! computed by running the (deterministic, lossless) metadata
//! characterization on the events actually injected, so it is exact by
//! definition under the default thresholds.
//!
//! The [`Archetype::HardUneven`] builder deliberately produces traces whose
//! Darshan-level evidence *misleads* uniform byte apportioning — the
//! paper's stated source of its ≈8 % misclassifications: the real activity
//! is concentrated at the start of a long-lived open/close interval, but
//! the trace only shows the smeared interval.

use crate::archetype::Archetype;
use crate::truth::GroundTruth;
use mosaic_core::category::{PeriodMagnitude, TemporalityLabel};
use mosaic_core::CategorizerConfig;
use mosaic_darshan::counter::PosixCounter as C;
use mosaic_darshan::counter::PosixFCounter as F;
use mosaic_darshan::job::JobHeader;
use mosaic_darshan::log::TraceLogBuilder;
use mosaic_darshan::ops::OperationView;
use mosaic_darshan::record::SHARED_RANK;
use mosaic_darshan::TraceLog;
use rand::Rng;

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// Everything fixed about a run before the builder rolls its dice.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Behaviour to generate.
    pub archetype: Archetype,
    /// Scheduler job id recorded in the header.
    pub job_id: u64,
    /// Owning user.
    pub uid: u32,
    /// Rank count (stable per application).
    pub nprocs: u32,
    /// Nominal runtime in seconds (each run jitters ±20 %).
    pub base_runtime: f64,
    /// Job start, Unix seconds.
    pub start_epoch: i64,
    /// Executable line.
    pub exe: String,
}

/// Log-uniform sample in `[lo, hi]`.
pub fn log_uniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi >= lo);
    (rng.gen_range(lo.ln()..=hi.ln())).exp()
}

/// Internal sketch: a `TraceLogBuilder` plus the runtime bound, with helpers
/// that keep every timestamp inside the job and every counter consistent
/// with the validator's rules.
struct Sketch {
    builder: TraceLogBuilder,
    runtime: f64,
    nprocs: u32,
}

impl Sketch {
    fn new(spec: &RunSpec, runtime: f64) -> Sketch {
        let header = JobHeader::new(
            spec.job_id,
            spec.uid,
            spec.nprocs,
            spec.start_epoch,
            spec.start_epoch + runtime.ceil() as i64,
        )
        .with_exe(spec.exe.clone());
        Sketch { builder: TraceLogBuilder::new(header), runtime, nprocs: spec.nprocs }
    }

    fn clamp(&self, t: f64) -> f64 {
        t.clamp(0.0, self.runtime)
    }

    /// A shared (rank −1) record reading `bytes` over `[start, end]`, opened
    /// by every rank at `start` (with `seeks_per_rank` co-located seeks) and
    /// closed at `end`.
    fn shared_read(&mut self, path: &str, start: f64, end: f64, bytes: u64, seeks_per_rank: u32) {
        let (start, end) = (self.clamp(start), self.clamp(end).max(self.clamp(start)));
        let n = self.nprocs as i64;
        let h = self.builder.begin_record(path, SHARED_RANK);
        self.builder
            .record_mut(h)
            .set(C::Opens, n)
            .set(C::Closes, n)
            .set(C::Seeks, n * seeks_per_rank as i64)
            .set(C::Reads, (n * 8).max(1))
            .set(C::BytesRead, bytes as i64)
            .set(C::SeqReads, (n * 8).max(1))
            .set(C::MaxByteRead, bytes.saturating_sub(1) as i64)
            .setf(F::OpenStartTimestamp, start)
            .setf(F::OpenEndTimestamp, start)
            .setf(F::ReadStartTimestamp, start)
            .setf(F::ReadEndTimestamp, end)
            .setf(F::CloseStartTimestamp, end)
            .setf(F::CloseEndTimestamp, end)
            .setf(F::ReadTime, (end - start) * 0.8);
    }

    /// A shared record writing `bytes` over `[start, end]`.
    fn shared_write(&mut self, path: &str, start: f64, end: f64, bytes: u64, seeks_per_rank: u32) {
        let (start, end) = (self.clamp(start), self.clamp(end).max(self.clamp(start)));
        let n = self.nprocs as i64;
        let h = self.builder.begin_record(path, SHARED_RANK);
        self.builder
            .record_mut(h)
            .set(C::Opens, n)
            .set(C::Closes, n)
            .set(C::Seeks, n * seeks_per_rank as i64)
            .set(C::Writes, (n * 8).max(1))
            .set(C::BytesWritten, bytes as i64)
            .set(C::SeqWrites, (n * 8).max(1))
            .set(C::MaxByteWritten, bytes.saturating_sub(1) as i64)
            .setf(F::OpenStartTimestamp, start)
            .setf(F::OpenEndTimestamp, start)
            .setf(F::WriteStartTimestamp, start)
            .setf(F::WriteEndTimestamp, end)
            .setf(F::CloseStartTimestamp, end)
            .setf(F::CloseEndTimestamp, end)
            .setf(F::WriteTime, (end - start) * 0.8);
    }

    /// A rank-0-only record (config files, logs): one open, tiny data, so a
    /// quiet app's metadata stays below the rank-count threshold.
    fn solo_read(&mut self, path: &str, start: f64, end: f64, bytes: u64) {
        let (start, end) = (self.clamp(start), self.clamp(end).max(self.clamp(start)));
        let h = self.builder.begin_record(path, 0);
        self.builder
            .record_mut(h)
            .set(C::Opens, 1)
            .set(C::Closes, 1)
            .set(C::Reads, 4)
            .set(C::BytesRead, bytes as i64)
            .set(C::SeqReads, 4)
            .setf(F::OpenStartTimestamp, start)
            .setf(F::OpenEndTimestamp, start)
            .setf(F::ReadStartTimestamp, start)
            .setf(F::ReadEndTimestamp, end)
            .setf(F::CloseStartTimestamp, end)
            .setf(F::CloseEndTimestamp, end);
    }

    /// A rank-0-only write record.
    fn solo_write(&mut self, path: &str, start: f64, end: f64, bytes: u64) {
        let (start, end) = (self.clamp(start), self.clamp(end).max(self.clamp(start)));
        let h = self.builder.begin_record(path, 0);
        self.builder
            .record_mut(h)
            .set(C::Opens, 1)
            .set(C::Closes, 1)
            .set(C::Writes, 4)
            .set(C::BytesWritten, bytes as i64)
            .set(C::SeqWrites, 4)
            .setf(F::OpenStartTimestamp, start)
            .setf(F::OpenEndTimestamp, start)
            .setf(F::WriteStartTimestamp, start)
            .setf(F::WriteEndTimestamp, end)
            .setf(F::CloseStartTimestamp, end)
            .setf(F::CloseEndTimestamp, end);
    }

    /// A metadata-only burst: `opens` opens (plus seeks) at `t`, closes at
    /// `t + 1`. No data movement.
    fn meta_burst(&mut self, path: &str, t: f64, opens: i64, seeks: i64) {
        let t = self.clamp(t);
        let t_close = self.clamp(t + 1.0);
        let h = self.builder.begin_record(path, SHARED_RANK);
        self.builder
            .record_mut(h)
            .set(C::Opens, opens)
            .set(C::Closes, opens)
            .set(C::Seeks, seeks)
            .setf(F::OpenStartTimestamp, t)
            .setf(F::OpenEndTimestamp, t)
            .setf(F::CloseStartTimestamp, t_close)
            .setf(F::CloseEndTimestamp, t_close)
            .setf(F::MetaTime, 0.1);
    }

    fn finish(self) -> TraceLog {
        self.builder.finish()
    }
}

/// Build one run: the trace and its ground truth.
pub fn build_run<R: Rng>(spec: &RunSpec, rng: &mut R) -> (TraceLog, GroundTruth) {
    let mut runtime = spec.base_runtime * rng.gen_range(0.8..1.2);
    // Checkpointers plan period-first so detected periods span the paper's
    // "between a few minutes and a few hours" range (Table II): the period
    // is drawn log-uniformly and the runtime derived from it.
    let ckpt_plan =
        if matches!(spec.archetype, Archetype::CheckpointerRead | Archetype::CheckpointerQuiet) {
            let period = log_uniform(rng, 90.0, 7200.0);
            let rounds = rng.gen_range(12..=24u32);
            runtime = period * rounds as f64;
            Some((period, rounds))
        } else {
            None
        };
    // Metadata storms are short ensemble jobs: a compressed runtime keeps
    // the *mean* request rate high enough for the high_density category
    // (≥ 50 req/s over the whole execution), as Fig 4 requires.
    if spec.archetype == Archetype::MetadataStorm {
        runtime = rng.gen_range(180.0..900.0);
    }
    let mut sketch = Sketch::new(spec, runtime);
    let mut truth = GroundTruth::quiet();

    match spec.archetype {
        Archetype::Quiet => build_quiet(&mut sketch, rng, runtime),
        Archetype::ReadStartOnly => {
            read_on_start(&mut sketch, rng, runtime);
            truth.read_temporality = TemporalityLabel::OnStart;
            build_quiet_writes(&mut sketch, rng, runtime);
        }
        Archetype::ReadComputeWrite => {
            read_on_start(&mut sketch, rng, runtime);
            write_on_end(&mut sketch, rng, runtime);
            truth.read_temporality = TemporalityLabel::OnStart;
            truth.write_temporality = TemporalityLabel::OnEnd;
        }
        Archetype::WriteEndOnly => {
            write_on_end(&mut sketch, rng, runtime);
            truth.write_temporality = TemporalityLabel::OnEnd;
            build_quiet_reads(&mut sketch, rng, runtime);
        }
        Archetype::SteadyReadWrite => {
            steady_stream(&mut sketch, rng, runtime, true);
            steady_stream(&mut sketch, rng, runtime, false);
            staggered_meta(&mut sketch, rng, runtime);
            truth.read_temporality = TemporalityLabel::Steady;
            truth.write_temporality = TemporalityLabel::Steady;
        }
        Archetype::SteadyWriter => {
            steady_stream(&mut sketch, rng, runtime, false);
            staggered_meta(&mut sketch, rng, runtime);
            truth.write_temporality = TemporalityLabel::Steady;
            build_quiet_reads(&mut sketch, rng, runtime);
        }
        Archetype::CheckpointerRead | Archetype::CheckpointerQuiet => {
            let (period, rounds) = ckpt_plan.expect("planned above");
            let magnitude = checkpoints(&mut sketch, rng, period, rounds);
            truth.write_temporality = TemporalityLabel::Steady;
            truth.write_periodic = Some(magnitude);
            if spec.archetype == Archetype::CheckpointerRead {
                read_on_start(&mut sketch, rng, runtime);
                truth.read_temporality = TemporalityLabel::OnStart;
            } else {
                build_quiet_reads(&mut sketch, rng, runtime);
            }
        }
        Archetype::PeriodicReader => {
            let magnitude = periodic_reads(&mut sketch, rng, runtime);
            truth.read_temporality = TemporalityLabel::Steady;
            truth.read_periodic = Some(magnitude);
            build_quiet_writes(&mut sketch, rng, runtime);
        }
        Archetype::MetadataStorm => {
            metadata_storm(&mut sketch, rng, runtime);
            // Many storms are ensemble pipelines that also slurp input on
            // start — the §IV-D correlation between metadata density and
            // read_on_start.
            if rng.gen_bool(0.4) {
                read_on_start(&mut sketch, rng, runtime);
                truth.read_temporality = TemporalityLabel::OnStart;
            } else {
                build_quiet_reads(&mut sketch, rng, runtime);
            }
            build_quiet_writes(&mut sketch, rng, runtime);
        }
        Archetype::MidBurst => {
            let label = mid_burst(&mut sketch, rng, runtime);
            truth.read_temporality = label;
            build_quiet_writes(&mut sketch, rng, runtime);
        }
        Archetype::HardUneven => {
            truth.read_temporality = hard_uneven(&mut sketch, rng, runtime);
            build_quiet_writes(&mut sketch, rng, runtime);
        }
    }

    let log = sketch.finish();
    // Metadata truth is exact by construction: the characterization is a
    // deterministic function of the events we just injected.
    let view = OperationView::from_log(&log);
    let meta = mosaic_core::metadata::characterize(
        &view.meta,
        view.runtime,
        view.nprocs,
        &CategorizerConfig::default(),
    );
    truth.metadata = meta.labels.iter().copied().collect();
    (log, truth)
}

// ---- per-archetype pieces -------------------------------------------------

fn build_quiet<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64) {
    build_quiet_reads(sketch, rng, runtime);
    build_quiet_writes(sketch, rng, runtime);
}

/// Insignificant reads: a handful of MB (libraries, config files) touched by
/// rank 0 only — well below the 100 MB threshold, and below the rank count
/// in metadata requests.
fn build_quiet_reads<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64) {
    let files = rng.gen_range(1..=3);
    for i in 0..files {
        let t = rng.gen_range(0.0..runtime * 0.2);
        let bytes = rng.gen_range(64 * 1024..=8 * MB);
        sketch.solo_read(&format!("/sw/lib/conf.{i}"), t, t + 0.5, bytes);
    }
}

/// Insignificant writes: a rank-0 log file, a few MB.
fn build_quiet_writes<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64) {
    let t = rng.gen_range(0.0..runtime * 0.9);
    let bytes = rng.gen_range(16 * 1024..=4 * MB);
    sketch.solo_write("/scratch/job.log", t, (t + 1.0).min(runtime), bytes);
}

/// Significant read fully inside the first quarter.
fn read_on_start<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64) {
    let start = rng.gen_range(0.0..runtime * 0.02);
    let end = start + rng.gen_range(0.02f64..0.15) * runtime;
    let bytes = log_uniform(rng, 0.2 * GB as f64, 20.0 * GB as f64) as u64;
    sketch.shared_read("/scratch/input/mesh.dat", start, end.min(runtime * 0.22), bytes, 2);
}

/// Significant write fully inside the last quarter.
fn write_on_end<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64) {
    let end = runtime * rng.gen_range(0.96..0.995);
    let start = (runtime * 0.80).max(end - rng.gen_range(0.02..0.15) * runtime);
    let bytes = log_uniform(rng, 0.2 * GB as f64, 10.0 * GB as f64) as u64;
    sketch.shared_write("/scratch/output/result.h5", start, end, bytes, 1);
}

/// A single file held open the whole run: one aggregated interval covering
/// ~everything — exactly what Darshan reports for steady streamers, and why
/// §IV-A suspects many `steady` traces hide periodic behaviour.
fn steady_stream<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64, read: bool) {
    let start = rng.gen_range(0.0..runtime * 0.01);
    let end = runtime * rng.gen_range(0.985..1.0);
    let bytes = log_uniform(rng, 0.5 * GB as f64, 40.0 * GB as f64) as u64;
    if read {
        sketch.shared_read("/scratch/stream/in.dat", start, end, bytes, 4);
    } else {
        sketch.shared_write("/scratch/stream/out.dat", start, end, bytes, 4);
    }
}

/// Scratch files opened by every rank at staggered times: visible metadata
/// spikes for long-lived production apps. Each rank touches a small set of
/// per-rank temporaries per phase, so mid-size jobs (not just 128+-rank
/// ones) drive the MDS past the high-spike threshold — matching Fig 4,
/// where `high_spike` is the most represented metadata category.
fn staggered_meta<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64) {
    let bursts = rng.gen_range(6..=12);
    for b in 0..bursts {
        let t = runtime * (b as f64 + 0.5) / bursts as f64;
        let files_per_rank = rng.gen_range(2i64..=6);
        let opens = sketch.nprocs as i64 * files_per_rank;
        sketch.meta_burst(&format!("/scratch/tmp/part.{b}"), t, opens, opens);
    }
}

/// Periodic checkpoint dumps: a fresh shared file per round, evenly spaced
/// with the planned period. Returns the period magnitude for the truth
/// record.
fn checkpoints<R: Rng>(
    sketch: &mut Sketch,
    rng: &mut R,
    period: f64,
    rounds: u32,
) -> PeriodMagnitude {
    let bytes = log_uniform(rng, 0.15 * GB as f64, 4.0 * GB as f64) as u64;
    let busy = rng.gen_range(0.01..0.12);
    for i in 0..rounds {
        let t = period * (i as f64 + 0.3);
        sketch.shared_write(&format!("/scratch/ckpt/dump.{i:04}"), t, t + period * busy, bytes, 1);
    }
    PeriodMagnitude::of(period)
}

/// Periodic small reads on fresh reference chunks.
fn periodic_reads<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64) -> PeriodMagnitude {
    let rounds = rng.gen_range(20..=60);
    let period = runtime / rounds as f64;
    // Keep total volume clearly significant.
    let bytes = rng.gen_range(8 * MB..=64 * MB).max((150 * MB) / rounds as u64 + MB);
    let busy = rng.gen_range(0.02..0.15);
    for i in 0..rounds {
        let t = period * (i as f64 + 0.2);
        sketch.shared_read(&format!("/scratch/ref/chunk.{i:04}"), t, t + period * busy, bytes, 1);
    }
    PeriodMagnitude::of(period)
}

/// Metadata storm: bursts of hundreds-to-thousands of opens with trivial
/// data volume.
fn metadata_storm<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64) {
    let bursts = rng.gen_range(8..=30);
    for b in 0..bursts {
        let t = runtime * rng.gen_range(0.02..0.98);
        let opens = rng.gen_range(600..=3000);
        sketch.meta_burst(&format!("/scratch/many/f.{b}"), t, opens, opens / 2);
    }
}

/// One burst in the middle of the run; the returned label is both the truth
/// and (barring edge effects) the detected category.
fn mid_burst<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64) -> TemporalityLabel {
    let bytes = log_uniform(rng, 0.2 * GB as f64, 5.0 * GB as f64) as u64;
    match rng.gen_range(0..3u32) {
        0 => {
            // Fully inside the second quarter.
            let start = runtime * rng.gen_range(0.27..0.35);
            let end = runtime * rng.gen_range(0.38..0.48);
            sketch.shared_read("/scratch/phase/mid.dat", start, end, bytes, 1);
            TemporalityLabel::AfterStart
        }
        1 => {
            // Fully inside the third quarter.
            let start = runtime * rng.gen_range(0.52..0.60);
            let end = runtime * rng.gen_range(0.63..0.73);
            sketch.shared_read("/scratch/phase/mid.dat", start, end, bytes, 1);
            TemporalityLabel::BeforeEnd
        }
        _ => {
            // Spanning both middle quarters.
            let start = runtime * rng.gen_range(0.27..0.32);
            let end = runtime * rng.gen_range(0.68..0.73);
            sketch.shared_read("/scratch/phase/mid.dat", start, end, bytes, 1);
            TemporalityLabel::AfterStartBeforeEnd
        }
    }
}

/// The deliberately ambiguous case: the application really reads everything
/// right after start, but holds the file open far longer, so the single
/// Darshan interval smears the bytes across several chunks. Truth is
/// `OnStart`; uniform apportioning usually lands on `steady` or a fallback
/// label instead.
fn hard_uneven<R: Rng>(sketch: &mut Sketch, rng: &mut R, runtime: f64) -> TemporalityLabel {
    let bytes = log_uniform(rng, 0.3 * GB as f64, 8.0 * GB as f64) as u64;
    let start = runtime * rng.gen_range(0.0..0.03);
    // How far the open/close interval stretches decides what the detector
    // sees: nearly the whole run → steady; about half → fallback labels.
    let stretch =
        if rng.gen_bool(0.65) { rng.gen_range(0.90..0.99) } else { rng.gen_range(0.45..0.60) };
    let end = runtime * stretch;
    sketch.shared_read("/scratch/input/big_then_idle.dat", start, end, bytes, 2);
    TemporalityLabel::OnStart
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_core::Categorizer;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spec(archetype: Archetype) -> RunSpec {
        RunSpec {
            archetype,
            job_id: 1,
            uid: 100,
            nprocs: 128,
            base_runtime: 7200.0,
            start_epoch: 1_546_300_800,
            exe: "/apps/test/app --input x".to_owned(),
        }
    }

    fn build(archetype: Archetype, seed: u64) -> (TraceLog, GroundTruth) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        build_run(&spec(archetype), &mut rng)
    }

    #[test]
    fn all_archetypes_produce_valid_traces() {
        for archetype in [
            Archetype::Quiet,
            Archetype::ReadStartOnly,
            Archetype::ReadComputeWrite,
            Archetype::WriteEndOnly,
            Archetype::SteadyReadWrite,
            Archetype::SteadyWriter,
            Archetype::CheckpointerRead,
            Archetype::CheckpointerQuiet,
            Archetype::PeriodicReader,
            Archetype::MetadataStorm,
            Archetype::MidBurst,
            Archetype::HardUneven,
        ] {
            for seed in 0..5 {
                let (log, _) = build(archetype, seed);
                let report = mosaic_darshan::validate::validate(&log);
                assert!(report.is_clean(), "{archetype:?} seed {seed}: {report:?}");
            }
        }
    }

    #[test]
    fn quiet_matches_truth() {
        for seed in 0..10 {
            let (log, truth) = build(Archetype::Quiet, seed);
            let report = Categorizer::default().categorize_log(&log);
            assert!(truth.matches(&report), "seed {seed}: {:?}", truth.mismatches(&report));
        }
    }

    #[test]
    fn read_compute_write_matches_truth() {
        let mut ok = 0;
        for seed in 0..20 {
            let (log, truth) = build(Archetype::ReadComputeWrite, seed);
            let report = Categorizer::default().categorize_log(&log);
            if truth.matches(&report) {
                ok += 1;
            }
        }
        assert!(ok >= 18, "only {ok}/20 matched");
    }

    #[test]
    fn checkpointer_is_detected_periodic() {
        let mut ok = 0;
        for seed in 0..20 {
            let (log, truth) = build(Archetype::CheckpointerQuiet, seed);
            assert!(truth.write_periodic.is_some());
            let report = Categorizer::default().categorize_log(&log);
            if truth.matches(&report) {
                ok += 1;
            }
        }
        assert!(ok >= 15, "only {ok}/20 matched");
    }

    #[test]
    fn periodic_reader_is_detected() {
        let mut ok = 0;
        for seed in 0..20 {
            let (log, truth) = build(Archetype::PeriodicReader, seed);
            assert!(truth.read_periodic.is_some());
            let report = Categorizer::default().categorize_log(&log);
            if truth.matches(&report) {
                ok += 1;
            }
        }
        assert!(ok >= 14, "only {ok}/20 matched");
    }

    #[test]
    fn hard_uneven_usually_fools_the_detector() {
        let mut fooled = 0;
        for seed in 0..30 {
            let (log, truth) = build(Archetype::HardUneven, seed);
            assert_eq!(truth.read_temporality, TemporalityLabel::OnStart);
            let report = Categorizer::default().categorize_log(&log);
            if !truth.matches(&report) {
                fooled += 1;
            }
        }
        assert!(
            (15..=30).contains(&fooled),
            "expected most hard cases to misclassify, got {fooled}/30"
        );
    }

    #[test]
    fn metadata_storm_spikes() {
        let (log, truth) = build(Archetype::MetadataStorm, 3);
        use mosaic_core::category::MetadataLabel;
        assert!(truth.metadata.contains(&MetadataLabel::HighSpike));
        let report = Categorizer::default().categorize_log(&log);
        assert!(truth.matches(&report), "{:?}", truth.mismatches(&report));
    }

    #[test]
    fn builders_are_deterministic() {
        let a = build(Archetype::ReadComputeWrite, 42);
        let b = build(Archetype::ReadComputeWrite, 42);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn log_uniform_stays_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let v = log_uniform(&mut rng, 10.0, 1000.0);
            assert!((10.0..=1000.0).contains(&v));
        }
    }

    #[test]
    fn truth_table_matches_archetype_intent() {
        // Locks in each archetype's intended ground-truth shape; a builder
        // change that silently shifts an archetype's meaning fails here.
        use Archetype::*;
        use TemporalityLabel as T;
        let cases: Vec<(Archetype, T, T, bool, bool)> = vec![
            // (archetype, read temporality, write temporality,
            //  read periodic?, write periodic?)
            (Quiet, T::Insignificant, T::Insignificant, false, false),
            (ReadStartOnly, T::OnStart, T::Insignificant, false, false),
            (ReadComputeWrite, T::OnStart, T::OnEnd, false, false),
            (WriteEndOnly, T::Insignificant, T::OnEnd, false, false),
            (SteadyReadWrite, T::Steady, T::Steady, false, false),
            (SteadyWriter, T::Insignificant, T::Steady, false, false),
            (CheckpointerRead, T::OnStart, T::Steady, false, true),
            (CheckpointerQuiet, T::Insignificant, T::Steady, false, true),
            (PeriodicReader, T::Steady, T::Insignificant, true, false),
            (MidBurst, T::AfterStart, T::Insignificant, false, false), // or Before/Middle
            (HardUneven, T::OnStart, T::Insignificant, false, false),
        ];
        for (archetype, read_t, write_t, read_p, write_p) in cases {
            let (_, truth) = build(archetype, 11);
            if archetype != MidBurst {
                assert_eq!(truth.read_temporality, read_t, "{archetype:?} read");
            } else {
                assert!(
                    matches!(
                        truth.read_temporality,
                        T::AfterStart | T::BeforeEnd | T::AfterStartBeforeEnd
                    ),
                    "{archetype:?} read = {:?}",
                    truth.read_temporality
                );
            }
            assert_eq!(truth.write_temporality, write_t, "{archetype:?} write");
            assert_eq!(truth.read_periodic.is_some(), read_p, "{archetype:?} read periodic");
            assert_eq!(truth.write_periodic.is_some(), write_p, "{archetype:?} write periodic");
        }
        // MetadataStorm truth varies (40% read on start); check metadata.
        let (_, truth) = build(MetadataStorm, 11);
        use mosaic_core::category::MetadataLabel;
        assert!(truth.metadata.contains(&MetadataLabel::HighSpike));
    }

    #[test]
    fn mid_burst_label_is_detected() {
        let mut ok = 0;
        for seed in 0..20 {
            let (log, truth) = build(Archetype::MidBurst, seed);
            let report = Categorizer::default().categorize_log(&log);
            if report.read.temporality.label == truth.read_temporality {
                ok += 1;
            }
        }
        assert!(ok >= 16, "only {ok}/20 mid-burst labels detected");
    }
}
