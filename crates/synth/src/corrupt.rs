//! Corruption injectors for the pre-processing funnel (Fig 3: 32 % of Blue
//! Waters traces were corrupted and evicted).
//!
//! Two families, matching the two eviction paths in
//! [`mosaic_darshan::validate`]:
//!
//! * **format corruption** — the MDF bytes no longer decode (truncation,
//!   bit-rot, clobbered magic);
//! * **semantic corruption** — the log decodes but is fatally invalid
//!   (every record deallocated before the application's end — the paper's
//!   canonical example — or a zero-runtime header).

use mosaic_darshan::counter::PosixCounter as C;
use mosaic_darshan::counter::PosixFCounter as F;
use mosaic_darshan::{mdf, TraceLog};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What was done to the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// MDF bytes cut short.
    Truncated,
    /// A bit flipped in the payload (checksum failure).
    BitFlip,
    /// Magic bytes clobbered.
    BadMagic,
    /// Every record deallocated before the end of execution.
    DeallocatedRecords,
    /// Header claims a zero-length run.
    ZeroRuntime,
}

impl CorruptionKind {
    /// All kinds, for sampling.
    pub const ALL: [CorruptionKind; 5] = [
        CorruptionKind::Truncated,
        CorruptionKind::BitFlip,
        CorruptionKind::BadMagic,
        CorruptionKind::DeallocatedRecords,
        CorruptionKind::ZeroRuntime,
    ];

    /// `true` when the corruption destroys the serialization itself (the
    /// parser rejects it); `false` when it survives parsing but fails
    /// validation.
    pub fn is_format_level(self) -> bool {
        matches!(
            self,
            CorruptionKind::Truncated | CorruptionKind::BitFlip | CorruptionKind::BadMagic
        )
    }
}

/// A corrupted trace artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum CorruptArtifact {
    /// Raw bytes that fail MDF parsing.
    Bytes(Vec<u8>),
    /// A decodable but fatally invalid log.
    Log(TraceLog),
}

/// Corrupt a valid trace with a random corruption kind.
pub fn corrupt<R: Rng>(log: TraceLog, rng: &mut R) -> (CorruptionKind, CorruptArtifact) {
    let kind = CorruptionKind::ALL[rng.gen_range(0..CorruptionKind::ALL.len())];
    (kind, corrupt_as(log, kind, rng))
}

/// Corrupt a valid trace with a specific kind.
pub fn corrupt_as<R: Rng>(mut log: TraceLog, kind: CorruptionKind, rng: &mut R) -> CorruptArtifact {
    match kind {
        CorruptionKind::Truncated => {
            let bytes = mdf::to_bytes(&log);
            let cut = rng.gen_range(12..bytes.len().max(13));
            CorruptArtifact::Bytes(bytes[..cut.min(bytes.len() - 1)].to_vec())
        }
        CorruptionKind::BitFlip => {
            let mut bytes = mdf::to_bytes(&log);
            // Flip a payload bit (never the magic, never the CRC itself —
            // flipping the CRC also fails, but the payload case is the
            // interesting one).
            let idx = rng.gen_range(8..bytes.len() - 4);
            bytes[idx] ^= 1u8 << rng.gen_range(0..8);
            CorruptArtifact::Bytes(bytes)
        }
        CorruptionKind::BadMagic => {
            let mut bytes = mdf::to_bytes(&log);
            bytes[rng.gen_range(0..8usize)] ^= 0xff;
            CorruptArtifact::Bytes(bytes)
        }
        CorruptionKind::DeallocatedRecords => {
            for rec in log.records_mut() {
                if rec.has_reads() || rec.has_writes() {
                    // The paper's example: deallocated before the end — the
                    // close was counted but its timestamp zeroed.
                    rec.set(C::Closes, rec.get(C::Closes).max(1));
                    rec.setf(F::CloseEndTimestamp, 0.0);
                } else {
                    // Metadata-only records get an impossible rank instead.
                    rec.rank = -7;
                }
            }
            CorruptArtifact::Log(log)
        }
        CorruptionKind::ZeroRuntime => {
            let header = log.header().clone();
            let records = log.records().to_vec();
            let names = log.names().clone();
            let mut broken = header;
            broken.end_time = broken.start_time;
            CorruptArtifact::Log(TraceLog::from_parts(broken, records, names))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_darshan::job::JobHeader;
    use mosaic_darshan::log::TraceLogBuilder;
    use mosaic_darshan::validate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn valid_log() -> TraceLog {
        let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 4, 0, 100).with_exe("/bin/a"));
        let r = b.begin_record("/f", -1);
        b.record_mut(r)
            .set(C::Reads, 4)
            .set(C::BytesRead, 100)
            .set(C::Opens, 4)
            .set(C::Closes, 4)
            .setf(F::OpenStartTimestamp, 1.0)
            .setf(F::ReadStartTimestamp, 1.0)
            .setf(F::ReadEndTimestamp, 2.0)
            .setf(F::CloseEndTimestamp, 3.0);
        let m = b.begin_record("/meta", 0);
        b.record_mut(m).set(C::Opens, 1).setf(F::OpenStartTimestamp, 5.0);
        b.finish()
    }

    #[test]
    fn every_kind_is_evicted_by_the_funnel() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for kind in CorruptionKind::ALL {
            for _ in 0..10 {
                match corrupt_as(valid_log(), kind, &mut rng) {
                    CorruptArtifact::Bytes(bytes) => {
                        assert!(
                            mdf::from_bytes(&bytes).is_err(),
                            "{kind:?} produced parseable bytes"
                        );
                        assert!(kind.is_format_level());
                    }
                    CorruptArtifact::Log(mut log) => {
                        assert!(
                            validate::sanitize(&mut log).is_err(),
                            "{kind:?} produced salvageable log"
                        );
                        assert!(!kind.is_format_level());
                    }
                }
            }
        }
    }

    #[test]
    fn random_kind_sampling_covers_all() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let (kind, _) = corrupt(valid_log(), &mut rng);
            seen.insert(kind);
        }
        assert_eq!(seen.len(), CorruptionKind::ALL.len());
    }

    #[test]
    fn valid_log_baseline_is_clean() {
        // Sanity: the fixture really is valid before corruption.
        assert!(validate::validate(&valid_log()).is_clean());
    }
}
