//! Seeded mini-corpora for the verification harness.
//!
//! `mosaic-verify` needs small, fully deterministic trace populations it can
//! re-derive on any machine: differential oracles run the same corpus
//! through two executors, golden snapshots pin a corpus's categorization in
//! committed JSON. A [`MiniCorpus`] is a named, seeded [`Dataset`] sized for
//! CI (hundreds of traces, not the year-scale default), with the standard
//! trio covering the interesting regimes: no corruption, the paper's 32 %
//! rate, and a corruption-heavy stress mix.

use crate::dataset::{Dataset, DatasetConfig, Payload};

/// A named, seeded, CI-sized trace corpus.
#[derive(Debug, Clone)]
pub struct MiniCorpus {
    name: &'static str,
    dataset: Dataset,
}

impl MiniCorpus {
    /// Build a corpus from an explicit configuration.
    pub fn new(name: &'static str, config: DatasetConfig) -> MiniCorpus {
        MiniCorpus { name, dataset: Dataset::new(config) }
    }

    /// The standard verification trio. Names, seeds and sizes are part of
    /// the golden-snapshot contract: changing any of them invalidates
    /// `tests/golden/*.json` and requires a `--bless`.
    pub fn standard() -> Vec<MiniCorpus> {
        vec![
            MiniCorpus::new(
                "clean-small",
                DatasetConfig { n_traces: 160, corruption_rate: 0.0, seed: 101 },
            ),
            MiniCorpus::new(
                "mixed-medium",
                DatasetConfig { n_traces: 400, corruption_rate: 0.32, seed: 202 },
            ),
            MiniCorpus::new(
                "hostile-heavy",
                DatasetConfig { n_traces: 240, corruption_rate: 0.6, seed: 303 },
            ),
        ]
    }

    /// Corpus name (doubles as the golden file stem).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// `true` when the corpus holds no traces.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Trace `i`'s payload. Pure function of `(name's seed, i)`.
    pub fn payload(&self, i: usize) -> Payload {
        self.dataset.generate(i).payload
    }

    /// Trace `i` as MDF wire bytes — decoded logs are serialized, raw
    /// (format-corrupt) payloads pass through untouched. This is the byte
    /// stream the roundtrip differential feeds back through the parser.
    pub fn mdf_bytes(&self, i: usize) -> Vec<u8> {
        match self.payload(i) {
            Payload::Log(log) => mosaic_darshan::mdf::to_bytes(&log),
            Payload::Bytes(bytes) => bytes,
        }
    }

    /// Every decoded (parseable) trace log, with its corpus index.
    pub fn logs(&self) -> Vec<(usize, mosaic_darshan::TraceLog)> {
        (0..self.len())
            .filter_map(|i| match self.payload(i) {
                Payload::Log(log) => Some((i, log)),
                Payload::Bytes(_) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_trio_is_stable() {
        let corpora = MiniCorpus::standard();
        assert_eq!(corpora.len(), 3);
        let names: Vec<&str> = corpora.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["clean-small", "mixed-medium", "hostile-heavy"]);
        for c in &corpora {
            assert!(!c.is_empty());
            assert!(c.len() <= 400, "{} too big for CI", c.name());
        }
    }

    #[test]
    fn payloads_are_deterministic() {
        let a = MiniCorpus::standard().remove(1);
        let b = MiniCorpus::standard().remove(1);
        for i in [0, 17, 399] {
            assert_eq!(a.payload(i), b.payload(i));
            assert_eq!(a.mdf_bytes(i), b.mdf_bytes(i));
        }
    }

    #[test]
    fn clean_corpus_decodes_entirely() {
        let clean = MiniCorpus::standard().remove(0);
        assert_eq!(clean.logs().len(), clean.len());
    }

    #[test]
    fn hostile_corpus_still_has_survivors() {
        let hostile = MiniCorpus::standard().remove(2);
        let logs = hostile.logs().len();
        assert!(logs > 0, "need parseable traces to verify against");
        assert!(logs < hostile.len(), "need format-corrupt traces too");
    }
}
