//! The year-scale dataset model: applications, run counts, lazy generation.
//!
//! Blue Waters 2019 was ~462k traces from far fewer applications — the same
//! app rerun tens to thousands of times (LAMMPS alone ≈12,000 runs). The
//! model here samples an application population from the
//! [`crate::archetype::default_mix`], gives each app a geometric run count
//! around its archetype's mean (with a rare heavy-tail multiplier for the
//! LAMMPS-like outliers), and exposes the runs as a lazily-generated,
//! deterministically-seeded sequence: `generate(i)` is a pure function of
//! `(config.seed, i)`, so a million-trace dataset never has to exist in
//! memory and parallel workers can claim indices freely.

use crate::archetype::{default_mix, Archetype, MixEntry, APP_NAMES};
use crate::build::{build_run, RunSpec};
use crate::corrupt::{corrupt, CorruptArtifact, CorruptionKind};
use crate::truth::GroundTruth;
use mosaic_darshan::TraceLog;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// 2019-01-01T00:00:00Z — the analyzed year's start.
pub const YEAR_EPOCH: i64 = 1_546_300_800;
const YEAR_SECONDS: i64 = 365 * 24 * 3600;

/// Dataset-level knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Total number of traces (runs) to model. The paper's full year is
    /// 462,502; the default keeps experiments laptop-sized.
    pub n_traces: usize,
    /// Fraction of runs corrupted (paper: 32 %).
    pub corruption_rate: f64,
    /// Master seed; everything is deterministic given it.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig { n_traces: 10_000, corruption_rate: 0.32, seed: 42 }
    }
}

/// One application in the population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Index in [`Dataset::apps`].
    pub index: usize,
    /// Owning user id.
    pub uid: u32,
    /// Executable line (unique per app; dedup groups on `(uid, basename)`).
    pub exe: String,
    /// Rank count, stable across the app's runs.
    pub nprocs: u32,
    /// Nominal runtime, jittered ±20 % per run.
    pub base_runtime: f64,
    /// Behaviour archetype.
    pub archetype: Archetype,
    /// Probability a run behaves nominally (else it degrades to `Quiet`).
    pub stability: f64,
    /// Number of runs this app contributes.
    pub runs: usize,
}

/// What one generated run carries.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedRun {
    /// Global run index (doubles as the scheduler job id).
    pub job_id: u64,
    /// Index of the owning [`AppSpec`].
    pub app: usize,
    /// The trace artifact.
    pub payload: Payload,
    /// Ground truth; `None` for corrupted runs.
    pub truth: Option<GroundTruth>,
    /// `true` when the run was corrupted (and must be evicted).
    pub corrupt: bool,
    /// The corruption applied, if any.
    pub corruption: Option<CorruptionKind>,
    /// The archetype this particular run actually followed (differs from
    /// the app's nominal archetype for unstable runs).
    pub effective_archetype: Archetype,
}

/// Trace artifact: a decoded log, or raw (corrupt) MDF bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Decoded trace (valid, or semantically corrupt).
    Log(TraceLog),
    /// Raw bytes (format-level corruption; will not parse).
    Bytes(Vec<u8>),
}

/// The sampled population plus the run → app index.
#[derive(Debug, Clone)]
pub struct Dataset {
    config: DatasetConfig,
    apps: Vec<AppSpec>,
    run_app: Vec<u32>,
}

impl Dataset {
    /// Sample the application population and lay out `n_traces` runs.
    pub fn new(config: DatasetConfig) -> Dataset {
        assert!((0.0..1.0).contains(&config.corruption_rate));
        let mix = default_mix();
        let weights: Vec<f64> = mix.iter().map(|m| m.app_fraction).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_mul(0x9e37_79b9));

        let mut apps: Vec<AppSpec> = Vec::new();
        let mut run_app: Vec<u32> = Vec::with_capacity(config.n_traces);
        while run_app.len() < config.n_traces {
            let entry = sample_mix(&mix, &weights, &mut rng);
            let index = apps.len();
            let runs = sample_runs(entry, &mut rng);
            let name = APP_NAMES[index % APP_NAMES.len()];
            let app = AppSpec {
                index,
                uid: rng.gen_range(1000..9000),
                exe: format!("/sw/apps/{name}/{name}-{index} --case c{index}"),
                nprocs: 1 << rng.gen_range(4..=10u32), // 16..1024 ranks
                base_runtime: crate::build::log_uniform(&mut rng, 600.0, 43_200.0),
                archetype: entry.archetype,
                stability: entry.stability,
                runs,
            };
            for _ in 0..runs {
                if run_app.len() == config.n_traces {
                    break;
                }
                run_app.push(index as u32);
            }
            apps.push(app);
        }
        // Trim the run count of the last app to what was actually used.
        if let Some(last) = apps.last_mut() {
            last.runs = run_app.iter().filter(|&&a| a as usize == last.index).count();
        }
        // Interleave the runs across the year (the archive is time-ordered,
        // not app-ordered); also makes any prefix a representative sample.
        use rand::seq::SliceRandom;
        run_app.shuffle(&mut rng);
        Dataset { config, apps, run_app }
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.run_app.len()
    }

    /// `true` when the dataset holds no runs.
    pub fn is_empty(&self) -> bool {
        self.run_app.is_empty()
    }

    /// The application population.
    pub fn apps(&self) -> &[AppSpec] {
        &self.apps
    }

    /// The configuration used.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Generate run `i`. Pure function of `(seed, i)`: callable from any
    /// thread, in any order.
    pub fn generate(&self, i: usize) -> GeneratedRun {
        let app = &self.apps[self.run_app[i] as usize];
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.config.seed ^ (i as u64).wrapping_mul(0xff51_afd7_ed55_8ccd),
        );

        let effective_archetype = if rng.gen_bool(app.stability.clamp(0.0, 1.0)) {
            app.archetype
        } else {
            Archetype::Quiet
        };
        let spec = RunSpec {
            archetype: effective_archetype,
            job_id: i as u64,
            uid: app.uid,
            nprocs: app.nprocs,
            base_runtime: app.base_runtime,
            start_epoch: YEAR_EPOCH + rng.gen_range(0..YEAR_SECONDS - 90_000),
            exe: app.exe.clone(),
        };
        let (log, truth) = build_run(&spec, &mut rng);

        if rng.gen_bool(self.config.corruption_rate) {
            let (kind, artifact) = corrupt(log, &mut rng);
            let payload = match artifact {
                CorruptArtifact::Bytes(b) => Payload::Bytes(b),
                CorruptArtifact::Log(l) => Payload::Log(l),
            };
            GeneratedRun {
                job_id: i as u64,
                app: app.index,
                payload,
                truth: None,
                corrupt: true,
                corruption: Some(kind),
                effective_archetype,
            }
        } else {
            GeneratedRun {
                job_id: i as u64,
                app: app.index,
                payload: Payload::Log(log),
                truth: Some(truth),
                corrupt: false,
                corruption: None,
                effective_archetype,
            }
        }
    }

    /// Iterate all runs lazily.
    pub fn iter(&self) -> impl Iterator<Item = GeneratedRun> + '_ {
        (0..self.len()).map(move |i| self.generate(i))
    }
}

fn sample_mix<'m, R: Rng>(mix: &'m [MixEntry], weights: &[f64], rng: &mut R) -> &'m MixEntry {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (entry, &w) in mix.iter().zip(weights) {
        if x < w {
            return entry;
        }
        x -= w;
    }
    mix.last().expect("mix is non-empty")
}

/// Geometric run count with the archetype's mean, plus a rare ×20 heavy-tail
/// multiplier modeling the LAMMPS-like outliers (≈12k runs of one app).
fn sample_runs<R: Rng>(entry: &MixEntry, rng: &mut R) -> usize {
    let mean = entry.mean_runs.max(1.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let mut runs = (1.0 + (-u.ln()) * (mean - 1.0)).round() as usize;
    if rng.gen_bool(0.01) {
        runs = runs.saturating_mul(20);
    }
    runs.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::new(DatasetConfig { n_traces: 500, corruption_rate: 0.32, seed: 7 })
    }

    #[test]
    fn layout_covers_exactly_n_traces() {
        let ds = small();
        assert_eq!(ds.len(), 500);
        assert!(!ds.is_empty());
        assert!(ds.apps().len() < 500);
        let total_runs: usize = ds.apps().iter().map(|a| a.runs).sum();
        assert_eq!(total_runs, 500);
    }

    #[test]
    fn generation_is_deterministic_and_order_independent() {
        let ds = small();
        let a = ds.generate(123);
        let b = ds.generate(123);
        assert_eq!(a, b);
        // A second dataset with the same config generates the same run.
        let ds2 = small();
        assert_eq!(ds2.generate(123), a);
    }

    #[test]
    fn corruption_rate_is_respected() {
        let ds = small();
        let corrupt = ds.iter().filter(|r| r.corrupt).count();
        let rate = corrupt as f64 / ds.len() as f64;
        assert!((0.25..0.40).contains(&rate), "corruption rate {rate}");
    }

    #[test]
    fn corrupted_runs_have_no_truth_and_vice_versa() {
        let ds = small();
        for run in ds.iter().take(200) {
            assert_eq!(run.truth.is_some(), !run.corrupt);
            assert_eq!(run.corruption.is_some(), run.corrupt);
        }
    }

    #[test]
    fn valid_payloads_are_valid_traces() {
        let ds = small();
        for run in ds.iter().take(100) {
            if !run.corrupt {
                match &run.payload {
                    Payload::Log(log) => {
                        assert!(mosaic_darshan::validate::validate(log).is_clean());
                    }
                    Payload::Bytes(_) => panic!("valid run delivered bytes"),
                }
            }
        }
    }

    #[test]
    fn apps_are_rerun_many_times() {
        let ds = Dataset::new(DatasetConfig { n_traces: 5000, corruption_rate: 0.0, seed: 3 });
        let mean_runs = ds.len() as f64 / ds.apps().len() as f64;
        assert!(mean_runs > 4.0, "mean runs per app {mean_runs}");
        let max_runs = ds.apps().iter().map(|a| a.runs).max().unwrap();
        assert!(max_runs > 50, "heavy tail missing, max {max_runs}");
    }

    #[test]
    fn quiet_dominates_apps_but_not_runs() {
        let ds = Dataset::new(DatasetConfig { n_traces: 8000, corruption_rate: 0.0, seed: 11 });
        let quiet_apps = ds.apps().iter().filter(|a| a.archetype == Archetype::Quiet).count()
            as f64
            / ds.apps().len() as f64;
        assert!(quiet_apps > 0.6, "quiet app share {quiet_apps}");
        let quiet_runs = ds
            .apps()
            .iter()
            .filter(|a| a.archetype == Archetype::Quiet)
            .map(|a| a.runs)
            .sum::<usize>() as f64
            / ds.len() as f64;
        assert!(quiet_runs < quiet_apps, "run share {quiet_runs} vs app share {quiet_apps}");
    }

    #[test]
    fn unstable_runs_degrade_to_quiet() {
        // With stability < 1, at least some runs of a non-quiet app should
        // be quiet. Use a periodic reader (stability 0.8) with many runs.
        let ds = Dataset::new(DatasetConfig { n_traces: 3000, corruption_rate: 0.0, seed: 5 });
        let app =
            ds.apps().iter().find(|a| a.archetype == Archetype::PeriodicReader && a.runs >= 30);
        if let Some(app) = app {
            let runs: Vec<GeneratedRun> = (0..ds.len())
                .filter(|&i| ds.run_app[i] as usize == app.index)
                .map(|i| ds.generate(i))
                .collect();
            let degraded =
                runs.iter().filter(|r| r.effective_archetype == Archetype::Quiet).count();
            assert!(degraded > 0, "no unstable runs among {}", runs.len());
            assert!(degraded < runs.len(), "all runs degraded");
        }
    }

    #[test]
    fn start_times_stay_in_the_year() {
        let ds = small();
        for run in ds.iter().take(50) {
            if let Payload::Log(log) = &run.payload {
                assert!(log.header().start_time >= YEAR_EPOCH);
                assert!(log.header().end_time <= YEAR_EPOCH + YEAR_SECONDS + 90_000);
            }
        }
    }
}
