//! Ground-truth labels and accuracy scoring (§IV-E).
//!
//! The paper validated MOSAIC by manually labeling a random sample of 512
//! traces and comparing; we have the luxury of machine ground truth — every
//! generated trace carries the labels its builder intended. A trace counts
//! as *correctly classified* when every axis matches: both temporality
//! labels, both periodicity verdicts (presence and magnitude), and the
//! metadata label set.

use mosaic_core::category::{MetadataLabel, PeriodMagnitude, TemporalityLabel};
use mosaic_core::TraceReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The labels a generated trace is supposed to receive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Expected read temporality.
    pub read_temporality: TemporalityLabel,
    /// Expected write temporality.
    pub write_temporality: TemporalityLabel,
    /// Expected read periodicity (None = not periodic).
    pub read_periodic: Option<PeriodMagnitude>,
    /// Expected write periodicity.
    pub write_periodic: Option<PeriodMagnitude>,
    /// Expected metadata labels.
    pub metadata: BTreeSet<MetadataLabel>,
}

impl GroundTruth {
    /// A fully quiet truth (both directions insignificant, no periodicity,
    /// insignificant metadata) — the baseline most builders start from.
    pub fn quiet() -> GroundTruth {
        GroundTruth {
            read_temporality: TemporalityLabel::Insignificant,
            write_temporality: TemporalityLabel::Insignificant,
            read_periodic: None,
            write_periodic: None,
            metadata: [MetadataLabel::InsignificantLoad].into_iter().collect(),
        }
    }

    /// Compare against a MOSAIC report; returns the axes that disagree
    /// (empty = correctly classified).
    pub fn mismatches(&self, report: &TraceReport) -> Vec<&'static str> {
        let mut out = Vec::new();
        if report.read.temporality.label != self.read_temporality {
            out.push("read_temporality");
        }
        if report.write.temporality.label != self.write_temporality {
            out.push("write_temporality");
        }
        let detected_read = report.read.periodic.first().map(|p| p.magnitude);
        if detected_read != self.read_periodic {
            out.push("read_periodicity");
        }
        let detected_write = report.write.periodic.first().map(|p| p.magnitude);
        if detected_write != self.write_periodic {
            out.push("write_periodicity");
        }
        let detected_meta: BTreeSet<MetadataLabel> =
            report.metadata.labels.iter().copied().collect();
        if detected_meta != self.metadata {
            out.push("metadata");
        }
        out
    }

    /// `true` when the report matches on every axis.
    pub fn matches(&self, report: &TraceReport) -> bool {
        self.mismatches(report).is_empty()
    }
}

/// Accuracy summary over a sample of `(truth, report)` pairs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Sample size.
    pub total: usize,
    /// Traces matching on every axis.
    pub correct: usize,
    /// Per-axis error counts, as `(axis, count)`.
    pub errors_by_axis: Vec<(String, usize)>,
}

impl AccuracyReport {
    /// Score a sample.
    pub fn score<'a, I>(pairs: I) -> AccuracyReport
    where
        I: IntoIterator<Item = (&'a GroundTruth, &'a TraceReport)>,
    {
        let mut total = 0;
        let mut correct = 0;
        let mut errs: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for (truth, report) in pairs {
            total += 1;
            let mismatches = truth.mismatches(report);
            if mismatches.is_empty() {
                correct += 1;
            }
            for m in mismatches {
                *errs.entry(m).or_insert(0) += 1;
            }
        }
        AccuracyReport {
            total,
            correct,
            errors_by_axis: errs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        }
    }

    /// Fraction correct, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_core::{Categorizer, CategorizerConfig};
    use mosaic_darshan::ops::{OpKind, Operation, OperationView};

    fn report_for(reads: Vec<Operation>, writes: Vec<Operation>) -> TraceReport {
        let view = OperationView { runtime: 1000.0, nprocs: 8, reads, writes, meta: vec![] };
        Categorizer::new(CategorizerConfig::default()).categorize(&view)
    }

    fn op(kind: OpKind, start: f64, end: f64, bytes: u64) -> Operation {
        Operation { kind, start, end, bytes, ranks: 8 }
    }

    #[test]
    fn quiet_truth_matches_quiet_trace() {
        let report = report_for(vec![], vec![]);
        assert!(GroundTruth::quiet().matches(&report));
    }

    #[test]
    fn mismatch_axes_are_reported() {
        // Truth expects read on start, trace is quiet.
        let mut truth = GroundTruth::quiet();
        truth.read_temporality = TemporalityLabel::OnStart;
        let report = report_for(vec![], vec![]);
        assert_eq!(truth.mismatches(&report), vec!["read_temporality"]);
    }

    #[test]
    fn periodic_axis_checks_magnitude() {
        let writes: Vec<Operation> = (0..8)
            .map(|i| op(OpKind::Write, 100.0 * i as f64, 100.0 * i as f64 + 5.0, 200 << 20))
            .collect();
        let report = report_for(vec![], writes);
        let mut truth = GroundTruth::quiet();
        truth.write_temporality = report.write.temporality.label;
        truth.write_periodic = Some(PeriodMagnitude::Minute);
        assert!(truth.matches(&report), "{:?}", truth.mismatches(&report));
        truth.write_periodic = Some(PeriodMagnitude::Hour);
        assert_eq!(truth.mismatches(&report), vec!["write_periodicity"]);
    }

    #[test]
    fn accuracy_scoring() {
        let quiet_report = report_for(vec![], vec![]);
        let truth_ok = GroundTruth::quiet();
        let mut truth_bad = GroundTruth::quiet();
        truth_bad.write_temporality = TemporalityLabel::OnEnd;
        let pairs = vec![(&truth_ok, &quiet_report), (&truth_bad, &quiet_report)];
        let acc = AccuracyReport::score(pairs);
        assert_eq!(acc.total, 2);
        assert_eq!(acc.correct, 1);
        assert_eq!(acc.accuracy(), 0.5);
        assert_eq!(acc.errors_by_axis, vec![("write_temporality".to_owned(), 1)]);
    }

    #[test]
    fn empty_sample_is_vacuously_accurate() {
        let acc = AccuracyReport::score(std::iter::empty());
        assert_eq!(acc.accuracy(), 1.0);
    }
}
