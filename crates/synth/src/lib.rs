//! # mosaic-synth
//!
//! Synthetic Blue Waters-like trace datasets with ground-truth labels.
//!
//! The paper evaluates MOSAIC on the 2019 Darshan archive of Blue Waters:
//! 462,502 traces, of which 32 % are corrupted and, of the valid remainder,
//! 8 % are unique application executions (Fig 3). That archive is a
//! multi-terabyte offline artifact; this crate replaces it with a
//! *statistical model of the same population*:
//!
//! * [`archetype`] — application behaviour archetypes (quiet jobs,
//!   read-compute-write simulations, periodic checkpointers, steady
//!   streamers, metadata storms, deliberately-ambiguous "hard" cases), with
//!   an app-fraction / run-count mix calibrated so the category
//!   distributions of Tables II–III and Fig 4 are reproduced in shape;
//! * [`build`] — the direct trace builders: given an archetype and a seeded
//!   RNG they emit a [`mosaic_darshan::TraceLog`] plus the matching
//!   [`truth::GroundTruth`];
//! * [`corrupt`] — corruption injectors (format-level truncation/bit-rot
//!   and semantically fatal logs) for the pre-processing funnel;
//! * [`dataset`] — the year-scale population: applications with power-law
//!   run counts, per-run behaviour stability (§III-B1's "97 % of LAMMPS
//!   runs categorize identically"), lazy per-index generation so millions
//!   of traces never need to sit in memory at once;
//! * [`programs`] — [`mosaic_iosim`] workload programs for the same
//!   archetypes, for execution-derived (rather than sampled) traces;
//! * [`truth`] — the ground-truth label record and accuracy scoring used by
//!   the §IV-E evaluation.
//!
//! Everything is deterministic given a seed.
//!
//! ```
//! use mosaic_synth::dataset::{Dataset, DatasetConfig};
//!
//! let ds = Dataset::new(DatasetConfig { n_traces: 100, seed: 7, ..Default::default() });
//! assert_eq!(ds.len(), 100);
//! let run = ds.generate(0);
//! // Corrupted runs carry no ground truth; valid runs always do.
//! assert_eq!(run.truth.is_some(), !run.corrupt);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod archetype;
pub mod build;
pub mod corrupt;
pub mod dataset;
pub mod minicorpus;
pub mod programs;
pub mod truth;

pub use archetype::Archetype;
pub use dataset::{Dataset, DatasetConfig, GeneratedRun, Payload};
pub use minicorpus::MiniCorpus;
pub use truth::GroundTruth;
