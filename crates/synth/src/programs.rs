//! Workload programs for [`mosaic_iosim`]: execution-derived trace sources
//! for the same archetypes the statistical builders sample.
//!
//! Where [`crate::build`] *asserts* interval shapes, these programs *earn*
//! them by running through the event-driven machine model — desynchronized
//! ranks, shared bandwidth, metadata latency and all. The examples and the
//! realism-oriented integration tests use this path; the year-scale dataset
//! uses the direct builders for speed.

use mosaic_iosim::program::{FileSpec, Phase, Program};

/// A checkpointing simulation: read a shared input deck, then `rounds`
/// compute+checkpoint cycles (file-per-process dumps), then a final shared
/// result — the paper's introduction example, which MOSAIC labels
/// *periodic* and *write on end*.
pub fn checkpointer(rounds: u32, compute_seconds: f64, ckpt_bytes_per_rank: u64) -> Program {
    let mut phases = vec![
        Phase::Open { file: FileSpec::shared("/scratch/input/deck.dat") },
        Phase::Read { file: FileSpec::shared("/scratch/input/deck.dat"), bytes: 64 << 20 },
        Phase::Close { file: FileSpec::shared("/scratch/input/deck.dat") },
        Phase::Barrier,
    ];
    // A fresh dump file per round (dump0000, dump0001, …): without this,
    // Darshan-style per-file aggregation would fold every round into one
    // record and the periodicity would be invisible — exactly the trace
    // shape real checkpointers produce.
    for round in 0..rounds {
        let file = FileSpec::per_rank(format!("/scratch/ckpt/dump{round:04}"));
        phases.push(Phase::Compute { seconds: compute_seconds });
        phases.push(Phase::Open { file: file.clone() });
        phases.push(Phase::Write { file: file.clone(), bytes: ckpt_bytes_per_rank });
        phases.push(Phase::Close { file });
        phases.push(Phase::Barrier);
    }
    phases.extend([
        Phase::Open { file: FileSpec::shared("/scratch/output/final.h5") },
        Phase::Write { file: FileSpec::shared("/scratch/output/final.h5"), bytes: 256 << 20 },
        Phase::Close { file: FileSpec::shared("/scratch/output/final.h5") },
    ]);
    Program::new(phases)
}

/// The read-compute-write motif: big shared input, long compute, big shared
/// output.
pub fn read_compute_write(
    input_bytes_per_rank: u64,
    compute_seconds: f64,
    output_bytes_per_rank: u64,
) -> Program {
    Program::new(vec![
        Phase::Open { file: FileSpec::shared("/scratch/input/mesh.dat") },
        Phase::Seek { file: FileSpec::shared("/scratch/input/mesh.dat"), count: 4 },
        Phase::Read {
            file: FileSpec::shared("/scratch/input/mesh.dat"),
            bytes: input_bytes_per_rank,
        },
        Phase::Close { file: FileSpec::shared("/scratch/input/mesh.dat") },
        Phase::Barrier,
        Phase::Compute { seconds: compute_seconds },
        Phase::Barrier,
        Phase::Open { file: FileSpec::shared("/scratch/output/result.h5") },
        Phase::Write {
            file: FileSpec::shared("/scratch/output/result.h5"),
            bytes: output_bytes_per_rank,
        },
        Phase::Close { file: FileSpec::shared("/scratch/output/result.h5") },
    ])
}

/// A metadata storm: cycles of open/close on fresh small per-rank files with
/// barely any data — heavy MDS load, negligible volume.
pub fn metadata_storm(cycles: u32, files_per_cycle: u32) -> Program {
    let mut body = Vec::new();
    for f in 0..files_per_cycle {
        let file = FileSpec::per_rank(format!("/scratch/many/f{f}"));
        body.push(Phase::Open { file: file.clone() });
        body.push(Phase::Write { file: file.clone(), bytes: 512 });
        body.push(Phase::Close { file });
    }
    body.push(Phase::Compute { seconds: 5.0 });
    Program::new(vec![Phase::Repeat { times: cycles, body }])
}

/// A steady streamer: one long-lived output file written in many small slabs
/// without closing — Darshan aggregates it into a single interval.
pub fn steady_writer(slabs: u32, slab_bytes: u64, compute_between: f64) -> Program {
    let file = FileSpec::per_rank("/scratch/stream/out");
    let mut phases = vec![Phase::Open { file: file.clone() }];
    for _ in 0..slabs {
        phases.push(Phase::Compute { seconds: compute_between });
        phases.push(Phase::Write { file: file.clone(), bytes: slab_bytes });
    }
    phases.push(Phase::Close { file });
    Program::new(phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_core::category::{Category, OpKindTag};
    use mosaic_core::Categorizer;
    use mosaic_iosim::{MachineConfig, Simulation};

    fn machine() -> MachineConfig {
        MachineConfig {
            pfs_bandwidth: 50.0e9,
            per_rank_bandwidth: 1.0e9,
            ..MachineConfig::default()
        }
    }

    #[test]
    fn simulated_checkpointer_is_periodic() {
        let program = checkpointer(12, 60.0, 256 << 20);
        let trace = Simulation::new(machine(), 16, 1).run(&program, "/apps/sim/ckpt");
        let report = Categorizer::default().categorize_log(&trace);
        assert!(report.has(Category::Periodic { kind: OpKindTag::Write }), "{:?}", report.names());
    }

    #[test]
    fn simulated_rcw_reads_on_start_writes_on_end() {
        let program = read_compute_write(64 << 20, 1800.0, 32 << 20);
        let trace = Simulation::new(machine(), 32, 2).run(&program, "/apps/sim/rcw");
        let report = Categorizer::default().categorize_log(&trace);
        let names = report.names();
        assert!(names.iter().any(|n| n == "read_on_start"), "{names:?}");
        assert!(names.iter().any(|n| n == "write_on_end"), "{names:?}");
    }

    #[test]
    fn simulated_storm_hits_metadata_categories() {
        let program = metadata_storm(10, 40);
        let trace = Simulation::new(machine(), 64, 3).run(&program, "/apps/sim/storm");
        let report = Categorizer::default().categorize_log(&trace);
        assert!(report.metadata.peak_rps > 50, "peak {}", report.metadata.peak_rps);
        assert!(
            !report.metadata.labels.is_empty(),
            "expected metadata labels, got none (peak {})",
            report.metadata.peak_rps
        );
    }

    #[test]
    fn simulated_steady_writer_is_steady() {
        let program = steady_writer(40, 32 << 20, 30.0);
        let trace = Simulation::new(machine(), 8, 4).run(&program, "/apps/sim/stream");
        let report = Categorizer::default().categorize_log(&trace);
        use mosaic_core::category::TemporalityLabel;
        assert_eq!(report.write.temporality.label, TemporalityLabel::Steady);
    }
}
