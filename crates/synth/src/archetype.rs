//! Application behaviour archetypes and the population mix.
//!
//! The mix is calibrated against §IV of the paper: the **app fraction**
//! column reproduces the *single-run* (one trace per application) category
//! distribution, and the **mean runs** column skews the *all-runs*
//! distribution the way Blue Waters' production workload did — a small
//! number of heavily-rerun applications (LAMMPS alone accounts for ≈12,000
//! runs) dominating the file-system load.

use serde::{Deserialize, Serialize};

/// An application behaviour archetype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Archetype {
    /// Negligible I/O in both directions (< 100 MB); the bulk of unique
    /// applications (85–87 % single-run insignificant in Table III).
    Quiet,
    /// Reads its input at start, writes nothing significant.
    ReadStartOnly,
    /// The classic *read, compute, write* motif: input on start, result on
    /// end (66 % of on-start readers also write on end, §IV-D).
    ReadComputeWrite,
    /// Computes then dumps results at the end only.
    WriteEndOnly,
    /// Long-lived production app with files open the whole run: steady reads
    /// *and* steady writes (the Darshan aggregation artifact §IV-A
    /// discusses).
    SteadyReadWrite,
    /// Steady writer only (logging/streaming output).
    SteadyWriter,
    /// Periodic checkpointer that also reads its input on start.
    CheckpointerRead,
    /// Periodic checkpointer with negligible reads.
    CheckpointerQuiet,
    /// Periodically re-reads reference data at second/minute scale.
    PeriodicReader,
    /// Many-small-files metadata storm: little data, heavy MDS load.
    MetadataStorm,
    /// One or two bursts in the middle of the run (`after_start` /
    /// `before_end` / `after_start_before_end` temporality).
    MidBurst,
    /// Deliberately ambiguous: a single Darshan interval whose real activity
    /// is concentrated at its start while the interval spans several chunks.
    /// Uniform byte apportioning misreads these — the paper's stated source
    /// of its 8 % misclassifications.
    HardUneven,
}

/// Population parameters of one archetype.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixEntry {
    /// The archetype.
    pub archetype: Archetype,
    /// Fraction of unique applications with this behaviour.
    pub app_fraction: f64,
    /// Mean number of runs per application (geometric-ish, heavy tail).
    pub mean_runs: f64,
    /// Probability that a given run behaves like the app's nominal
    /// archetype (the rest degrade to a quiet variant) — models §III-B1's
    /// per-application categorization stability.
    pub stability: f64,
}

/// The calibrated Blue Waters-like mix. Fractions sum to 1.
pub fn default_mix() -> Vec<MixEntry> {
    use Archetype::*;
    vec![
        MixEntry { archetype: Quiet, app_fraction: 0.715, mean_runs: 3.0, stability: 0.99 },
        MixEntry {
            archetype: ReadStartOnly,
            app_fraction: 0.015,
            mean_runs: 54.0,
            stability: 0.97,
        },
        MixEntry {
            archetype: ReadComputeWrite,
            app_fraction: 0.075,
            mean_runs: 38.0,
            stability: 0.97,
        },
        MixEntry { archetype: WriteEndOnly, app_fraction: 0.020, mean_runs: 14.0, stability: 0.95 },
        MixEntry {
            archetype: SteadyReadWrite,
            app_fraction: 0.010,
            mean_runs: 320.0,
            stability: 0.97,
        },
        MixEntry {
            archetype: SteadyWriter,
            app_fraction: 0.010,
            mean_runs: 140.0,
            stability: 0.95,
        },
        MixEntry {
            archetype: CheckpointerRead,
            app_fraction: 0.010,
            mean_runs: 40.0,
            stability: 0.90,
        },
        MixEntry {
            archetype: CheckpointerQuiet,
            app_fraction: 0.010,
            mean_runs: 40.0,
            stability: 0.90,
        },
        MixEntry {
            archetype: PeriodicReader,
            app_fraction: 0.010,
            mean_runs: 35.0,
            stability: 0.80,
        },
        MixEntry {
            archetype: MetadataStorm,
            app_fraction: 0.015,
            mean_runs: 80.0,
            stability: 0.95,
        },
        MixEntry { archetype: MidBurst, app_fraction: 0.030, mean_runs: 8.0, stability: 0.90 },
        MixEntry { archetype: HardUneven, app_fraction: 0.080, mean_runs: 9.0, stability: 0.95 },
    ]
}

/// Realistic executable names drawn from the HPC applications the paper
/// names (LAMMPS, MILC, VASP, NEK5000) and other Blue Waters staples; used
/// round-robin with a per-app suffix for uniqueness.
pub const APP_NAMES: [&str; 12] = [
    "lmp_bw",
    "su3_rmd",
    "vasp_std",
    "nek5000",
    "namd2",
    "wrf.exe",
    "chroma",
    "qmcpack",
    "enzo",
    "cactus_sim",
    "flash4",
    "gromacs_mdrun",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let total: f64 = default_mix().iter().map(|m| m.app_fraction).sum();
        assert!((total - 1.0).abs() < 1e-9, "mix sums to {total}");
    }

    #[test]
    fn quiet_dominates_unique_apps() {
        let mix = default_mix();
        let quiet = mix.iter().find(|m| m.archetype == Archetype::Quiet).unwrap();
        assert!(quiet.app_fraction > 0.7);
        // ... but heavy runners dominate total runs.
        let runs = |a: Archetype| {
            let m = mix.iter().find(|m| m.archetype == a).unwrap();
            m.app_fraction * m.mean_runs
        };
        let total: f64 = mix.iter().map(|m| m.app_fraction * m.mean_runs).sum();
        assert!(runs(Archetype::Quiet) / total < 0.35);
        assert!(runs(Archetype::ReadComputeWrite) / total > 0.1);
    }

    #[test]
    fn stabilities_are_probabilities() {
        for m in default_mix() {
            assert!((0.0..=1.0).contains(&m.stability));
            assert!(m.mean_runs >= 1.0);
        }
    }
}
