//! Job-level trace header.

use serde::{Deserialize, Serialize};

/// Job-level metadata carried by every trace, mirroring the header of a
/// Darshan log (`jobid`, `uid`, `nprocs`, start/end time, executable line).
///
/// Timestamps are Unix seconds; all per-record timestamps elsewhere in the
/// trace are seconds **relative to** [`JobHeader::start_time`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobHeader {
    /// Scheduler job identifier.
    pub job_id: u64,
    /// Numeric user id that ran the job.
    pub uid: u32,
    /// Number of MPI processes (ranks).
    pub nprocs: u32,
    /// Job start, Unix seconds.
    pub start_time: i64,
    /// Job end, Unix seconds.
    pub end_time: i64,
    /// Executable command line as recorded by the tracer.
    pub exe: String,
}

/// Application name of an executable line: basename of its first
/// whitespace-separated token. Shared by [`JobHeader::app_name`] and the
/// borrowed [`crate::view::TraceView`], so both paths group applications
/// identically.
pub fn app_name_of(exe: &str) -> &str {
    let first = exe.split_whitespace().next().unwrap_or("");
    first.rsplit('/').next().unwrap_or(first)
}

impl JobHeader {
    /// Create a header. `exe` defaults to empty; see [`JobHeader::with_exe`].
    pub fn new(job_id: u64, uid: u32, nprocs: u32, start_time: i64, end_time: i64) -> Self {
        JobHeader { job_id, uid, nprocs, start_time, end_time, exe: String::new() }
    }

    /// Builder-style executable line setter.
    pub fn with_exe(mut self, exe: impl Into<String>) -> Self {
        self.exe = exe.into();
        self
    }

    /// Wallclock runtime in seconds. Zero or negative runtimes are a
    /// validity violation but are representable so the validator can see
    /// them.
    #[inline]
    pub fn runtime(&self) -> f64 {
        (self.end_time - self.start_time) as f64
    }

    /// Application name: basename of the first token of the executable line.
    ///
    /// MOSAIC groups traces into "same application from a given user" sets by
    /// this name (pre-processing step ①); Blue Waters traces encode it in the
    /// log file name.
    pub fn app_name(&self) -> &str {
        app_name_of(&self.exe)
    }

    /// The `(uid, app_name)` pair used for application deduplication.
    pub fn app_key(&self) -> (u32, String) {
        (self.uid, self.app_name().to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_is_end_minus_start() {
        let h = JobHeader::new(1, 2, 3, 100, 400);
        assert_eq!(h.runtime(), 300.0);
    }

    #[test]
    fn app_name_strips_path_and_args() {
        let h = JobHeader::new(1, 2, 3, 0, 1).with_exe("/sw/apps/lammps/lmp_bw -in in.lj");
        assert_eq!(h.app_name(), "lmp_bw");
        let h = JobHeader::new(1, 2, 3, 0, 1).with_exe("nek5000");
        assert_eq!(h.app_name(), "nek5000");
        let h = JobHeader::new(1, 2, 3, 0, 1);
        assert_eq!(h.app_name(), "");
    }

    #[test]
    fn app_key_distinguishes_users() {
        let a = JobHeader::new(1, 10, 3, 0, 1).with_exe("/bin/app");
        let b = JobHeader::new(2, 11, 3, 0, 1).with_exe("/bin/app");
        assert_ne!(a.app_key(), b.app_key());
        let c = JobHeader::new(3, 10, 64, 5, 9).with_exe("/other/path/app --flag");
        assert_eq!(a.app_key(), c.app_key());
    }
}
