//! Decompression-bomb guard constants shared by every binary parser.
//!
//! Each wire format in this crate length-prefixes its variable-size fields,
//! and a hostile log can claim any length it likes — the classic prealloc
//! bomb is a 12-byte file whose header promises four billion records and
//! makes `Vec::with_capacity` do the damage. Every parser therefore compares
//! each untrusted length against a named `MAX_*` plausibility bound from this
//! module *before* the length sizes an allocation.
//!
//! Centralizing the bounds here (rather than per-parser `const`s) gives the
//! static analyses a single anchor:
//!
//! * **L8 (wire-taint)** accepts a comparison against a `MAX_*` constant as
//!   the sanitizer that lets a wire-read length reach an allocation sink.
//! * **L9 (guard parity)** extracts the set of `MAX_*` constants each MDF
//!   parser compares against and fails the build if the owned (`mdf`) and
//!   borrowed (`view`) parsers drift apart.
//!
//! The bounds are plausibility limits, not correctness limits: a legitimate
//! Blue Waters-scale log (the MOSAIC paper's corpus is 462k logs) sits orders
//! of magnitude below them, while anything above is rejected as
//! [`FormatError::ImplausibleLength`](crate::error::FormatError) long before
//! memory is committed.

/// Longest accepted `exe` string (command line) in an MDF header.
pub const MAX_EXE_LEN: u32 = 64 * 1024;
/// Highest accepted record count in an MDF or MDX trace.
pub const MAX_RECORDS: u32 = 64 * 1024 * 1024;
/// Highest accepted name-table size in an MDF trace.
pub const MAX_NAMES: u32 = 64 * 1024 * 1024;
/// Highest accepted per-trace access-segment count in an MDX (DXT) trace.
pub const MAX_ACCESSES: u32 = 256 * 1024 * 1024;

// The exe string is a single field while collections get the big caps, and
// DXT segments are finer-grained than records, so the caps must be ordered.
// Compile-time: a misordered edit fails `cargo build`, not a test run.
const _: () = assert!(MAX_EXE_LEN < MAX_RECORDS);
const _: () = assert!(MAX_ACCESSES > MAX_RECORDS);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_name_caps_match() {
        // The name table is keyed by record id, so the caps move together.
        assert_eq!(MAX_RECORDS, MAX_NAMES);
    }

    #[test]
    fn bounds_fit_in_memory_arithmetic() {
        // Guard arithmetic multiplies counts by per-entry wire sizes in u64;
        // the products must not overflow u64 even at the caps.
        let worst = u64::from(MAX_ACCESSES) * 1024;
        assert!(worst < u64::MAX / 1024);
    }
}
