//! Semantics-preserving trace transformations.
//!
//! The verification harness (`mosaic-verify`) checks *metamorphic
//! invariants*: transformations of a trace that MOSAIC's categorization
//! must be blind to. The transformations live here, next to the trace
//! container, because they need to know which fields carry wallclock
//! placement (the header's Unix timestamps) and which carry job-relative
//! time (every floating-point counter).
//!
//! * [`shift_time`] moves a job along the wallclock without touching its
//!   internal timeline — categorization reads only job-relative time, so
//!   the report must be bit-identical;
//! * [`scale_time`] dilates the job's internal timeline uniformly —
//!   temporality is defined on *fractions* of the runtime, so its labels
//!   must survive any power-of-two dilation exactly (absolute-time
//!   categories such as the period magnitude legitimately change).

use crate::counter::PosixFCounter;
use crate::log::TraceLog;

/// Shift a trace `delta` seconds along the wallclock.
///
/// Only the header's `start_time`/`end_time` move; every per-record
/// timestamp is job-relative and stays put. The runtime — and therefore the
/// operation view and the full category set — is unchanged.
pub fn shift_time(log: &TraceLog, delta: i64) -> TraceLog {
    let mut header = log.header().clone();
    header.start_time += delta;
    header.end_time += delta;
    TraceLog::from_parts(header, log.records().to_vec(), log.names().clone())
}

/// Dilate a trace's internal timeline by `factor`.
///
/// The runtime stretches to `runtime × factor` and every floating-point
/// counter — all eleven are time quantities: eight job-relative timestamps
/// and three cumulative durations — is multiplied by `factor`. Darshan's
/// `0.0 == never happened` sentinel is preserved (zero scales to zero).
///
/// Use power-of-two factors when asserting exact invariants: they keep
/// every float product exact, so decisions sitting on a threshold boundary
/// cannot flip through rounding.
pub fn scale_time(log: &TraceLog, factor: f64) -> TraceLog {
    assert!(factor > 0.0, "time scale factor must be positive");
    let mut header = log.header().clone();
    let runtime = header.end_time - header.start_time;
    // lint: allow(cast, "f64-to-i64 `as` saturates; a scaled runtime beyond i64 clamps to the extreme")
    let scaled = (runtime as f64 * factor).round() as i64;
    header.end_time = header.start_time + scaled;
    let mut records = log.records().to_vec();
    for rec in &mut records {
        for c in PosixFCounter::ALL {
            let v = rec.getf(c);
            rec.setf(c, v * factor);
        }
    }
    TraceLog::from_parts(header, records, log.names().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PosixCounter as C;
    use crate::counter::PosixFCounter as F;
    use crate::job::JobHeader;
    use crate::log::TraceLogBuilder;
    use crate::ops::OperationView;

    fn sample() -> TraceLog {
        let mut b = TraceLogBuilder::new(JobHeader::new(9, 77, 8, 1000, 2000).with_exe("/bin/a"));
        let r = b.begin_record("/in", -1);
        b.record_mut(r)
            .set(C::Reads, 4)
            .set(C::BytesRead, 1 << 30)
            .set(C::Opens, 8)
            .setf(F::OpenStartTimestamp, 1.0)
            .setf(F::ReadStartTimestamp, 2.0)
            .setf(F::ReadEndTimestamp, 50.0);
        b.finish()
    }

    #[test]
    fn shift_moves_only_the_wallclock() {
        let log = sample();
        let shifted = shift_time(&log, 86_400);
        assert_eq!(shifted.header().start_time, 1000 + 86_400);
        assert_eq!(shifted.header().end_time, 2000 + 86_400);
        assert_eq!(shifted.header().runtime(), log.header().runtime());
        assert_eq!(shifted.records(), log.records());
        // The operation view — MOSAIC's input — is bit-identical.
        assert_eq!(OperationView::from_log(&shifted), OperationView::from_log(&log));
        // Negative shifts work too.
        let back = shift_time(&shifted, -86_400);
        assert_eq!(back, log);
    }

    #[test]
    fn scale_dilates_runtime_and_every_fcounter() {
        let log = sample();
        let scaled = scale_time(&log, 4.0);
        assert_eq!(scaled.header().runtime(), 4000.0);
        let rec = &scaled.records()[0];
        assert_eq!(rec.getf(F::OpenStartTimestamp), 4.0);
        assert_eq!(rec.getf(F::ReadStartTimestamp), 8.0);
        assert_eq!(rec.getf(F::ReadEndTimestamp), 200.0);
        // Integer counters and the name table are untouched.
        assert_eq!(rec.get(C::BytesRead), 1 << 30);
        assert_eq!(scaled.names(), log.names());
    }

    #[test]
    fn scale_preserves_the_never_happened_sentinel() {
        let log = sample();
        let scaled = scale_time(&log, 8.0);
        // WriteStartTimestamp was never set: it must stay exactly 0.0.
        assert_eq!(scaled.records()[0].getf(F::WriteStartTimestamp), 0.0);
    }

    #[test]
    fn power_of_two_scales_compose_exactly() {
        let log = sample();
        let there = scale_time(&log, 2.0);
        let back = scale_time(&there, 0.5);
        assert_eq!(back, log);
    }
}
