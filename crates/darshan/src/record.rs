//! Per-`(rank, file)` trace records.

use crate::counter::{Module, PosixCounter, PosixFCounter, N_POSIX_COUNTERS, N_POSIX_FCOUNTERS};
use serde::{Deserialize, Serialize};

/// Rank value meaning "shared across all ranks".
///
/// Darshan collapses files accessed collectively by every process into a
/// single record with rank `-1`; per-process files keep their rank.
pub const SHARED_RANK: i32 = -1;

/// One instrumented file, as seen by one rank (or by all ranks collectively
/// when [`PosixRecord::rank`] is [`SHARED_RANK`]).
///
/// Counters are dense arrays indexed by [`PosixCounter`] / [`PosixFCounter`],
/// exactly like Darshan's in-memory layout. All timestamps are seconds
/// relative to the job start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PosixRecord {
    /// Stable hash of the file path (see [`crate::synthutil::record_id`]).
    pub record_id: u64,
    /// Rank that produced the record, or [`SHARED_RANK`].
    pub rank: i32,
    /// Which API layer captured the record.
    pub module: Module,
    /// Integer counters, indexed by [`PosixCounter`].
    pub counters: [i64; N_POSIX_COUNTERS],
    /// Float counters, indexed by [`PosixFCounter`].
    pub fcounters: [f64; N_POSIX_FCOUNTERS],
}

impl PosixRecord {
    /// A zeroed record for the given file and rank.
    pub fn new(record_id: u64, rank: i32) -> Self {
        PosixRecord {
            record_id,
            rank,
            module: Module::Posix,
            counters: [0; N_POSIX_COUNTERS],
            fcounters: [0.0; N_POSIX_FCOUNTERS],
        }
    }

    /// Read an integer counter.
    #[inline]
    pub fn get(&self, c: PosixCounter) -> i64 {
        // lint: allow(panic, "enum-derived index: PosixCounter::index() < N_POSIX_COUNTERS by construction")
        self.counters[c.index()]
    }

    /// Read a float counter.
    #[inline]
    pub fn getf(&self, c: PosixFCounter) -> f64 {
        // lint: allow(panic, "enum-derived index: PosixFCounter::index() < N_POSIX_FCOUNTERS by construction")
        self.fcounters[c.index()]
    }

    /// Set an integer counter (chainable).
    #[inline]
    pub fn set(&mut self, c: PosixCounter, v: i64) -> &mut Self {
        // lint: allow(panic, "enum-derived index: PosixCounter::index() < N_POSIX_COUNTERS by construction")
        self.counters[c.index()] = v;
        self
    }

    /// Set a float counter (chainable).
    #[inline]
    pub fn setf(&mut self, c: PosixFCounter, v: f64) -> &mut Self {
        // lint: allow(panic, "enum-derived index: PosixFCounter::index() < N_POSIX_FCOUNTERS by construction")
        self.fcounters[c.index()] = v;
        self
    }

    /// Add to an integer counter (chainable).
    #[inline]
    pub fn add(&mut self, c: PosixCounter, v: i64) -> &mut Self {
        // lint: allow(panic, "enum-derived index: PosixCounter::index() < N_POSIX_COUNTERS by construction")
        self.counters[c.index()] += v;
        self
    }

    /// Number of ranks this record stands for, given the job's `nprocs`.
    #[inline]
    pub fn rank_count(&self, nprocs: u32) -> u32 {
        if self.rank == SHARED_RANK {
            nprocs
        } else {
            1
        }
    }

    /// Bytes read by this record.
    #[inline]
    pub fn bytes_read(&self) -> i64 {
        self.get(PosixCounter::BytesRead)
    }

    /// Bytes written by this record.
    #[inline]
    pub fn bytes_written(&self) -> i64 {
        self.get(PosixCounter::BytesWritten)
    }

    /// Total metadata operations (opens + closes + seeks + stats).
    #[inline]
    pub fn meta_ops(&self) -> i64 {
        self.get(PosixCounter::Opens)
            + self.get(PosixCounter::Closes)
            + self.get(PosixCounter::Seeks)
            + self.get(PosixCounter::Stats)
    }

    /// `true` if the record observed any read activity.
    #[inline]
    pub fn has_reads(&self) -> bool {
        self.get(PosixCounter::Reads) > 0 && self.bytes_read() > 0
    }

    /// `true` if the record observed any write activity.
    #[inline]
    pub fn has_writes(&self) -> bool {
        self.get(PosixCounter::Writes) > 0 && self.bytes_written() > 0
    }

    /// The `[start, end]` interval (relative seconds) covering this record's
    /// read activity, if any. Darshan aggregates between open and close, so
    /// this is all the temporal information a record carries.
    pub fn read_interval(&self) -> Option<(f64, f64)> {
        if self.has_reads() {
            Some((
                self.getf(PosixFCounter::ReadStartTimestamp),
                self.getf(PosixFCounter::ReadEndTimestamp),
            ))
        } else {
            None
        }
    }

    /// The `[start, end]` interval covering this record's write activity.
    pub fn write_interval(&self) -> Option<(f64, f64)> {
        if self.has_writes() {
            Some((
                self.getf(PosixFCounter::WriteStartTimestamp),
                self.getf(PosixFCounter::WriteEndTimestamp),
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PosixCounter as C;
    use crate::counter::PosixFCounter as F;

    fn rec() -> PosixRecord {
        PosixRecord::new(0xdead_beef, 3)
    }

    #[test]
    fn counters_start_zeroed() {
        let r = rec();
        for c in C::ALL {
            assert_eq!(r.get(c), 0);
        }
        for c in F::ALL {
            assert_eq!(r.getf(c), 0.0);
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut r = rec();
        r.set(C::BytesRead, 4096).setf(F::ReadStartTimestamp, 1.5);
        assert_eq!(r.get(C::BytesRead), 4096);
        assert_eq!(r.getf(F::ReadStartTimestamp), 1.5);
    }

    #[test]
    fn add_accumulates() {
        let mut r = rec();
        r.add(C::Opens, 2).add(C::Opens, 3);
        assert_eq!(r.get(C::Opens), 5);
    }

    #[test]
    fn rank_count_expands_shared() {
        let mut r = rec();
        assert_eq!(r.rank_count(128), 1);
        r.rank = SHARED_RANK;
        assert_eq!(r.rank_count(128), 128);
    }

    #[test]
    fn meta_ops_sums_all_kinds() {
        let mut r = rec();
        r.set(C::Opens, 1).set(C::Closes, 2).set(C::Seeks, 3).set(C::Stats, 4);
        assert_eq!(r.meta_ops(), 10);
    }

    #[test]
    fn intervals_require_both_count_and_bytes() {
        let mut r = rec();
        assert_eq!(r.read_interval(), None);
        r.set(C::Reads, 10); // ops but no bytes: still no interval
        assert_eq!(r.read_interval(), None);
        r.set(C::BytesRead, 100).setf(F::ReadStartTimestamp, 2.0).setf(F::ReadEndTimestamp, 5.0);
        assert_eq!(r.read_interval(), Some((2.0, 5.0)));
        assert_eq!(r.write_interval(), None);
        r.set(C::Writes, 1)
            .set(C::BytesWritten, 7)
            .setf(F::WriteStartTimestamp, 6.0)
            .setf(F::WriteEndTimestamp, 6.5);
        assert_eq!(r.write_interval(), Some((6.0, 6.5)));
    }
}
