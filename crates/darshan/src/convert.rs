//! Explicit, panic-free integer conversions.
//!
//! The wire formats and counter plumbing constantly move values between
//! `usize`, the fixed-width wire types, and the `i64` Darshan counters.
//! Bare `as` casts silently truncate or wrap on out-of-range values, so
//! the workspace linter (L6) bans them on these paths; these helpers make
//! every conversion's behaviour explicit instead. Each one is total: the
//! out-of-range branch is either impossible on supported targets or a
//! documented clamp, never a panic.

/// `u32` → `usize`. Lossless on every supported target (pointer width is
/// at least 32 bits); clamps on a hypothetical 16-bit target.
#[inline]
pub fn u32_to_usize(n: u32) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// `usize` → `u64`. Lossless on every supported target (pointer width is
/// at most 64 bits); clamps on a hypothetical 128-bit target.
#[inline]
pub fn usize_to_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// `usize` → `i64`, saturating at `i64::MAX` for lengths above 2^63.
#[inline]
pub fn usize_to_i64(n: usize) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

/// `u64` → `i64`, saturating at `i64::MAX` for values above 2^63.
#[inline]
pub fn saturating_i64(n: u64) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

/// `i64` → `u64`, clamping negatives to zero. Darshan counters use
/// negative values to mean "not recorded", so zero is the right reading
/// when a non-negative quantity is required.
#[inline]
pub fn nonneg_u64(n: i64) -> u64 {
    u64::try_from(n).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_to_usize_is_identity_in_range() {
        assert_eq!(u32_to_usize(0), 0);
        assert_eq!(u32_to_usize(u32::MAX), u32::MAX as usize);
    }

    #[test]
    fn usize_to_u64_is_identity_in_range() {
        assert_eq!(usize_to_u64(0), 0);
        assert_eq!(usize_to_u64(4096), 4096);
    }

    #[test]
    fn signed_conversions_saturate() {
        assert_eq!(usize_to_i64(usize::MAX), i64::MAX);
        assert_eq!(saturating_i64(u64::MAX), i64::MAX);
        assert_eq!(saturating_i64(7), 7);
    }

    #[test]
    fn nonneg_clamps_negative_counters_to_zero() {
        assert_eq!(nonneg_u64(-1), 0);
        assert_eq!(nonneg_u64(i64::MIN), 0);
        assert_eq!(nonneg_u64(42), 42);
    }
}
