//! Error types for parsing and validating traces.

use std::fmt;

/// Errors raised while encoding or decoding a trace serialization (binary MDF
/// or the text format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The input does not begin with the expected magic bytes.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The input ended before a complete structure could be decoded.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// The trailing CRC does not match the payload.
    ChecksumMismatch {
        /// CRC recorded in the file footer.
        expected: u32,
        /// CRC computed over the payload actually read.
        actual: u32,
    },
    /// A module tag byte did not name a known module.
    UnknownModule(u8),
    /// A length or count field exceeds sane bounds (decompression-bomb guard).
    ImplausibleLength {
        /// What was being decoded.
        context: &'static str,
        /// The offending length.
        len: u64,
    },
    /// A string field contained invalid UTF-8.
    InvalidUtf8 {
        /// What was being decoded.
        context: &'static str,
    },
    /// Text-format specific: a malformed line.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// Short description of the problem.
        reason: String,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "bad magic bytes: not an MDF trace"),
            FormatError::UnsupportedVersion(v) => write!(f, "unsupported MDF version {v}"),
            FormatError::Truncated { context } => write!(f, "truncated input while reading {context}"),
            FormatError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: footer says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            FormatError::UnknownModule(t) => write!(f, "unknown module tag {t}"),
            FormatError::ImplausibleLength { context, len } => {
                write!(f, "implausible length {len} while reading {context}")
            }
            FormatError::InvalidUtf8 { context } => write!(f, "invalid UTF-8 in {context}"),
            FormatError::MalformedLine { line, reason } => {
                write!(f, "malformed text-format line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// A validity violation found in an otherwise decodable trace.
///
/// MOSAIC's pre-processing step ① deletes corrupted entries; the paper calls
/// out "a deallocation happens before the end of the application's execution"
/// as the canonical example. Each variant names one rule; a trace may violate
/// several at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidityError {
    /// Job end time is not after job start time.
    NonPositiveRuntime,
    /// A record was deallocated (closed out) before the application finished
    /// while I/O activity was still attributed to it.
    DeallocatedBeforeEnd,
    /// A timestamp counter is negative.
    NegativeTimestamp,
    /// An interval end precedes its start (e.g. read end < read start).
    InvertedInterval,
    /// A timestamp exceeds the job's wallclock runtime.
    TimestampBeyondRuntime,
    /// Byte counters are negative.
    NegativeBytes,
    /// A record reports bytes moved but zero corresponding operations.
    BytesWithoutOps,
    /// The job header reports zero processes.
    ZeroProcs,
    /// A record references a rank outside `[-1, nprocs)`.
    RankOutOfRange,
    /// A record id has no entry in the file-name table.
    MissingName,
}

impl ValidityError {
    /// Human-readable rule description.
    pub fn describe(self) -> &'static str {
        match self {
            ValidityError::NonPositiveRuntime => "job end time not after start time",
            ValidityError::DeallocatedBeforeEnd => {
                "record deallocated before end of application execution"
            }
            ValidityError::NegativeTimestamp => "negative timestamp counter",
            ValidityError::InvertedInterval => "interval end precedes its start",
            ValidityError::TimestampBeyondRuntime => "timestamp beyond job runtime",
            ValidityError::NegativeBytes => "negative byte counter",
            ValidityError::BytesWithoutOps => "bytes moved with zero operations",
            ValidityError::ZeroProcs => "job header reports zero processes",
            ValidityError::RankOutOfRange => "record rank outside [-1, nprocs)",
            ValidityError::MissingName => "record id missing from name table",
        }
    }
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

impl std::error::Error for ValidityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FormatError::ChecksumMismatch { expected: 1, actual: 2 };
        let s = e.to_string();
        assert!(s.contains("checksum"));
        assert!(s.contains("0x00000001"));
        assert!(ValidityError::DeallocatedBeforeEnd.to_string().contains("deallocated"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FormatError::BadMagic);
        takes_err(&ValidityError::ZeroProcs);
    }
}
