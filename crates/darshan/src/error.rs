//! Error types for parsing and validating traces.

use std::fmt;

/// Errors raised while encoding or decoding a trace serialization (binary MDF
/// or the text format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The input does not begin with the expected magic bytes.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The input ended before a complete structure could be decoded.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// The trailing CRC does not match the payload.
    ChecksumMismatch {
        /// CRC recorded in the file footer.
        expected: u32,
        /// CRC computed over the payload actually read.
        actual: u32,
    },
    /// A module tag byte did not name a known module.
    UnknownModule(u8),
    /// A length or count field exceeds sane bounds (decompression-bomb guard).
    ImplausibleLength {
        /// What was being decoded.
        context: &'static str,
        /// The offending length.
        len: u64,
    },
    /// A string field contained invalid UTF-8.
    InvalidUtf8 {
        /// What was being decoded.
        context: &'static str,
    },
    /// Text-format specific: a malformed line.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// Short description of the problem.
        reason: String,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "bad magic bytes: not an MDF trace"),
            FormatError::UnsupportedVersion(v) => write!(f, "unsupported MDF version {v}"),
            FormatError::Truncated { context } => {
                write!(f, "truncated input while reading {context}")
            }
            FormatError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: footer says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            FormatError::UnknownModule(t) => write!(f, "unknown module tag {t}"),
            FormatError::ImplausibleLength { context, len } => {
                write!(f, "implausible length {len} while reading {context}")
            }
            FormatError::InvalidUtf8 { context } => write!(f, "invalid UTF-8 in {context}"),
            FormatError::MalformedLine { line, reason } => {
                write!(f, "malformed text-format line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// A validity violation found in an otherwise decodable trace.
///
/// MOSAIC's pre-processing step ① deletes corrupted entries; the paper calls
/// out "a deallocation happens before the end of the application's execution"
/// as the canonical example. Each variant names one rule; a trace may violate
/// several at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValidityError {
    /// Job end time is not after job start time.
    NonPositiveRuntime,
    /// A record was deallocated (closed out) before the application finished
    /// while I/O activity was still attributed to it.
    DeallocatedBeforeEnd,
    /// A timestamp counter is negative.
    NegativeTimestamp,
    /// An interval end precedes its start (e.g. read end < read start).
    InvertedInterval,
    /// A timestamp exceeds the job's wallclock runtime.
    TimestampBeyondRuntime,
    /// Byte counters are negative.
    NegativeBytes,
    /// A record reports bytes moved but zero corresponding operations.
    BytesWithoutOps,
    /// The job header reports zero processes.
    ZeroProcs,
    /// A record references a rank outside `[-1, nprocs)`.
    RankOutOfRange,
    /// A record id has no entry in the file-name table.
    MissingName,
}

impl ValidityError {
    /// Every rule, for exhaustive iteration (tests, slug round-trips).
    pub const ALL: [ValidityError; 10] = [
        ValidityError::NonPositiveRuntime,
        ValidityError::DeallocatedBeforeEnd,
        ValidityError::NegativeTimestamp,
        ValidityError::InvertedInterval,
        ValidityError::TimestampBeyondRuntime,
        ValidityError::NegativeBytes,
        ValidityError::BytesWithoutOps,
        ValidityError::ZeroProcs,
        ValidityError::RankOutOfRange,
        ValidityError::MissingName,
    ];

    /// Stable snake_case identifier (used in funnel JSON keys).
    pub fn slug(self) -> &'static str {
        match self {
            ValidityError::NonPositiveRuntime => "non_positive_runtime",
            ValidityError::DeallocatedBeforeEnd => "deallocated_before_end",
            ValidityError::NegativeTimestamp => "negative_timestamp",
            ValidityError::InvertedInterval => "inverted_interval",
            ValidityError::TimestampBeyondRuntime => "timestamp_beyond_runtime",
            ValidityError::NegativeBytes => "negative_bytes",
            ValidityError::BytesWithoutOps => "bytes_without_ops",
            ValidityError::ZeroProcs => "zero_procs",
            ValidityError::RankOutOfRange => "rank_out_of_range",
            ValidityError::MissingName => "missing_name",
        }
    }

    /// Inverse of [`ValidityError::slug`].
    pub fn from_slug(slug: &str) -> Option<ValidityError> {
        ValidityError::ALL.into_iter().find(|e| e.slug() == slug)
    }

    /// Human-readable rule description.
    pub fn describe(self) -> &'static str {
        match self {
            ValidityError::NonPositiveRuntime => "job end time not after start time",
            ValidityError::DeallocatedBeforeEnd => {
                "record deallocated before end of application execution"
            }
            ValidityError::NegativeTimestamp => "negative timestamp counter",
            ValidityError::InvertedInterval => "interval end precedes its start",
            ValidityError::TimestampBeyondRuntime => "timestamp beyond job runtime",
            ValidityError::NegativeBytes => "negative byte counter",
            ValidityError::BytesWithoutOps => "bytes moved with zero operations",
            ValidityError::ZeroProcs => "job header reports zero processes",
            ValidityError::RankOutOfRange => "record rank outside [-1, nprocs)",
            ValidityError::MissingName => "record id missing from name table",
        }
    }
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

impl std::error::Error for ValidityError {}

/// Coarse funnel bucket of an [`EvictReason`] — which aggregate counter the
/// eviction lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictClass {
    /// The input could not be read at all (source-level I/O failure).
    Io,
    /// The bytes were read but do not decode (format corruption).
    Format,
    /// The trace decodes but fails validation fatally (semantic corruption).
    Validation,
}

/// Why one trace was evicted from the pre-processing funnel.
///
/// The paper's Fig 3 collapses everything into "corrupted"; at production
/// scale the operator needs the *class* of failure per trace — an NFS mount
/// flapping (`IoError`), a torn write (`Truncated`), bit rot
/// (`ChecksumMismatch`) and a semantically broken job header
/// (`ValidationFatal`) have entirely different remediations. Serialized as a
/// stable snake_case slug so funnel breakdowns keyed by reason survive JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EvictReason {
    /// The source failed to deliver the bytes (unreadable file, permission
    /// error, vanished path). Distinct from format corruption: the trace
    /// itself may be fine.
    IoError,
    /// Input does not begin with the MDF magic.
    BadMagic,
    /// MDF version newer than this library.
    UnsupportedVersion,
    /// Input ended mid-structure.
    Truncated,
    /// CRC-32 footer mismatch.
    ChecksumMismatch,
    /// Unknown module tag byte.
    UnknownModule,
    /// Length/count field beyond sane bounds.
    ImplausibleLength,
    /// Non-UTF-8 string field.
    InvalidUtf8,
    /// Malformed darshan-parser-style text dump.
    MalformedText,
    /// The job header violates an invariant; carries the first violated rule.
    ValidationFatal(ValidityError),
    /// Every record failed validation — nothing survived sanitization.
    AllRecordsInvalid,
}

impl EvictReason {
    /// Which aggregate funnel counter this reason belongs to.
    pub fn class(self) -> EvictClass {
        match self {
            EvictReason::IoError => EvictClass::Io,
            EvictReason::BadMagic
            | EvictReason::UnsupportedVersion
            | EvictReason::Truncated
            | EvictReason::ChecksumMismatch
            | EvictReason::UnknownModule
            | EvictReason::ImplausibleLength
            | EvictReason::InvalidUtf8
            | EvictReason::MalformedText => EvictClass::Format,
            EvictReason::ValidationFatal(_) | EvictReason::AllRecordsInvalid => {
                EvictClass::Validation
            }
        }
    }

    /// Stable identifier: `"checksum_mismatch"`, `"validation:zero_procs"`, …
    pub fn slug(self) -> String {
        match self {
            EvictReason::IoError => "io_error".to_owned(),
            EvictReason::BadMagic => "bad_magic".to_owned(),
            EvictReason::UnsupportedVersion => "unsupported_version".to_owned(),
            EvictReason::Truncated => "truncated".to_owned(),
            EvictReason::ChecksumMismatch => "checksum_mismatch".to_owned(),
            EvictReason::UnknownModule => "unknown_module".to_owned(),
            EvictReason::ImplausibleLength => "implausible_length".to_owned(),
            EvictReason::InvalidUtf8 => "invalid_utf8".to_owned(),
            EvictReason::MalformedText => "malformed_text".to_owned(),
            EvictReason::ValidationFatal(rule) => format!("validation:{}", rule.slug()),
            EvictReason::AllRecordsInvalid => "all_records_invalid".to_owned(),
        }
    }

    /// Human-readable description.
    pub fn describe(self) -> String {
        match self {
            EvictReason::IoError => "input could not be read (I/O error)".to_owned(),
            EvictReason::BadMagic => FormatError::BadMagic.to_string(),
            EvictReason::UnsupportedVersion => "unsupported MDF version".to_owned(),
            EvictReason::Truncated => "truncated input".to_owned(),
            EvictReason::ChecksumMismatch => "checksum mismatch".to_owned(),
            EvictReason::UnknownModule => "unknown module tag".to_owned(),
            EvictReason::ImplausibleLength => "implausible length field".to_owned(),
            EvictReason::InvalidUtf8 => "invalid UTF-8 string field".to_owned(),
            EvictReason::MalformedText => "malformed text-format line".to_owned(),
            EvictReason::ValidationFatal(rule) => format!("fatal validation: {}", rule.describe()),
            EvictReason::AllRecordsInvalid => "no record survived sanitization".to_owned(),
        }
    }
}

impl From<&FormatError> for EvictReason {
    fn from(e: &FormatError) -> EvictReason {
        match e {
            FormatError::BadMagic => EvictReason::BadMagic,
            FormatError::UnsupportedVersion(_) => EvictReason::UnsupportedVersion,
            FormatError::Truncated { .. } => EvictReason::Truncated,
            FormatError::ChecksumMismatch { .. } => EvictReason::ChecksumMismatch,
            FormatError::UnknownModule(_) => EvictReason::UnknownModule,
            FormatError::ImplausibleLength { .. } => EvictReason::ImplausibleLength,
            FormatError::InvalidUtf8 { .. } => EvictReason::InvalidUtf8,
            FormatError::MalformedLine { .. } => EvictReason::MalformedText,
        }
    }
}

impl fmt::Display for EvictReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.slug())
    }
}

impl std::str::FromStr for EvictReason {
    type Err = String;

    fn from_str(s: &str) -> Result<EvictReason, String> {
        if let Some(rule) = s.strip_prefix("validation:") {
            return ValidityError::from_slug(rule)
                .map(EvictReason::ValidationFatal)
                .ok_or_else(|| format!("unknown validation rule {rule:?}"));
        }
        match s {
            "io_error" => Ok(EvictReason::IoError),
            "bad_magic" => Ok(EvictReason::BadMagic),
            "unsupported_version" => Ok(EvictReason::UnsupportedVersion),
            "truncated" => Ok(EvictReason::Truncated),
            "checksum_mismatch" => Ok(EvictReason::ChecksumMismatch),
            "unknown_module" => Ok(EvictReason::UnknownModule),
            "implausible_length" => Ok(EvictReason::ImplausibleLength),
            "invalid_utf8" => Ok(EvictReason::InvalidUtf8),
            "malformed_text" => Ok(EvictReason::MalformedText),
            "all_records_invalid" => Ok(EvictReason::AllRecordsInvalid),
            other => Err(format!("unknown evict reason {other:?}")),
        }
    }
}

// Serialized as the slug string so maps keyed by `EvictReason` become plain
// JSON objects (`{"checksum_mismatch": 3, ...}`).
impl serde::Serialize for EvictReason {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.slug())
    }
}

impl<'de> serde::Deserialize<'de> for EvictReason {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<EvictReason, D::Error> {
        struct SlugVisitor;
        impl serde::de::Visitor<'_> for SlugVisitor {
            type Value = EvictReason;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an evict-reason slug string")
            }

            fn visit_str<E: serde::de::Error>(self, v: &str) -> Result<EvictReason, E> {
                v.parse().map_err(serde::de::Error::custom)
            }
        }
        deserializer.deserialize_str(SlugVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FormatError::ChecksumMismatch { expected: 1, actual: 2 };
        let s = e.to_string();
        assert!(s.contains("checksum"));
        assert!(s.contains("0x00000001"));
        assert!(ValidityError::DeallocatedBeforeEnd.to_string().contains("deallocated"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FormatError::BadMagic);
        takes_err(&ValidityError::ZeroProcs);
    }

    #[test]
    fn validity_slugs_round_trip() {
        for rule in ValidityError::ALL {
            assert_eq!(ValidityError::from_slug(rule.slug()), Some(rule));
        }
        assert_eq!(ValidityError::from_slug("nope"), None);
    }

    #[test]
    fn evict_reason_slugs_round_trip() {
        let mut reasons = vec![
            EvictReason::IoError,
            EvictReason::BadMagic,
            EvictReason::UnsupportedVersion,
            EvictReason::Truncated,
            EvictReason::ChecksumMismatch,
            EvictReason::UnknownModule,
            EvictReason::ImplausibleLength,
            EvictReason::InvalidUtf8,
            EvictReason::MalformedText,
            EvictReason::AllRecordsInvalid,
        ];
        reasons.extend(ValidityError::ALL.into_iter().map(EvictReason::ValidationFatal));
        for reason in reasons {
            let slug = reason.slug();
            assert_eq!(slug.parse::<EvictReason>().unwrap(), reason, "slug {slug}");
        }
        assert!("garbage".parse::<EvictReason>().is_err());
        assert!("validation:garbage".parse::<EvictReason>().is_err());
    }

    #[test]
    fn format_errors_map_to_reasons() {
        assert_eq!(EvictReason::from(&FormatError::BadMagic), EvictReason::BadMagic);
        assert_eq!(
            EvictReason::from(&FormatError::Truncated { context: "x" }),
            EvictReason::Truncated
        );
        assert_eq!(
            EvictReason::from(&FormatError::ChecksumMismatch { expected: 1, actual: 2 }),
            EvictReason::ChecksumMismatch
        );
        assert_eq!(
            EvictReason::from(&FormatError::MalformedLine { line: 1, reason: "x".into() }),
            EvictReason::MalformedText
        );
    }

    #[test]
    fn reason_classes_partition() {
        assert_eq!(EvictReason::IoError.class(), EvictClass::Io);
        assert_eq!(EvictReason::ChecksumMismatch.class(), EvictClass::Format);
        assert_eq!(
            EvictReason::ValidationFatal(ValidityError::ZeroProcs).class(),
            EvictClass::Validation
        );
        assert_eq!(EvictReason::AllRecordsInvalid.class(), EvictClass::Validation);
    }
}
