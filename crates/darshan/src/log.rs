//! The complete trace container.

use crate::counter::PosixCounter;
use crate::job::JobHeader;
use crate::record::PosixRecord;
use crate::synthutil::record_id;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A complete I/O trace: a job header, the per-`(rank, file)` records, and
/// the record-id → file-path name table.
///
/// This is the in-memory equivalent of one Darshan log file. Construct it
/// with [`TraceLogBuilder`], decode it with [`crate::mdf::from_bytes`], or
/// parse the text form with [`crate::text::parse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    header: JobHeader,
    records: Vec<PosixRecord>,
    /// BTreeMap keeps serialization deterministic.
    names: BTreeMap<u64, String>,
}

impl TraceLog {
    /// Assemble a log from parts. Intended for format decoders; prefer
    /// [`TraceLogBuilder`] in application code.
    pub fn from_parts(
        header: JobHeader,
        records: Vec<PosixRecord>,
        names: BTreeMap<u64, String>,
    ) -> Self {
        TraceLog { header, records, names }
    }

    /// Job-level header.
    #[inline]
    pub fn header(&self) -> &JobHeader {
        &self.header
    }

    /// All records, in insertion order.
    #[inline]
    pub fn records(&self) -> &[PosixRecord] {
        &self.records
    }

    /// Mutable record access (used by corruption injectors and sanitizers).
    #[inline]
    pub fn records_mut(&mut self) -> &mut Vec<PosixRecord> {
        &mut self.records
    }

    /// The record-id → path table.
    #[inline]
    pub fn names(&self) -> &BTreeMap<u64, String> {
        &self.names
    }

    /// Path for a record id, if known.
    pub fn path_of(&self, record_id: u64) -> Option<&str> {
        self.names.get(&record_id).map(String::as_str)
    }

    /// Total bytes read across all records.
    pub fn total_bytes_read(&self) -> i64 {
        self.records.iter().map(|r| r.get(PosixCounter::BytesRead)).sum()
    }

    /// Total bytes written across all records.
    pub fn total_bytes_written(&self) -> i64 {
        self.records.iter().map(|r| r.get(PosixCounter::BytesWritten)).sum()
    }

    /// Total metadata operations across all records.
    pub fn total_meta_ops(&self) -> i64 {
        self.records.iter().map(PosixRecord::meta_ops).sum()
    }

    /// I/O "heaviness" of the trace: total bytes moved. MOSAIC keeps the
    /// heaviest trace of each application's execution set (step ①).
    pub fn io_weight(&self) -> i64 {
        self.total_bytes_read() + self.total_bytes_written()
    }

    /// Drop records for which `keep` returns `false`, along with their name
    /// table entries if no surviving record references them.
    pub fn retain_records<F: FnMut(&PosixRecord) -> bool>(&mut self, keep: F) {
        self.records.retain(keep);
        let live: std::collections::BTreeSet<u64> =
            self.records.iter().map(|r| r.record_id).collect();
        self.names.retain(|id, _| live.contains(id));
    }
}

/// Incremental builder for [`TraceLog`], playing the role of the Darshan
/// runtime shim: register files, fill counters, finish.
#[derive(Debug, Clone)]
pub struct TraceLogBuilder {
    header: JobHeader,
    records: Vec<PosixRecord>,
    names: BTreeMap<u64, String>,
}

/// Opaque handle to a record under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHandle(usize);

impl TraceLogBuilder {
    /// Start a trace for the given job.
    pub fn new(header: JobHeader) -> Self {
        TraceLogBuilder { header, records: Vec::new(), names: BTreeMap::new() }
    }

    /// Register a new record for `path` as seen by `rank`
    /// ([`crate::record::SHARED_RANK`] for collectively accessed files) and
    /// return a handle for filling in counters.
    pub fn begin_record(&mut self, path: &str, rank: i32) -> RecordHandle {
        let id = record_id(path);
        self.names.entry(id).or_insert_with(|| path.to_owned());
        self.records.push(PosixRecord::new(id, rank));
        RecordHandle(self.records.len() - 1)
    }

    /// Mutable access to a record under construction.
    pub fn record_mut(&mut self, h: RecordHandle) -> &mut PosixRecord {
        &mut self.records[h.0]
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records have been added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finalize into an immutable [`TraceLog`].
    pub fn finish(self) -> TraceLog {
        TraceLog { header: self.header, records: self.records, names: self.names }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PosixCounter as C;

    fn sample() -> TraceLog {
        let mut b = TraceLogBuilder::new(JobHeader::new(7, 500, 16, 0, 100).with_exe("/bin/app"));
        let a = b.begin_record("/scratch/in.dat", -1);
        b.record_mut(a).set(C::Reads, 4).set(C::BytesRead, 1000).set(C::Opens, 16);
        let w = b.begin_record("/scratch/out.dat", 0);
        b.record_mut(w).set(C::Writes, 2).set(C::BytesWritten, 500).set(C::Closes, 1);
        b.finish()
    }

    #[test]
    fn builder_registers_names_once() {
        let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 1));
        b.begin_record("/f", 0);
        b.begin_record("/f", 1);
        let log = b.finish();
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.names().len(), 1);
        assert_eq!(log.path_of(log.records()[0].record_id), Some("/f"));
    }

    #[test]
    fn totals_aggregate_across_records() {
        let log = sample();
        assert_eq!(log.total_bytes_read(), 1000);
        assert_eq!(log.total_bytes_written(), 500);
        assert_eq!(log.io_weight(), 1500);
        assert_eq!(log.total_meta_ops(), 17);
    }

    #[test]
    fn retain_records_prunes_names() {
        let mut log = sample();
        log.retain_records(|r| r.get(C::BytesWritten) > 0);
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.names().len(), 1);
        assert!(log.path_of(record_id("/scratch/in.dat")).is_none());
        assert!(log.path_of(record_id("/scratch/out.dat")).is_some());
    }

    #[test]
    fn empty_builder_produces_empty_log() {
        let b = TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 1));
        assert!(b.is_empty());
        let log = b.finish();
        assert!(log.records().is_empty());
        assert_eq!(log.io_weight(), 0);
    }
}
