//! MDF — the MOSAIC Darshan Format.
//!
//! A compact little-endian binary serialization of [`TraceLog`] with a
//! CRC-32 footer, playing the role of Darshan's `.darshan` log files.
//!
//! ```text
//! +----------------------------+
//! | magic  "MOSAICDF"  (8 B)   |
//! | version u16 | flags u16    |
//! | job header                 |
//! |   job_id u64, uid u32,     |
//! |   nprocs u32,              |
//! |   start i64, end i64,      |
//! |   exe (u32 len + bytes)    |
//! | n_records u32              |
//! | records ×n                 |
//! |   record_id u64, rank i32, |
//! |   module u8,               |
//! |   counters  ×25 i64,       |
//! |   fcounters ×11 f64        |
//! | name table                 |
//! |   count u32, entries:      |
//! |   id u64, len u16, bytes   |
//! | crc32 u32 over all above   |
//! +----------------------------+
//! ```
//!
//! The parser is strict: bad magic, unknown versions, truncation, implausible
//! lengths and checksum mismatches are all reported as distinct
//! [`FormatError`]s, which the MOSAIC pre-processing step ① counts as
//! *corrupted traces* and evicts.

use crate::convert::{u32_to_usize, usize_to_u64};
use crate::counter::{Module, N_POSIX_COUNTERS, N_POSIX_FCOUNTERS};
use crate::error::FormatError;
use crate::job::JobHeader;
use crate::log::TraceLog;
use crate::record::PosixRecord;
use crate::synthutil::Crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

/// File magic.
pub const MAGIC: &[u8; 8] = b"MOSAICDF";
/// Current format version.
pub const VERSION: u16 = 1;

// Decompression-bomb guards live in [`crate::limits`]; re-exported here so
// existing `mdf::MAX_*` call sites (and the L9 guard-parity anchor) keep one
// canonical definition.
pub use crate::limits::{MAX_EXE_LEN, MAX_NAMES, MAX_RECORDS};

/// Exact wire size of one record (fixed-width fields only).
pub const RECORD_WIRE_BYTES: usize = 8 + 4 + 1 + N_POSIX_COUNTERS * 8 + N_POSIX_FCOUNTERS * 8;
/// Minimum wire size of one name-table entry (id + length prefix).
const NAME_WIRE_MIN_BYTES: usize = 8 + 2;

/// Serialize a trace to MDF bytes.
///
/// Convenience wrapper over [`try_to_bytes`] for traces whose fields are
/// known to fit their length prefixes (anything a parser or builder in this
/// workspace produced). Panics only on fields past `u32::MAX`/`u16::MAX`
/// bytes, which no representable encoding could carry.
pub fn to_bytes(log: &TraceLog) -> Vec<u8> {
    try_to_bytes(log).expect("trace exceeds MDF wire limits")
}

/// Serialize a trace to MDF bytes, reporting oversized fields as typed
/// errors instead of silently truncating their length prefixes.
///
/// The writer only guards *representability* (a field must fit its length
/// prefix); the plausibility bomb-guards (`MAX_EXE_LEN` and friends) belong
/// to [`from_bytes`], which cannot trust its input. An in-memory trace past
/// those limits still encodes self-consistently — and is then rejected on
/// parse.
pub fn try_to_bytes(log: &TraceLog) -> Result<Vec<u8>, FormatError> {
    let mut buf = BytesMut::with_capacity(estimated_size(log));
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0); // flags, reserved
    let h = log.header();
    buf.put_u64_le(h.job_id);
    buf.put_u32_le(h.uid);
    buf.put_u32_le(h.nprocs);
    buf.put_i64_le(h.start_time);
    buf.put_i64_le(h.end_time);
    buf.put_u32_le(wire_len(h.exe.len(), "exe")?);
    buf.put_slice(h.exe.as_bytes());
    buf.put_u32_le(wire_len(log.records().len(), "record count")?);
    for r in log.records() {
        buf.put_u64_le(r.record_id);
        buf.put_i32_le(r.rank);
        buf.put_u8(r.module.tag());
        for &c in &r.counters {
            buf.put_i64_le(c);
        }
        for &c in &r.fcounters {
            buf.put_f64_le(c);
        }
    }
    buf.put_u32_le(wire_len(log.names().len(), "name count")?);
    for (id, name) in log.names() {
        buf.put_u64_le(*id);
        let name_len = u16::try_from(name.len()).map_err(|_| FormatError::ImplausibleLength {
            context: "name",
            len: usize_to_u64(name.len()),
        })?;
        buf.put_u16_le(name_len);
        buf.put_slice(name.as_bytes());
    }
    let crc = Crc32::checksum(&buf);
    buf.put_u32_le(crc);
    Ok(buf.to_vec())
}

/// Encode an in-memory length as a `u32` wire field.
fn wire_len(len: usize, context: &'static str) -> Result<u32, FormatError> {
    u32::try_from(len)
        .map_err(|_| FormatError::ImplausibleLength { context, len: usize_to_u64(len) })
}

/// Conservative size estimate used to pre-allocate the encode buffer.
pub fn estimated_size(log: &TraceLog) -> usize {
    let rec = 8 + 4 + 1 + N_POSIX_COUNTERS * 8 + N_POSIX_FCOUNTERS * 8;
    let names: usize = log.names().values().map(|n| 10 + n.len()).sum();
    64 + log.header().exe.len() + log.records().len() * rec + names
}

/// Parse MDF bytes into a [`TraceLog`].
///
/// The whole payload is checksummed before structural decoding so that a
/// flipped bit anywhere is reported as [`FormatError::ChecksumMismatch`]
/// rather than as garbage data.
pub fn from_bytes(data: &[u8]) -> Result<TraceLog, FormatError> {
    if data.len() < MAGIC.len() + 4 + 4 {
        return Err(FormatError::Truncated { context: "file header" });
    }
    if !data.starts_with(MAGIC) {
        return Err(FormatError::BadMagic);
    }
    let (payload, footer) = data.split_at(data.len() - 4);
    // lint: allow(panic, "footer is the exact 4-byte tail of split_at(len - 4), guarded by the len >= 16 check above")
    let expected = u32::from_le_bytes(footer.try_into().expect("4-byte footer"));
    let actual = Crc32::checksum(payload);
    if expected != actual {
        return Err(FormatError::ChecksumMismatch { expected, actual });
    }

    // lint: allow(panic, "payload.len() = data.len() - 4 >= 12 by the header-length guard, so the magic can be sliced off")
    let mut buf = Bytes::copy_from_slice(&payload[8..]);
    let version = get_u16(&mut buf, "version")?;
    if version > VERSION {
        return Err(FormatError::UnsupportedVersion(version));
    }
    let _flags = get_u16(&mut buf, "flags")?;

    let job_id = get_u64(&mut buf, "job_id")?;
    let uid = get_u32(&mut buf, "uid")?;
    let nprocs = get_u32(&mut buf, "nprocs")?;
    let start = get_i64(&mut buf, "start_time")?;
    let end = get_i64(&mut buf, "end_time")?;
    let exe_len = get_u32(&mut buf, "exe length")?;
    if exe_len > MAX_EXE_LEN {
        return Err(FormatError::ImplausibleLength { context: "exe", len: u64::from(exe_len) });
    }
    let exe = get_string(&mut buf, u32_to_usize(exe_len), "exe")?;
    let header = JobHeader::new(job_id, uid, nprocs, start, end).with_exe(exe);

    let n_records = get_u32(&mut buf, "record count")?;
    if n_records > MAX_RECORDS {
        return Err(FormatError::ImplausibleLength {
            context: "record count",
            len: u64::from(n_records),
        });
    }
    // Pre-allocation bomb guard: a crafted header claiming millions of
    // records must not drive `with_capacity` into a multi-GB allocation.
    // Every record occupies RECORD_WIRE_BYTES, so a count the remaining
    // payload cannot possibly hold is rejected before any allocation.
    if u64::from(n_records) * usize_to_u64(RECORD_WIRE_BYTES) > usize_to_u64(buf.remaining()) {
        return Err(FormatError::Truncated { context: "record array" });
    }
    let mut records = Vec::with_capacity(u32_to_usize(n_records));
    for _ in 0..n_records {
        let record_id = get_u64(&mut buf, "record id")?;
        let rank = get_i32(&mut buf, "record rank")?;
        let tag = get_u8(&mut buf, "record module")?;
        let module = Module::from_tag(tag).ok_or(FormatError::UnknownModule(tag))?;
        let mut rec = PosixRecord::new(record_id, rank);
        rec.module = module;
        for c in rec.counters.iter_mut() {
            *c = get_i64(&mut buf, "counter")?;
        }
        for c in rec.fcounters.iter_mut() {
            *c = get_f64(&mut buf, "fcounter")?;
        }
        records.push(rec);
    }

    let n_names = get_u32(&mut buf, "name count")?;
    if n_names > MAX_NAMES {
        return Err(FormatError::ImplausibleLength {
            context: "name count",
            len: u64::from(n_names),
        });
    }
    // Same guard for the name table: each entry needs at least its id and
    // length prefix on the wire.
    if u64::from(n_names) * usize_to_u64(NAME_WIRE_MIN_BYTES) > usize_to_u64(buf.remaining()) {
        return Err(FormatError::Truncated { context: "name table" });
    }
    let mut names = BTreeMap::new();
    for _ in 0..n_names {
        let id = get_u64(&mut buf, "name id")?;
        let len = usize::from(get_u16(&mut buf, "name length")?);
        let name = get_string(&mut buf, len, "name")?;
        names.insert(id, name);
    }
    if buf.has_remaining() {
        return Err(FormatError::ImplausibleLength {
            context: "trailing bytes",
            len: usize_to_u64(buf.remaining()),
        });
    }
    Ok(TraceLog::from_parts(header, records, names))
}

macro_rules! getter {
    ($name:ident, $ty:ty, $get:ident, $size:expr) => {
        fn $name(buf: &mut Bytes, context: &'static str) -> Result<$ty, FormatError> {
            if buf.remaining() < $size {
                return Err(FormatError::Truncated { context });
            }
            Ok(buf.$get())
        }
    };
}

getter!(get_u8, u8, get_u8, 1);
getter!(get_u16, u16, get_u16_le, 2);
getter!(get_u32, u32, get_u32_le, 4);
getter!(get_i32, i32, get_i32_le, 4);
getter!(get_u64, u64, get_u64_le, 8);
getter!(get_i64, i64, get_i64_le, 8);
getter!(get_f64, f64, get_f64_le, 8);

fn get_string(buf: &mut Bytes, len: usize, context: &'static str) -> Result<String, FormatError> {
    if buf.remaining() < len {
        return Err(FormatError::Truncated { context });
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| FormatError::InvalidUtf8 { context })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PosixCounter as C;
    use crate::counter::PosixFCounter as F;
    use crate::log::TraceLogBuilder;

    fn sample() -> TraceLog {
        let mut b = TraceLogBuilder::new(
            JobHeader::new(99, 1234, 256, 1_500_000_000, 1_500_007_200)
                .with_exe("/apps/milc/su3_rmd in.milc"),
        );
        for i in 0..5 {
            let r = b.begin_record(&format!("/scratch/file.{i}"), if i == 0 { -1 } else { i });
            b.record_mut(r)
                .set(C::Reads, i as i64 * 10)
                .set(C::BytesRead, i as i64 * 1024)
                .set(C::Opens, 2)
                .setf(F::ReadStartTimestamp, i as f64)
                .setf(F::ReadEndTimestamp, i as f64 + 0.5);
        }
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let log = sample();
        let bytes = to_bytes(&log);
        let parsed = from_bytes(&bytes).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn roundtrip_empty_log() {
        let log = TraceLogBuilder::new(JobHeader::new(0, 0, 0, 0, 0)).finish();
        let parsed = from_bytes(&to_bytes(&log)).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        assert_eq!(from_bytes(&bytes), Err(FormatError::BadMagic));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = to_bytes(&sample());
        for cut in [bytes.len() - 1, bytes.len() / 2, 10] {
            let err = from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, FormatError::ChecksumMismatch { .. } | FormatError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bitflip_anywhere_fails_checksum() {
        let bytes = to_bytes(&sample());
        // Flip a bit in the middle of the record section.
        let mut corrupted = bytes.clone();
        let mid = bytes.len() / 2;
        corrupted[mid] ^= 0x40;
        assert!(matches!(from_bytes(&corrupted), Err(FormatError::ChecksumMismatch { .. })));
    }

    #[test]
    fn future_version_is_rejected() {
        let log = TraceLogBuilder::new(JobHeader::new(0, 0, 0, 0, 0)).finish();
        let mut bytes = to_bytes(&log);
        bytes[8] = 0xff; // version LSB
        bytes[9] = 0x00;
        // Re-checksum so the version check is what fires.
        let n = bytes.len();
        let crc = Crc32::checksum(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(from_bytes(&bytes), Err(FormatError::UnsupportedVersion(255)));
    }

    /// Patch a little-endian u32 at `offset` and fix up the trailing CRC so
    /// only the patched field (not the checksum) is what the parser rejects.
    fn patch_u32_and_recrc(bytes: &mut [u8], offset: usize, value: u32) {
        bytes[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
        let n = bytes.len();
        let crc = Crc32::checksum(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
    }

    /// Byte offset of the `n_records` field (after header + exe string).
    fn n_records_offset(bytes: &[u8]) -> usize {
        let exe_len_off = 8 + 2 + 2 + 8 + 4 + 4 + 8 + 8;
        let exe_len =
            u32::from_le_bytes(bytes[exe_len_off..exe_len_off + 4].try_into().unwrap()) as usize;
        exe_len_off + 4 + exe_len
    }

    #[test]
    fn hostile_record_count_is_rejected_without_allocating() {
        // A tiny file with a valid CRC claiming 60M records must fail fast
        // as truncated — not attempt a multi-GB `Vec::with_capacity`.
        let log = TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 10)).finish();
        let mut bytes = to_bytes(&log);
        let off = n_records_offset(&bytes);
        patch_u32_and_recrc(&mut bytes, off, 60_000_000);
        assert_eq!(from_bytes(&bytes), Err(FormatError::Truncated { context: "record array" }));
        // Beyond the absolute cap it is implausible, not merely truncated.
        patch_u32_and_recrc(&mut bytes, off, MAX_RECORDS + 1);
        assert!(matches!(
            from_bytes(&bytes),
            Err(FormatError::ImplausibleLength { context: "record count", .. })
        ));
    }

    #[test]
    fn hostile_name_count_is_rejected_without_allocating() {
        let log = TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 10)).finish();
        let mut bytes = to_bytes(&log);
        // With zero records the name count sits right after n_records.
        assert!(log.records().is_empty());
        let off = n_records_offset(&bytes) + 4;
        patch_u32_and_recrc(&mut bytes, off, 50_000_000);
        assert_eq!(from_bytes(&bytes), Err(FormatError::Truncated { context: "name table" }));
    }

    #[test]
    fn record_wire_size_matches_serialization() {
        // The bomb guard's arithmetic must track the real wire format.
        let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 10));
        b.begin_record("/f", 0);
        let one = to_bytes(&b.finish());
        let zero = to_bytes(&TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 10)).finish());
        // One extra record adds exactly RECORD_WIRE_BYTES plus its name entry.
        let name_entry = 8 + 2 + "/f".len();
        assert_eq!(one.len() - zero.len(), RECORD_WIRE_BYTES + name_entry);
    }

    #[test]
    fn estimated_size_is_an_upper_bound_ballpark() {
        let log = sample();
        let est = estimated_size(&log);
        let actual = to_bytes(&log).len();
        assert!(est >= actual, "estimate {est} < actual {actual}");
        assert!(est <= actual * 2, "estimate {est} way above actual {actual}");
    }
}
