//! DXT — Darshan eXtended Traces.
//!
//! Real Darshan's DXT module records every individual read/write access
//! with its rank, offset, length and start/end timestamps, instead of
//! aggregating between open and close. The paper could not use DXT ("no
//! large DXT-enabled I/O trace datasets are publicly available") and §IV-A
//! flags the cost of that: a file held open all run collapses to a single
//! `steady` interval even when the accesses inside are perfectly periodic —
//! "it is likely that the majority of these behaviors are, in fact,
//! periodic".
//!
//! This module provides the DXT-level trace type, its binary format (MDX),
//! the **lossy downgrade** to the aggregated [`TraceLog`] view (exactly
//! what default Darshan would have reported), and the **exact**
//! [`OperationView`] that categorization can consume when DXT is available.
//! The `dxt_aggregation_gap` bench quantifies the paper's conjecture by
//! categorizing the same runs both ways.

use crate::convert::{saturating_i64, u32_to_usize, usize_to_i64, usize_to_u64};
use crate::counter::PosixCounter as C;
use crate::counter::PosixFCounter as F;
use crate::error::FormatError;
use crate::job::JobHeader;
use crate::log::{TraceLog, TraceLogBuilder};
use crate::ops::{MetaEvent, MetaKind, OpKind, Operation, OperationView};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One individual access, as DXT records it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DxtAccess {
    /// Read or write.
    pub kind: OpKind,
    /// File offset of the access.
    pub offset: u64,
    /// Bytes moved.
    pub length: u64,
    /// Start, seconds relative to job start.
    pub start: f64,
    /// End, seconds relative to job start.
    pub end: f64,
}

/// All of one rank's accesses to one file, plus its metadata touchpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DxtRecord {
    /// Stable file-path hash (shared with the aggregated view).
    pub record_id: u64,
    /// Rank that performed the accesses.
    pub rank: i32,
    /// Individual accesses, in issue order.
    pub accesses: Vec<DxtAccess>,
    /// `open()` timestamps.
    pub opens: Vec<f64>,
    /// `close()` timestamps.
    pub closes: Vec<f64>,
}

/// A DXT-enabled trace: the full-resolution sibling of [`TraceLog`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DxtTrace {
    header: JobHeader,
    records: Vec<DxtRecord>,
    names: BTreeMap<u64, String>,
}

impl DxtTrace {
    /// Assemble from parts (format decoders, instrumentation shims).
    pub fn from_parts(
        header: JobHeader,
        records: Vec<DxtRecord>,
        names: BTreeMap<u64, String>,
    ) -> Self {
        DxtTrace { header, records, names }
    }

    /// Job header.
    pub fn header(&self) -> &JobHeader {
        &self.header
    }

    /// Per-`(rank, file)` records.
    pub fn records(&self) -> &[DxtRecord] {
        &self.records
    }

    /// Record-id → path table.
    pub fn names(&self) -> &BTreeMap<u64, String> {
        &self.names
    }

    /// Total individual accesses.
    pub fn total_accesses(&self) -> usize {
        self.records.iter().map(|r| r.accesses.len()).sum()
    }

    /// The **exact** operation view: one [`Operation`] per access, one
    /// [`MetaEvent`] per open/close. This is what MOSAIC would see with
    /// DXT enabled — no open/close smearing at all.
    pub fn operation_view(&self) -> OperationView {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let mut meta = Vec::new();
        for rec in &self.records {
            for a in &rec.accesses {
                let op = Operation {
                    kind: a.kind,
                    start: a.start,
                    end: a.end,
                    bytes: a.length,
                    ranks: 1,
                };
                match a.kind {
                    OpKind::Read => reads.push(op),
                    OpKind::Write => writes.push(op),
                }
            }
            for &t in &rec.opens {
                meta.push(MetaEvent { time: t, kind: MetaKind::Open, count: 1 });
            }
            for &t in &rec.closes {
                meta.push(MetaEvent { time: t, kind: MetaKind::Close, count: 1 });
            }
        }
        reads.sort_by(|a, b| a.start.total_cmp(&b.start));
        writes.sort_by(|a, b| a.start.total_cmp(&b.start));
        meta.sort_by(|a, b| a.time.total_cmp(&b.time));
        OperationView {
            runtime: self.header.runtime(),
            nprocs: self.header.nprocs,
            reads,
            writes,
            meta,
        }
    }

    /// The **lossy downgrade**: aggregate each record between its first
    /// open and last close, exactly like default (non-DXT) Darshan. This is
    /// the paper's input shape; diffing categorizations of
    /// [`DxtTrace::operation_view`] against this quantifies what the
    /// aggregation hides.
    pub fn to_aggregated(&self) -> TraceLog {
        let mut builder = TraceLogBuilder::new(self.header.clone());
        for rec in &self.records {
            let path = self
                .names
                .get(&rec.record_id)
                .cloned()
                .unwrap_or_else(|| format!("<record {}>", rec.record_id));
            let h = builder.begin_record(&path, rec.rank);
            let out = builder.record_mut(h);

            let mut reads = 0i64;
            let mut writes = 0i64;
            let mut bytes_read = 0i64;
            let mut bytes_written = 0i64;
            let (mut rs, mut re, mut ws, mut we) = (f64::MAX, 0.0f64, f64::MAX, 0.0f64);
            let mut read_time = 0.0;
            let mut write_time = 0.0;
            for a in &rec.accesses {
                match a.kind {
                    OpKind::Read => {
                        reads += 1;
                        bytes_read = bytes_read.saturating_add(saturating_i64(a.length));
                        rs = rs.min(a.start);
                        re = re.max(a.end);
                        read_time += a.end - a.start;
                    }
                    OpKind::Write => {
                        writes += 1;
                        bytes_written = bytes_written.saturating_add(saturating_i64(a.length));
                        ws = ws.min(a.start);
                        we = we.max(a.end);
                        write_time += a.end - a.start;
                    }
                }
            }
            out.set(C::Opens, usize_to_i64(rec.opens.len()))
                .set(C::Closes, usize_to_i64(rec.closes.len()))
                .set(C::Reads, reads)
                .set(C::Writes, writes)
                .set(C::BytesRead, bytes_read)
                .set(C::BytesWritten, bytes_written)
                .set(C::SeqReads, reads)
                .set(C::SeqWrites, writes);
            if reads > 0 {
                out.setf(F::ReadStartTimestamp, rs).setf(F::ReadEndTimestamp, re);
                out.setf(F::ReadTime, read_time);
            }
            if writes > 0 {
                out.setf(F::WriteStartTimestamp, ws).setf(F::WriteEndTimestamp, we);
                out.setf(F::WriteTime, write_time);
            }
            if let Some(&first) = rec.opens.first() {
                out.setf(F::OpenStartTimestamp, first);
                out.setf(F::OpenEndTimestamp, rec.opens.iter().cloned().fold(first, f64::max));
            }
            if let Some(&first) = rec.closes.first() {
                out.setf(F::CloseStartTimestamp, first);
                out.setf(F::CloseEndTimestamp, rec.closes.iter().cloned().fold(first, f64::max));
            }
        }
        builder.finish()
    }
}

// ---- MDX binary format ------------------------------------------------

/// MDX file magic.
pub const DXT_MAGIC: &[u8; 8] = b"MOSAICDX";
/// Current MDX version.
pub const DXT_VERSION: u16 = 1;

use crate::limits::{MAX_ACCESSES, MAX_RECORDS};

/// Serialize a DXT trace to MDX bytes (same envelope discipline as MDF:
/// little-endian, CRC-32 footer).
///
/// Convenience wrapper over [`try_to_bytes`]; panics only on a trace that
/// [`from_bytes`] would reject as implausible anyway.
pub fn to_bytes(trace: &DxtTrace) -> Vec<u8> {
    try_to_bytes(trace).expect("trace exceeds MDX wire limits")
}

/// Encode an in-memory length as a `u32` wire field, enforcing `max`.
fn wire_len(len: usize, max: u32, context: &'static str) -> Result<u32, FormatError> {
    u32::try_from(len)
        .ok()
        .filter(|&l| l <= max)
        .ok_or(FormatError::ImplausibleLength { context, len: usize_to_u64(len) })
}

/// Serialize a DXT trace to MDX bytes, reporting oversized fields as typed
/// errors instead of silently truncating their length prefixes.
pub fn try_to_bytes(trace: &DxtTrace) -> Result<Vec<u8>, FormatError> {
    let mut buf = BytesMut::new();
    buf.put_slice(DXT_MAGIC);
    buf.put_u16_le(DXT_VERSION);
    buf.put_u16_le(0);
    let h = trace.header();
    buf.put_u64_le(h.job_id);
    buf.put_u32_le(h.uid);
    buf.put_u32_le(h.nprocs);
    buf.put_i64_le(h.start_time);
    buf.put_i64_le(h.end_time);
    buf.put_u32_le(wire_len(h.exe.len(), u32::MAX, "exe")?);
    buf.put_slice(h.exe.as_bytes());

    buf.put_u32_le(wire_len(trace.records().len(), MAX_RECORDS, "record count")?);
    for rec in trace.records() {
        buf.put_u64_le(rec.record_id);
        buf.put_i32_le(rec.rank);
        buf.put_u32_le(wire_len(rec.accesses.len(), MAX_ACCESSES, "access count")?);
        for a in &rec.accesses {
            buf.put_u8(match a.kind {
                OpKind::Read => 0,
                OpKind::Write => 1,
            });
            buf.put_u64_le(a.offset);
            buf.put_u64_le(a.length);
            buf.put_f64_le(a.start);
            buf.put_f64_le(a.end);
        }
        buf.put_u32_le(wire_len(rec.opens.len(), MAX_ACCESSES, "open count")?);
        for &t in &rec.opens {
            buf.put_f64_le(t);
        }
        buf.put_u32_le(wire_len(rec.closes.len(), MAX_ACCESSES, "close count")?);
        for &t in &rec.closes {
            buf.put_f64_le(t);
        }
    }
    buf.put_u32_le(wire_len(trace.names().len(), MAX_RECORDS, "name count")?);
    for (id, name) in trace.names() {
        buf.put_u64_le(*id);
        let name_len = u16::try_from(name.len()).map_err(|_| FormatError::ImplausibleLength {
            context: "name",
            len: usize_to_u64(name.len()),
        })?;
        buf.put_u16_le(name_len);
        buf.put_slice(name.as_bytes());
    }
    let crc = crate::synthutil::Crc32::checksum(&buf);
    buf.put_u32_le(crc);
    Ok(buf.to_vec())
}

/// Parse MDX bytes.
pub fn from_bytes(data: &[u8]) -> Result<DxtTrace, FormatError> {
    if data.len() < DXT_MAGIC.len() + 8 {
        return Err(FormatError::Truncated { context: "dxt header" });
    }
    if !data.starts_with(DXT_MAGIC) {
        return Err(FormatError::BadMagic);
    }
    let (payload, footer) = data.split_at(data.len() - 4);
    // lint: allow(panic, "footer is the exact 4-byte tail of split_at(len - 4), guarded by the len >= 16 check above")
    let expected = u32::from_le_bytes(footer.try_into().expect("4-byte footer"));
    let actual = crate::synthutil::Crc32::checksum(payload);
    if expected != actual {
        return Err(FormatError::ChecksumMismatch { expected, actual });
    }
    // lint: allow(panic, "payload.len() = data.len() - 4 >= 12 by the header-length guard, so the magic can be sliced off")
    let mut buf = Bytes::copy_from_slice(&payload[8..]);

    let version = need(&mut buf, 2, "version")?.get_u16_le();
    if version > DXT_VERSION {
        return Err(FormatError::UnsupportedVersion(version));
    }
    let _flags = need(&mut buf, 2, "flags")?.get_u16_le();
    let job_id = need(&mut buf, 8, "job_id")?.get_u64_le();
    let uid = need(&mut buf, 4, "uid")?.get_u32_le();
    let nprocs = need(&mut buf, 4, "nprocs")?.get_u32_le();
    let start = need(&mut buf, 8, "start")?.get_i64_le();
    let end = need(&mut buf, 8, "end")?.get_i64_le();
    let exe_len = u32_to_usize(need(&mut buf, 4, "exe len")?.get_u32_le());
    if buf.remaining() < exe_len {
        return Err(FormatError::Truncated { context: "exe" });
    }
    let exe = String::from_utf8(buf.copy_to_bytes(exe_len).to_vec())
        .map_err(|_| FormatError::InvalidUtf8 { context: "exe" })?;
    let header = JobHeader::new(job_id, uid, nprocs, start, end).with_exe(exe);

    let n_records = need(&mut buf, 4, "record count")?.get_u32_le();
    if n_records > MAX_RECORDS {
        return Err(FormatError::ImplausibleLength {
            context: "record count",
            len: u64::from(n_records),
        });
    }
    let mut records = Vec::with_capacity(u32_to_usize(n_records));
    for _ in 0..n_records {
        let record_id = need(&mut buf, 8, "record id")?.get_u64_le();
        let rank = need(&mut buf, 4, "rank")?.get_i32_le();
        let n_acc = need(&mut buf, 4, "access count")?.get_u32_le();
        if n_acc > MAX_ACCESSES {
            return Err(FormatError::ImplausibleLength {
                context: "access count",
                len: u64::from(n_acc),
            });
        }
        let mut accesses = Vec::with_capacity(u32_to_usize(n_acc));
        for _ in 0..n_acc {
            let kind = match need(&mut buf, 1, "access kind")?.get_u8() {
                0 => OpKind::Read,
                1 => OpKind::Write,
                other => return Err(FormatError::UnknownModule(other)),
            };
            let offset = need(&mut buf, 8, "offset")?.get_u64_le();
            let length = need(&mut buf, 8, "length")?.get_u64_le();
            let start = need(&mut buf, 8, "access start")?.get_f64_le();
            let end = need(&mut buf, 8, "access end")?.get_f64_le();
            accesses.push(DxtAccess { kind, offset, length, start, end });
        }
        let mut opens = Vec::new();
        let n_open = need(&mut buf, 4, "open count")?.get_u32_le();
        for _ in 0..n_open.min(MAX_ACCESSES) {
            opens.push(need(&mut buf, 8, "open ts")?.get_f64_le());
        }
        let mut closes = Vec::new();
        let n_close = need(&mut buf, 4, "close count")?.get_u32_le();
        for _ in 0..n_close.min(MAX_ACCESSES) {
            closes.push(need(&mut buf, 8, "close ts")?.get_f64_le());
        }
        records.push(DxtRecord { record_id, rank, accesses, opens, closes });
    }
    let n_names = need(&mut buf, 4, "name count")?.get_u32_le();
    let mut names = BTreeMap::new();
    for _ in 0..n_names.min(MAX_RECORDS) {
        let id = need(&mut buf, 8, "name id")?.get_u64_le();
        let len = usize::from(need(&mut buf, 2, "name len")?.get_u16_le());
        if buf.remaining() < len {
            return Err(FormatError::Truncated { context: "name" });
        }
        let name = String::from_utf8(buf.copy_to_bytes(len).to_vec())
            .map_err(|_| FormatError::InvalidUtf8 { context: "name" })?;
        names.insert(id, name);
    }
    Ok(DxtTrace::from_parts(header, records, names))
}

fn need<'b>(
    buf: &'b mut Bytes,
    n: usize,
    context: &'static str,
) -> Result<&'b mut Bytes, FormatError> {
    if buf.remaining() < n {
        return Err(FormatError::Truncated { context });
    }
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A file held open the whole run with 5 evenly spaced slab writes —
    /// the §IV-A scenario: aggregation hides the periodicity.
    fn slab_trace() -> DxtTrace {
        let header = JobHeader::new(9, 100, 4, 0, 1000).with_exe("/apps/stream");
        let accesses: Vec<DxtAccess> = (0..5)
            .map(|i| DxtAccess {
                kind: OpKind::Write,
                offset: i * 1000,
                length: 1000,
                start: 100.0 + 200.0 * i as f64,
                end: 105.0 + 200.0 * i as f64,
            })
            .collect();
        let rec = DxtRecord {
            record_id: crate::synthutil::record_id("/out"),
            rank: 0,
            accesses,
            opens: vec![1.0],
            closes: vec![999.0],
        };
        let names = [(rec.record_id, "/out".to_owned())].into_iter().collect();
        DxtTrace::from_parts(header, vec![rec], names)
    }

    #[test]
    fn exact_view_exposes_each_access() {
        let view = slab_trace().operation_view();
        assert_eq!(view.writes.len(), 5);
        assert_eq!(view.writes[0].start, 100.0);
        assert_eq!(view.writes[4].end, 905.0);
        assert_eq!(view.total_bytes(OpKind::Write), 5000);
        assert_eq!(view.meta.len(), 2);
    }

    #[test]
    fn aggregation_smears_to_one_interval() {
        let log = slab_trace().to_aggregated();
        assert_eq!(log.records().len(), 1);
        let r = &log.records()[0];
        assert_eq!(r.get(C::Writes), 5);
        assert_eq!(r.get(C::BytesWritten), 5000);
        // One smeared interval — the information DXT preserves is gone.
        assert_eq!(r.write_interval(), Some((100.0, 905.0)));
        assert!(crate::validate::validate(&log).is_clean());
    }

    #[test]
    fn mdx_roundtrip() {
        let trace = slab_trace();
        let bytes = to_bytes(&trace);
        let parsed = from_bytes(&bytes).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn mdx_rejects_corruption() {
        let bytes = to_bytes(&slab_trace());
        // Truncation (the exact error variant depends on where the cut
        // lands; the essential property is rejection).
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(from_bytes(&flipped).is_err());
        let mut bad_magic = bytes;
        bad_magic[0] = b'X';
        assert_eq!(from_bytes(&bad_magic).unwrap_err(), FormatError::BadMagic);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace =
            DxtTrace::from_parts(JobHeader::new(1, 1, 1, 0, 10), Vec::new(), BTreeMap::new());
        assert_eq!(from_bytes(&to_bytes(&trace)).unwrap(), trace);
        assert_eq!(trace.total_accesses(), 0);
        assert!(trace.operation_view().writes.is_empty());
    }

    #[test]
    fn mixed_read_write_record_aggregates_both_directions() {
        let header = JobHeader::new(2, 1, 2, 0, 100);
        let id = crate::synthutil::record_id("/rw");
        let rec = DxtRecord {
            record_id: id,
            rank: 1,
            accesses: vec![
                DxtAccess { kind: OpKind::Read, offset: 0, length: 10, start: 1.0, end: 2.0 },
                DxtAccess { kind: OpKind::Write, offset: 0, length: 20, start: 3.0, end: 4.0 },
                DxtAccess { kind: OpKind::Read, offset: 10, length: 30, start: 5.0, end: 6.0 },
            ],
            opens: vec![0.5],
            closes: vec![7.0],
        };
        let names = [(id, "/rw".to_owned())].into_iter().collect();
        let trace = DxtTrace::from_parts(header, vec![rec], names);
        let log = trace.to_aggregated();
        let r = &log.records()[0];
        assert_eq!(r.get(C::Reads), 2);
        assert_eq!(r.get(C::BytesRead), 40);
        assert_eq!(r.read_interval(), Some((1.0, 6.0)));
        assert_eq!(r.write_interval(), Some((3.0, 4.0)));
    }
}
