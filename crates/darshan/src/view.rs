//! Borrowed, zero-copy views over MDF wire bytes.
//!
//! [`crate::mdf::from_bytes`] materializes an owned [`TraceLog`] — a
//! `String` for the exe, a `Vec<PosixRecord>` and a `BTreeMap` name table —
//! on every parse, even for traces that validation will evict a microsecond
//! later. [`TraceView::parse`] instead performs the *same* structural
//! verification (byte-for-byte identical accept/reject decisions and error
//! precedence, pinned by the `zerocopy_agreement` property tests) but keeps
//! everything borrowed:
//!
//! * header fields are decoded to scalars, the exe stays a `&str` into the
//!   input buffer;
//! * the record array stays a raw `&[u8]` walked through fixed-offset
//!   [`RecordView`] accessors — a record is only decoded (to a stack
//!   [`PosixRecord`], still heap-free) when validation or extraction needs
//!   it;
//! * the name table is reduced to a sorted id list (validation only needs
//!   membership) plus the raw region for the rare full materialization.
//!
//! The ownership rule for everything downstream: a `TraceView` borrows the
//! wire buffer and must not outlive it; anything that survives the trace
//! (reports, app keys) is copied out at the last moment.

use crate::convert::{u32_to_usize, usize_to_u64};
use crate::counter::{Module, PosixCounter, PosixFCounter, N_POSIX_COUNTERS};
use crate::error::FormatError;
use crate::job::JobHeader;
use crate::limits::{MAX_EXE_LEN, MAX_NAMES, MAX_RECORDS};
use crate::log::TraceLog;
use crate::mdf::{MAGIC, RECORD_WIRE_BYTES, VERSION};
use crate::record::{PosixRecord, SHARED_RANK};
use crate::synthutil::Crc32;
use crate::validate::{check_header_fields, check_record, ValidityReport};
use crate::ValidityError;
use std::collections::BTreeMap;

/// Byte offset of the counter array inside one wire record.
const COUNTERS_OFF: usize = 8 + 4 + 1;
/// Byte offset of the fcounter array inside one wire record.
const FCOUNTERS_OFF: usize = COUNTERS_OFF + N_POSIX_COUNTERS * 8;
/// Minimum wire size of one name-table entry (id + length prefix).
const NAME_WIRE_MIN_BYTES: usize = 8 + 2;

/// A borrowing cursor over the payload, mirroring the owned parser's
/// `Bytes` getters: every read names the field it was after, so truncation
/// errors carry the same context strings.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], FormatError> {
        if self.buf.len() < n {
            return Err(FormatError::Truncated { context });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, FormatError> {
        Ok(le_u16(self.take(2, context)?, 0))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, FormatError> {
        Ok(le_u32(self.take(4, context)?, 0))
    }

    fn i64(&mut self, context: &'static str) -> Result<i64, FormatError> {
        Ok(le_i64(self.take(8, context)?, 0))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, FormatError> {
        Ok(le_u64(self.take(8, context)?, 0))
    }

    fn str(&mut self, len: usize, context: &'static str) -> Result<&'a str, FormatError> {
        let raw = self.take(len, context)?;
        std::str::from_utf8(raw).map_err(|_| FormatError::InvalidUtf8 { context })
    }
}

// Fixed-width little-endian readers. Callers guarantee `off + size` is in
// bounds (cursor takes and record strides are length-checked structurally),
// so the slice indexing below cannot fire on any input that reached them.

fn le_u8(b: &[u8], off: usize) -> u8 {
    // lint: allow(panic, "callers pass offsets inside a length-checked take/stride")
    b[off]
}

fn le_u16(b: &[u8], off: usize) -> u16 {
    let mut a = [0u8; 2];
    // lint: allow(panic, "callers pass offsets inside a length-checked take/stride")
    a.copy_from_slice(&b[off..off + 2]);
    u16::from_le_bytes(a)
}

fn le_u32(b: &[u8], off: usize) -> u32 {
    let mut a = [0u8; 4];
    // lint: allow(panic, "callers pass offsets inside a length-checked take/stride")
    a.copy_from_slice(&b[off..off + 4]);
    u32::from_le_bytes(a)
}

fn le_i32(b: &[u8], off: usize) -> i32 {
    let mut a = [0u8; 4];
    // lint: allow(panic, "callers pass offsets inside a length-checked take/stride")
    a.copy_from_slice(&b[off..off + 4]);
    i32::from_le_bytes(a)
}

fn le_u64(b: &[u8], off: usize) -> u64 {
    let mut a = [0u8; 8];
    // lint: allow(panic, "callers pass offsets inside a length-checked take/stride")
    a.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(a)
}

fn le_i64(b: &[u8], off: usize) -> i64 {
    let mut a = [0u8; 8];
    // lint: allow(panic, "callers pass offsets inside a length-checked take/stride")
    a.copy_from_slice(&b[off..off + 8]);
    i64::from_le_bytes(a)
}

fn le_f64(b: &[u8], off: usize) -> f64 {
    let mut a = [0u8; 8];
    // lint: allow(panic, "callers pass offsets inside a length-checked take/stride")
    a.copy_from_slice(&b[off..off + 8]);
    f64::from_le_bytes(a)
}

/// One wire record, viewed in place.
///
/// Wraps exactly [`RECORD_WIRE_BYTES`] bytes of a structurally verified
/// record array; all accessors are fixed-offset little-endian reads.
#[derive(Clone, Copy)]
pub struct RecordView<'a> {
    data: &'a [u8],
}

impl<'a> RecordView<'a> {
    /// Stable hash of the file path.
    #[inline]
    pub fn record_id(&self) -> u64 {
        le_u64(self.data, 0)
    }

    /// Rank that produced the record, or [`SHARED_RANK`].
    #[inline]
    pub fn rank(&self) -> i32 {
        le_i32(self.data, 8)
    }

    /// The raw module tag byte (verified known at parse time).
    #[inline]
    pub fn module_tag(&self) -> u8 {
        le_u8(self.data, 12)
    }

    /// The module, decoded from the (parse-verified) tag.
    #[inline]
    pub fn module(&self) -> Module {
        // The tag was checked by `TraceView::parse`; an unknown tag cannot
        // reach here, so the fallback is unreachable rather than lossy.
        Module::from_tag(self.module_tag()).unwrap_or(Module::Posix)
    }

    /// Read an integer counter.
    #[inline]
    pub fn get(&self, c: PosixCounter) -> i64 {
        le_i64(self.data, COUNTERS_OFF + c.index() * 8)
    }

    /// Read a float counter.
    #[inline]
    pub fn getf(&self, c: PosixFCounter) -> f64 {
        le_f64(self.data, FCOUNTERS_OFF + c.index() * 8)
    }

    /// Number of ranks this record stands for (mirrors
    /// [`PosixRecord::rank_count`]).
    #[inline]
    pub fn rank_count(&self, nprocs: u32) -> u32 {
        if self.rank() == SHARED_RANK {
            nprocs
        } else {
            1
        }
    }

    /// Bytes read by this record.
    #[inline]
    pub fn bytes_read(&self) -> i64 {
        self.get(PosixCounter::BytesRead)
    }

    /// Bytes written by this record.
    #[inline]
    pub fn bytes_written(&self) -> i64 {
        self.get(PosixCounter::BytesWritten)
    }

    /// `true` if the record observed any read activity (mirrors
    /// [`PosixRecord::has_reads`]: both an op count and a byte volume).
    #[inline]
    pub fn has_reads(&self) -> bool {
        self.get(PosixCounter::Reads) > 0 && self.bytes_read() > 0
    }

    /// `true` if the record observed any write activity.
    #[inline]
    pub fn has_writes(&self) -> bool {
        self.get(PosixCounter::Writes) > 0 && self.bytes_written() > 0
    }

    /// The read-activity interval, if any (mirrors
    /// [`PosixRecord::read_interval`]).
    pub fn read_interval(&self) -> Option<(f64, f64)> {
        if self.has_reads() {
            Some((
                self.getf(PosixFCounter::ReadStartTimestamp),
                self.getf(PosixFCounter::ReadEndTimestamp),
            ))
        } else {
            None
        }
    }

    /// The write-activity interval, if any.
    pub fn write_interval(&self) -> Option<(f64, f64)> {
        if self.has_writes() {
            Some((
                self.getf(PosixFCounter::WriteStartTimestamp),
                self.getf(PosixFCounter::WriteEndTimestamp),
            ))
        } else {
            None
        }
    }

    /// Decode to an owned record — stack-only, no heap allocation; the
    /// arrays are copied straight out of the wire bytes.
    pub fn decode(&self) -> PosixRecord {
        let mut rec = PosixRecord::new(self.record_id(), self.rank());
        rec.module = self.module();
        for (i, c) in rec.counters.iter_mut().enumerate() {
            *c = le_i64(self.data, COUNTERS_OFF + i * 8);
        }
        for (i, c) in rec.fcounters.iter_mut().enumerate() {
            *c = le_f64(self.data, FCOUNTERS_OFF + i * 8);
        }
        rec
    }
}

/// A structurally verified MDF trace, borrowed from its wire buffer.
///
/// Produced by [`TraceView::parse`], which accepts and rejects exactly the
/// inputs [`crate::mdf::from_bytes`] does — same errors, same precedence —
/// without materializing records or the name table.
pub struct TraceView<'a> {
    /// Scheduler job identifier.
    pub job_id: u64,
    /// Numeric user id that ran the job.
    pub uid: u32,
    /// Number of MPI processes (ranks).
    pub nprocs: u32,
    /// Job start, Unix seconds.
    pub start_time: i64,
    /// Job end, Unix seconds.
    pub end_time: i64,
    /// Executable command line, borrowed from the wire buffer.
    pub exe: &'a str,
    records: &'a [u8],
    n_records: usize,
    /// Sorted record ids present in the name table (membership only — the
    /// path strings stay on the wire).
    name_ids: Vec<u64>,
    names_raw: &'a [u8],
    n_names: usize,
}

impl<'a> TraceView<'a> {
    /// Parse MDF bytes into a borrowed view.
    ///
    /// The structural pass — magic, checksum, header decoding, bomb guards,
    /// per-record module tags, name-table shape, trailing-byte check — is
    /// identical to [`crate::mdf::from_bytes`]; only the materialization is
    /// skipped.
    pub fn parse(data: &'a [u8]) -> Result<TraceView<'a>, FormatError> {
        if data.len() < MAGIC.len() + 4 + 4 {
            return Err(FormatError::Truncated { context: "file header" });
        }
        if !data.starts_with(MAGIC) {
            return Err(FormatError::BadMagic);
        }
        let (payload, footer) = data.split_at(data.len() - 4);
        let expected = le_u32(footer, 0);
        let actual = Crc32::checksum(payload);
        if expected != actual {
            return Err(FormatError::ChecksumMismatch { expected, actual });
        }

        // lint: allow(panic, "payload.len() = data.len() - 4 >= 12 by the header-length guard, so the magic can be sliced off")
        let mut cur = Cursor { buf: &payload[8..] };
        let version = cur.u16("version")?;
        if version > VERSION {
            return Err(FormatError::UnsupportedVersion(version));
        }
        let _flags = cur.u16("flags")?;

        let job_id = cur.u64("job_id")?;
        let uid = cur.u32("uid")?;
        let nprocs = cur.u32("nprocs")?;
        let start_time = cur.i64("start_time")?;
        let end_time = cur.i64("end_time")?;
        let exe_len = cur.u32("exe length")?;
        if exe_len > MAX_EXE_LEN {
            return Err(FormatError::ImplausibleLength { context: "exe", len: u64::from(exe_len) });
        }
        let exe = cur.str(u32_to_usize(exe_len), "exe")?;

        let n_records = cur.u32("record count")?;
        if n_records > MAX_RECORDS {
            return Err(FormatError::ImplausibleLength {
                context: "record count",
                len: u64::from(n_records),
            });
        }
        // Same pre-allocation bomb guard as the owned parser: a claimed
        // count the remaining payload cannot hold is rejected up front.
        if u64::from(n_records) * usize_to_u64(RECORD_WIRE_BYTES) > usize_to_u64(cur.remaining()) {
            return Err(FormatError::Truncated { context: "record array" });
        }
        let n_records = u32_to_usize(n_records);
        // Cannot overflow: the product fit inside `remaining` above.
        let records = cur.take(n_records * RECORD_WIRE_BYTES, "record array")?;
        // The owned parser rejects unknown module tags record by record;
        // walking the tag bytes here keeps the accept set identical.
        for i in 0..n_records {
            let tag = le_u8(records, i * RECORD_WIRE_BYTES + 12);
            if Module::from_tag(tag).is_none() {
                return Err(FormatError::UnknownModule(tag));
            }
        }

        let n_names = cur.u32("name count")?;
        if n_names > MAX_NAMES {
            return Err(FormatError::ImplausibleLength {
                context: "name count",
                len: u64::from(n_names),
            });
        }
        if u64::from(n_names) * usize_to_u64(NAME_WIRE_MIN_BYTES) > usize_to_u64(cur.remaining()) {
            return Err(FormatError::Truncated { context: "name table" });
        }
        let n_names = u32_to_usize(n_names);
        let names_region = cur.buf;
        let mut name_ids = Vec::with_capacity(n_names);
        for _ in 0..n_names {
            let id = cur.u64("name id")?;
            let len = usize::from(cur.u16("name length")?);
            let _name = cur.str(len, "name")?;
            name_ids.push(id);
        }
        // lint: allow(panic, "the cursor only shrinks, so the consumed prefix length is <= names_region.len()")
        let names_raw = &names_region[..names_region.len() - cur.remaining()];
        if cur.remaining() > 0 {
            return Err(FormatError::ImplausibleLength {
                context: "trailing bytes",
                len: usize_to_u64(cur.remaining()),
            });
        }
        name_ids.sort_unstable();
        Ok(TraceView {
            job_id,
            uid,
            nprocs,
            start_time,
            end_time,
            exe,
            records,
            n_records,
            name_ids,
            names_raw,
            n_names,
        })
    }

    /// Number of records on the wire.
    #[inline]
    pub fn n_records(&self) -> usize {
        self.n_records
    }

    /// View of record `i`. Returns `None` past the end.
    #[inline]
    pub fn record(&self, i: usize) -> Option<RecordView<'a>> {
        if i >= self.n_records {
            return None;
        }
        let off = i * RECORD_WIRE_BYTES;
        Some(RecordView { data: &self.records[off..off + RECORD_WIRE_BYTES] })
    }

    /// Iterate over all record views.
    pub fn records(&self) -> impl Iterator<Item = RecordView<'a>> + '_ {
        self.records.chunks_exact(RECORD_WIRE_BYTES).map(|data| RecordView { data })
    }

    /// `true` when the name table has an entry for `record_id`.
    #[inline]
    pub fn has_name(&self, record_id: u64) -> bool {
        self.name_ids.binary_search(&record_id).is_ok()
    }

    /// Number of name-table entries on the wire (duplicates included).
    #[inline]
    pub fn n_names(&self) -> usize {
        self.n_names
    }

    /// Wallclock runtime in seconds (mirrors [`JobHeader::runtime`]).
    #[inline]
    pub fn runtime(&self) -> f64 {
        (self.end_time - self.start_time) as f64
    }

    /// Application name (mirrors [`JobHeader::app_name`]), borrowed.
    pub fn app_name(&self) -> &'a str {
        crate::job::app_name_of(self.exe)
    }

    /// The `(uid, app_name)` dedup key (mirrors [`JobHeader::app_key`]).
    pub fn app_key(&self) -> (u32, String) {
        (self.uid, self.app_name().to_owned())
    }

    /// Materialize the owned [`TraceLog`] this view verifies. Exactly what
    /// [`crate::mdf::from_bytes`] would have produced — used by tests and by
    /// callers that need the name strings after all.
    pub fn to_log(&self) -> TraceLog {
        let header =
            JobHeader::new(self.job_id, self.uid, self.nprocs, self.start_time, self.end_time)
                .with_exe(self.exe);
        let records: Vec<PosixRecord> = self.records().map(|r| r.decode()).collect();
        let mut names = BTreeMap::new();
        let mut cur = Cursor { buf: self.names_raw };
        for _ in 0..self.n_names {
            // The region was fully verified by `parse`; re-walking it cannot
            // fail, and the `if let` keeps the panic path out anyway.
            if let (Ok(id), Ok(len)) = (cur.u64("name id"), cur.u16("name length")) {
                if let Ok(name) = cur.str(usize::from(len), "name") {
                    names.insert(id, name.to_owned());
                }
            }
        }
        TraceLog::from_parts(header, records, names)
    }
}

/// Validate a borrowed trace, mirroring [`crate::validate::validate`] rule
/// for rule: header invariants, per-record checks in record order, and the
/// name-table membership check appended after the record rules.
pub fn validate_view(view: &TraceView<'_>) -> ValidityReport {
    let runtime = view.runtime();
    let nprocs = view.nprocs;
    let header_errors = check_header_fields(runtime, nprocs);
    let mut record_errors = Vec::new();
    for (i, rec) in view.records().enumerate() {
        let decoded = rec.decode();
        let mut errs = check_record(&decoded, runtime, nprocs);
        if !view.has_name(decoded.record_id) {
            errs.push(ValidityError::MissingName);
        }
        if !errs.is_empty() {
            record_errors.push((i, errs));
        }
    }
    ValidityReport { header_errors, record_errors, records_checked: view.n_records() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PosixCounter as C;
    use crate::counter::PosixFCounter as F;
    use crate::log::TraceLogBuilder;
    use crate::mdf;
    use crate::validate;

    fn sample() -> TraceLog {
        let mut b = TraceLogBuilder::new(
            JobHeader::new(99, 1234, 256, 1_500_000_000, 1_500_007_200)
                .with_exe("/apps/milc/su3_rmd in.milc"),
        );
        for i in 0..5 {
            let r = b.begin_record(&format!("/scratch/file.{i}"), if i == 0 { -1 } else { i });
            b.record_mut(r)
                .set(C::Reads, i as i64 * 10)
                .set(C::BytesRead, i as i64 * 1024)
                .set(C::Opens, 2)
                .setf(F::ReadStartTimestamp, i as f64)
                .setf(F::ReadEndTimestamp, i as f64 + 0.5);
        }
        b.finish()
    }

    #[test]
    fn view_roundtrip_matches_owned_parser() {
        let log = sample();
        let bytes = mdf::to_bytes(&log);
        let view = TraceView::parse(&bytes).unwrap();
        assert_eq!(view.to_log(), mdf::from_bytes(&bytes).unwrap());
        assert_eq!(view.n_records(), log.records().len());
        assert_eq!(view.exe, log.header().exe);
        assert_eq!(view.app_key(), log.header().app_key());
        assert_eq!(view.runtime(), log.header().runtime());
    }

    #[test]
    fn record_views_decode_identically() {
        let log = sample();
        let bytes = mdf::to_bytes(&log);
        let view = TraceView::parse(&bytes).unwrap();
        for (owned, borrowed) in log.records().iter().zip(view.records()) {
            assert_eq!(&borrowed.decode(), owned);
            assert_eq!(borrowed.record_id(), owned.record_id);
            assert_eq!(borrowed.rank(), owned.rank);
            assert_eq!(borrowed.read_interval(), owned.read_interval());
            assert_eq!(borrowed.write_interval(), owned.write_interval());
            assert_eq!(borrowed.rank_count(256), owned.rank_count(256));
        }
    }

    #[test]
    fn errors_match_owned_parser_on_corrupted_inputs() {
        let bytes = mdf::to_bytes(&sample());
        // Truncations at every prefix length must agree exactly.
        for cut in 0..bytes.len() {
            let owned = mdf::from_bytes(&bytes[..cut]);
            let borrowed = TraceView::parse(&bytes[..cut]).map(|_| ());
            assert_eq!(borrowed, owned.map(|_| ()), "cut at {cut}");
        }
        // Bit flips anywhere must agree (checksum mismatch, mostly).
        for pos in (0..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x20;
            let owned = mdf::from_bytes(&corrupt).map(|_| ());
            let borrowed = TraceView::parse(&corrupt).map(|_| ());
            assert_eq!(borrowed, owned, "flip at {pos}");
        }
    }

    #[test]
    fn validate_view_matches_owned_validate() {
        // A log exercising several validity rules at once.
        let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 4, 0, 100).with_exe("/bin/a"));
        let good = b.begin_record("/good", 0);
        b.record_mut(good)
            .set(C::Reads, 1)
            .set(C::BytesRead, 10)
            .setf(F::ReadStartTimestamp, 1.0)
            .setf(F::ReadEndTimestamp, 2.0);
        let bad = b.begin_record("/bad", 9); // rank out of range
        b.record_mut(bad).set(C::BytesRead, -5); // negative bytes too
        let late = b.begin_record("/late", 1);
        b.record_mut(late).setf(F::CloseEndTimestamp, 500.0); // beyond runtime
        let log = b.finish();
        let bytes = mdf::to_bytes(&log);

        let view = TraceView::parse(&bytes).unwrap();
        assert_eq!(validate_view(&view), validate::validate(&log));
    }

    #[test]
    fn missing_name_is_flagged_in_record_order() {
        // Hand-assemble a log whose record has no name-table entry.
        let header = JobHeader::new(1, 1, 4, 0, 100);
        let mut rec = PosixRecord::new(42, 0);
        rec.set(C::Opens, 1);
        let log = TraceLog::from_parts(header, vec![rec], BTreeMap::new());
        let bytes = mdf::to_bytes(&log);
        let view = TraceView::parse(&bytes).unwrap();
        let report = validate_view(&view);
        assert_eq!(report, validate::validate(&log));
        assert!(report.record_errors[0].1.contains(&ValidityError::MissingName));
        assert!(!view.has_name(42));
    }

    #[test]
    fn empty_log_view() {
        let log = TraceLogBuilder::new(JobHeader::new(0, 0, 0, 0, 0)).finish();
        let bytes = mdf::to_bytes(&log);
        let view = TraceView::parse(&bytes).unwrap();
        assert_eq!(view.n_records(), 0);
        assert_eq!(view.n_names(), 0);
        assert_eq!(view.exe, "");
        assert!(view.record(0).is_none());
        assert_eq!(view.to_log(), log);
        // Header errors (zero runtime, zero procs) agree with the owned path.
        assert_eq!(validate_view(&view), validate::validate(&log));
    }

    #[test]
    fn borrowed_exe_points_into_the_input() {
        let log = sample();
        let bytes = mdf::to_bytes(&log);
        let view = TraceView::parse(&bytes).unwrap();
        let buf_range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(buf_range.contains(&(view.exe.as_ptr() as usize)), "exe must be zero-copy");
    }
}
