//! The *operation view*: timed read/write intervals and metadata events
//! extracted from a trace.
//!
//! MOSAIC's algorithms (merging, segmentation, temporality, metadata
//! analysis) do not consume raw counters; they consume, per trace,
//!
//! * a list of **read operations** and a list of **write operations** — each
//!   an aggregated `[start, end]` interval with a byte volume and the number
//!   of ranks involved (this is all Darshan preserves between a file's open
//!   and close), and
//! * a list of **metadata events** — `OPEN`/`CLOSE`/`SEEK`/`STAT` requests
//!   with timestamps. Darshan does not timestamp seeks, so, following the
//!   paper (§III-B3c), seeks are co-located with the record's opens.
//!
//! [`OperationView::from_log`] performs that extraction.

use crate::convert::nonneg_u64;
use crate::counter::{PosixCounter as C, PosixFCounter as F};
use crate::log::TraceLog;
use crate::record::PosixRecord;
use serde::{Deserialize, Serialize};

/// Direction of a data operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Data flowing from storage to the application.
    Read,
    /// Data flowing from the application to storage.
    Write,
}

impl OpKind {
    /// Lowercase label used in categories and reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
        }
    }
}

/// One aggregated data operation: everything a trace knows about the
/// activity of one direction of one record, or (after merging) of several
/// records fused together.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// Read or write.
    pub kind: OpKind,
    /// Start, seconds relative to job start.
    pub start: f64,
    /// End, seconds relative to job start. Always `>= start` in valid data.
    pub end: f64,
    /// Bytes moved.
    pub bytes: u64,
    /// Number of ranks participating.
    pub ranks: u32,
}

impl Operation {
    /// Duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// `true` if the two operations overlap in time (closed intervals).
    #[inline]
    pub fn overlaps(&self, other: &Operation) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Gap between the end of `self` and the start of a later operation
    /// (negative if they overlap).
    #[inline]
    pub fn gap_to(&self, later: &Operation) -> f64 {
        later.start - self.end
    }
}

/// Kind of metadata request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetaKind {
    /// `open()` requests.
    Open,
    /// `close()` requests.
    Close,
    /// `lseek()` requests (co-located with opens, per the paper).
    Seek,
    /// `stat()` requests.
    Stat,
}

/// A burst of metadata requests hitting the metadata server at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetaEvent {
    /// Seconds relative to job start.
    pub time: f64,
    /// Request kind.
    pub kind: MetaKind,
    /// Number of requests in the burst.
    pub count: u64,
}

/// The operation view of one trace: what MOSAIC's categorizer consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperationView {
    /// Job wallclock runtime in seconds.
    pub runtime: f64,
    /// Number of processes in the job.
    pub nprocs: u32,
    /// Read operations, sorted by start time.
    pub reads: Vec<Operation>,
    /// Write operations, sorted by start time.
    pub writes: Vec<Operation>,
    /// Metadata events, sorted by time.
    pub meta: Vec<MetaEvent>,
}

impl OperationView {
    /// Extract the operation view from a trace.
    ///
    /// * Each record with read activity contributes one read [`Operation`]
    ///   over `[READ_START_TIMESTAMP, READ_END_TIMESTAMP]`; writes likewise.
    /// * Opens (plus co-located seeks and stats) become a [`MetaEvent`] at
    ///   the record's `OPEN_START_TIMESTAMP`; closes one at
    ///   `CLOSE_END_TIMESTAMP`.
    pub fn from_log(log: &TraceLog) -> OperationView {
        let nprocs = log.header().nprocs;
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let mut meta = Vec::new();
        for rec in log.records() {
            Self::push_record(rec, nprocs, &mut reads, &mut writes, &mut meta);
        }
        reads.sort_by(|a, b| a.start.total_cmp(&b.start));
        writes.sort_by(|a, b| a.start.total_cmp(&b.start));
        meta.sort_by(|a, b| a.time.total_cmp(&b.time));
        OperationView { runtime: log.header().runtime(), nprocs, reads, writes, meta }
    }

    fn push_record(
        rec: &PosixRecord,
        nprocs: u32,
        reads: &mut Vec<Operation>,
        writes: &mut Vec<Operation>,
        meta: &mut Vec<MetaEvent>,
    ) {
        let ranks = rec.rank_count(nprocs);
        if let Some((start, end)) = rec.read_interval() {
            reads.push(Operation {
                kind: OpKind::Read,
                start,
                end,
                bytes: nonneg_u64(rec.bytes_read()),
                ranks,
            });
        }
        if let Some((start, end)) = rec.write_interval() {
            writes.push(Operation {
                kind: OpKind::Write,
                start,
                end,
                bytes: nonneg_u64(rec.bytes_written()),
                ranks,
            });
        }
        let opens = nonneg_u64(rec.get(C::Opens));
        if opens > 0 {
            meta.push(MetaEvent {
                time: rec.getf(F::OpenStartTimestamp),
                kind: MetaKind::Open,
                count: opens,
            });
        }
        // Darshan does not timestamp seeks: co-locate them (and stats) with
        // the record's opens, as the paper does.
        let seeks = nonneg_u64(rec.get(C::Seeks));
        if seeks > 0 {
            meta.push(MetaEvent {
                time: rec.getf(F::OpenStartTimestamp),
                kind: MetaKind::Seek,
                count: seeks,
            });
        }
        let stats = nonneg_u64(rec.get(C::Stats));
        if stats > 0 {
            meta.push(MetaEvent {
                time: rec.getf(F::OpenStartTimestamp),
                kind: MetaKind::Stat,
                count: stats,
            });
        }
        let closes = nonneg_u64(rec.get(C::Closes));
        if closes > 0 {
            meta.push(MetaEvent {
                time: rec.getf(F::CloseEndTimestamp),
                kind: MetaKind::Close,
                count: closes,
            });
        }
    }

    /// Operations of one direction.
    #[inline]
    pub fn ops(&self, kind: OpKind) -> &[Operation] {
        match kind {
            OpKind::Read => &self.reads,
            OpKind::Write => &self.writes,
        }
    }

    /// Total bytes moved in one direction.
    pub fn total_bytes(&self, kind: OpKind) -> u64 {
        self.ops(kind).iter().map(|o| o.bytes).sum()
    }

    /// Total metadata requests.
    pub fn total_meta_requests(&self) -> u64 {
        self.meta.iter().map(|e| e.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobHeader;
    use crate::log::TraceLogBuilder;

    fn log() -> TraceLog {
        let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 8, 0, 1000));
        let r = b.begin_record("/in", -1);
        b.record_mut(r)
            .set(C::Reads, 8)
            .set(C::BytesRead, 800)
            .set(C::Opens, 8)
            .set(C::Seeks, 16)
            .set(C::Closes, 8)
            .setf(F::OpenStartTimestamp, 1.0)
            .setf(F::ReadStartTimestamp, 2.0)
            .setf(F::ReadEndTimestamp, 4.0)
            .setf(F::CloseEndTimestamp, 5.0);
        let w = b.begin_record("/out", 3);
        b.record_mut(w)
            .set(C::Writes, 1)
            .set(C::BytesWritten, 300)
            .set(C::Opens, 1)
            .setf(F::OpenStartTimestamp, 900.0)
            .setf(F::WriteStartTimestamp, 901.0)
            .setf(F::WriteEndTimestamp, 950.0);
        b.finish()
    }

    #[test]
    fn extraction_splits_reads_and_writes() {
        let v = OperationView::from_log(&log());
        assert_eq!(v.reads.len(), 1);
        assert_eq!(v.writes.len(), 1);
        assert_eq!(v.reads[0].bytes, 800);
        assert_eq!(v.reads[0].ranks, 8); // shared record expands to nprocs
        assert_eq!(v.writes[0].ranks, 1);
        assert_eq!(v.runtime, 1000.0);
    }

    #[test]
    fn meta_events_colocate_seeks_with_opens() {
        let v = OperationView::from_log(&log());
        let opens: Vec<_> = v.meta.iter().filter(|e| e.kind == MetaKind::Open).collect();
        let seeks: Vec<_> = v.meta.iter().filter(|e| e.kind == MetaKind::Seek).collect();
        assert_eq!(opens.len(), 2);
        assert_eq!(seeks.len(), 1);
        assert_eq!(seeks[0].time, 1.0); // same instant as the open burst
        assert_eq!(v.total_meta_requests(), 8 + 16 + 8 + 1);
    }

    #[test]
    fn views_are_sorted_by_time() {
        let v = OperationView::from_log(&log());
        assert!(v.meta.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn operation_geometry_helpers() {
        let a = Operation { kind: OpKind::Read, start: 0.0, end: 2.0, bytes: 1, ranks: 1 };
        let b = Operation { kind: OpKind::Read, start: 1.0, end: 3.0, bytes: 1, ranks: 1 };
        let c = Operation { kind: OpKind::Read, start: 5.0, end: 6.0, bytes: 1, ranks: 1 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert_eq!(a.gap_to(&c), 3.0);
        assert!(a.gap_to(&b) < 0.0);
        assert_eq!(c.duration(), 1.0);
    }

    #[test]
    fn total_bytes_by_direction() {
        let v = OperationView::from_log(&log());
        assert_eq!(v.total_bytes(OpKind::Read), 800);
        assert_eq!(v.total_bytes(OpKind::Write), 300);
    }
}
