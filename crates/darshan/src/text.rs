//! `darshan-parser`-style text format.
//!
//! Real workflows often operate on the output of `darshan-parser`, a
//! line-oriented dump: a commented header followed by one
//! `<module>\t<rank>\t<record id>\t<counter>\t<value>\t<path>` line per
//! non-zero counter. This module emits and parses that shape so traces are
//! inspectable with standard Unix tools and so the parsing cost can be
//! benchmarked against the binary MDF path.

use crate::counter::{Module, PosixCounter, PosixFCounter};
use crate::error::FormatError;
use crate::job::JobHeader;
use crate::log::TraceLog;
use crate::record::PosixRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serialize a trace to the text format.
pub fn to_text(log: &TraceLog) -> String {
    let h = log.header();
    let mut out = String::new();
    let _ = writeln!(out, "# darshan log version: mdf-{}", crate::mdf::VERSION);
    let _ = writeln!(out, "# exe: {}", h.exe);
    let _ = writeln!(out, "# uid: {}", h.uid);
    let _ = writeln!(out, "# jobid: {}", h.job_id);
    let _ = writeln!(out, "# nprocs: {}", h.nprocs);
    let _ = writeln!(out, "# start_time: {}", h.start_time);
    let _ = writeln!(out, "# end_time: {}", h.end_time);
    for rec in log.records() {
        let path = log.path_of(rec.record_id).unwrap_or("<unknown>");
        let module = rec.module.name();
        for c in PosixCounter::ALL {
            let v = rec.get(c);
            if v != 0 {
                let _ = writeln!(
                    out,
                    "{module}\t{}\t{}\t{}\t{v}\t{path}",
                    rec.rank,
                    rec.record_id,
                    c.name()
                );
            }
        }
        for c in PosixFCounter::ALL {
            let v = rec.getf(c);
            if v != 0.0 {
                let _ = writeln!(
                    out,
                    "{module}\t{}\t{}\t{}\t{v}\t{path}",
                    rec.rank,
                    rec.record_id,
                    c.name()
                );
            }
        }
    }
    out
}

/// Parse the text format back into a [`TraceLog`].
///
/// Counter lines for the same `(record id, rank)` pair are accumulated into
/// one record, in first-appearance order, matching what [`to_text`] emits.
pub fn parse(text: &str) -> Result<TraceLog, FormatError> {
    let mut exe = String::new();
    let mut uid = 0u32;
    let mut job_id = 0u64;
    let mut nprocs = 0u32;
    let mut start_time = 0i64;
    let mut end_time = 0i64;
    let mut saw_version = false;

    let mut order: Vec<(u64, i32)> = Vec::new();
    let mut recs: BTreeMap<(u64, i32), PosixRecord> = BTreeMap::new();
    let mut names: BTreeMap<u64, String> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some((key, value)) = rest.split_once(':') {
                let value = value.trim();
                match key.trim() {
                    "darshan log version" => saw_version = true,
                    "exe" => exe = value.to_owned(),
                    "uid" => uid = parse_num(value, lineno, "uid")?,
                    "jobid" => job_id = parse_num(value, lineno, "jobid")?,
                    "nprocs" => nprocs = parse_num(value, lineno, "nprocs")?,
                    "start_time" => start_time = parse_num(value, lineno, "start_time")?,
                    "end_time" => end_time = parse_num(value, lineno, "end_time")?,
                    _ => {} // unknown header comments are ignored
                }
            }
            continue;
        }
        let mut fields = line.split('\t');
        let (module, rank, id, counter, value, path) = match (
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
        ) {
            (Some(m), Some(r), Some(i), Some(c), Some(v), Some(p)) => (m, r, i, c, v, p),
            _ => {
                return Err(FormatError::MalformedLine {
                    line: lineno,
                    reason: "expected 6 tab-separated fields".into(),
                })
            }
        };
        let module = Module::from_name(module).ok_or_else(|| FormatError::MalformedLine {
            line: lineno,
            reason: format!("unknown module {module:?}"),
        })?;
        let rank: i32 = parse_num(rank, lineno, "rank")?;
        let id: u64 = parse_num(id, lineno, "record id")?;
        let rec = recs.entry((id, rank)).or_insert_with(|| {
            order.push((id, rank));
            let mut r = PosixRecord::new(id, rank);
            r.module = module;
            r
        });
        if let Some(c) = PosixCounter::from_name(counter) {
            rec.set(c, parse_num(value, lineno, "counter value")?);
        } else if let Some(c) = PosixFCounter::from_name(counter) {
            let v: f64 = value.parse().map_err(|_| FormatError::MalformedLine {
                line: lineno,
                reason: format!("bad float {value:?}"),
            })?;
            rec.setf(c, v);
        } else {
            return Err(FormatError::MalformedLine {
                line: lineno,
                reason: format!("unknown counter {counter:?}"),
            });
        }
        names.entry(id).or_insert_with(|| path.to_owned());
    }

    if !saw_version {
        return Err(FormatError::BadMagic);
    }
    let header = JobHeader::new(job_id, uid, nprocs, start_time, end_time).with_exe(exe);
    // `order` and `recs` are registered together, so every key resolves;
    // `filter_map` keeps that assumption out of the panic path regardless.
    let records = order.into_iter().filter_map(|k| recs.remove(&k)).collect();
    Ok(TraceLog::from_parts(header, records, names))
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, FormatError> {
    s.trim()
        .parse()
        .map_err(|_| FormatError::MalformedLine { line, reason: format!("bad {what}: {s:?}") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PosixCounter as C;
    use crate::counter::PosixFCounter as F;
    use crate::log::TraceLogBuilder;

    fn sample() -> TraceLog {
        let mut b = TraceLogBuilder::new(
            JobHeader::new(42, 777, 32, 1_600_000_000, 1_600_000_600).with_exe("/bin/vasp INCAR"),
        );
        let r = b.begin_record("/scratch/POSCAR", -1);
        b.record_mut(r)
            .set(C::Reads, 32)
            .set(C::BytesRead, 123_456)
            .set(C::Opens, 32)
            .setf(F::ReadStartTimestamp, 0.25)
            .setf(F::ReadEndTimestamp, 1.5);
        let w = b.begin_record("/scratch/OUTCAR", 0);
        b.record_mut(w)
            .set(C::Writes, 9)
            .set(C::BytesWritten, 999)
            .setf(F::WriteEndTimestamp, 599.875);
        b.finish()
    }

    #[test]
    fn text_roundtrip() {
        let log = sample();
        let text = to_text(&log);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn text_omits_zero_counters() {
        let text = to_text(&sample());
        assert!(!text.contains("POSIX_STATS"));
        assert!(text.contains("POSIX_BYTES_READ"));
    }

    #[test]
    fn parse_rejects_missing_version() {
        assert!(matches!(parse("# exe: /bin/x\n"), Err(FormatError::BadMagic)));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let mut text = String::from("# darshan log version: mdf-1\n");
        text.push_str("POSIX\tnot-a-rank\t1\tPOSIX_OPENS\t1\t/f\n");
        let err = parse(&text).unwrap_err();
        assert!(matches!(err, FormatError::MalformedLine { line: 2, .. }), "{err:?}");

        let mut text = String::from("# darshan log version: mdf-1\n");
        text.push_str("POSIX\t0\t1\tPOSIX_BOGUS\t1\t/f\n");
        assert!(matches!(parse(&text), Err(FormatError::MalformedLine { .. })));

        let mut text = String::from("# darshan log version: mdf-1\n");
        text.push_str("HDF5\t0\t1\tPOSIX_OPENS\t1\t/f\n");
        assert!(matches!(parse(&text), Err(FormatError::MalformedLine { .. })));

        let mut text = String::from("# darshan log version: mdf-1\n");
        text.push_str("POSIX\t0\t1\tPOSIX_OPENS\n");
        assert!(matches!(parse(&text), Err(FormatError::MalformedLine { .. })));
    }

    #[test]
    fn parse_tolerates_unknown_header_comments_and_blank_lines() {
        let text = "# darshan log version: mdf-1\n# compression: none\n\n# nprocs: 4\n";
        let log = parse(text).unwrap();
        assert_eq!(log.header().nprocs, 4);
        assert!(log.records().is_empty());
    }

    #[test]
    fn accumulates_counters_per_record() {
        let text = "# darshan log version: mdf-1\n\
                    POSIX\t2\t10\tPOSIX_OPENS\t3\t/f\n\
                    POSIX\t2\t10\tPOSIX_CLOSES\t3\t/f\n\
                    POSIX\t3\t10\tPOSIX_OPENS\t1\t/f\n";
        let log = parse(text).unwrap();
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.records()[0].get(C::Opens), 3);
        assert_eq!(log.records()[0].get(C::Closes), 3);
        assert_eq!(log.records()[1].rank, 3);
        assert_eq!(log.names().len(), 1);
    }
}
