//! Small shared helpers for trace producers (hashing, checksums).

/// FNV-1a 64-bit hash, used to derive stable record ids from file paths —
/// the same role Darshan's record-id hashing plays.
pub fn fnv1a64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Stable record id for a file path.
#[inline]
pub fn record_id(path: &str) -> u64 {
    fnv1a64(path.as_bytes())
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
///
/// Used by the MDF footer to detect truncation/bit-rot — the property the
/// MOSAIC pre-processing validity check ① leans on for "corrupted entries".
pub struct Crc32 {
    state: u32,
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint: allow(cast, "const fn (try_from is non-const); i < 256 always fits u32")
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            let idx = crate::convert::u32_to_usize((c ^ u32::from(b)) & 0xff);
            // lint: allow(panic, "idx is masked with & 0xff, always < CRC_TABLE.len() == 256")
            c = CRC_TABLE[idx] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final digest.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xffff_ffff
    }

    /// One-shot convenience.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(data);
        c.finalize()
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // "123456789" is the canonical CRC-32 check value.
        assert_eq!(Crc32::checksum(b"123456789"), 0xcbf4_3926);
        assert_eq!(Crc32::checksum(b""), 0);
    }

    #[test]
    fn crc32_incremental_equals_oneshot() {
        let mut c = Crc32::new();
        c.update(b"hello ");
        c.update(b"world");
        assert_eq!(c.finalize(), Crc32::checksum(b"hello world"));
    }

    #[test]
    fn record_ids_differ_for_different_paths() {
        assert_ne!(record_id("/a"), record_id("/b"));
        assert_eq!(record_id("/a"), record_id("/a"));
    }
}
