//! Counter vocabulary for trace records.
//!
//! Real Darshan defines per-module counter sets (POSIX has 69 integer and 17
//! floating-point counters). This crate models the subset MOSAIC's analyses
//! read, plus a handful of counters that make synthetic traces realistic
//! (alignment, sequentiality, access-size extrema). Counters are stored as
//! dense arrays indexed by these enums, mirroring Darshan's
//! `counters[CP_POSIX_*]` layout: cheap to copy, trivially serializable and
//! friendly to the cache when millions of records are scanned.

use serde::{Deserialize, Serialize};

/// I/O API module a record was captured from.
///
/// Darshan instruments several APIs; Blue Waters traces predominantly carry
/// POSIX and MPI-IO records. The module tag travels with every record so
/// analyses can filter by API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[repr(u8)]
pub enum Module {
    /// POSIX syscall layer (`open`/`read`/`write`/`lseek`/`close`).
    #[default]
    Posix = 0,
    /// MPI-IO layer (`MPI_File_*`).
    MpiIo = 1,
    /// Buffered C stdio layer (`fopen`/`fread`/...).
    Stdio = 2,
}

impl Module {
    /// All modules, in tag order.
    pub const ALL: [Module; 3] = [Module::Posix, Module::MpiIo, Module::Stdio];

    /// Stable on-disk tag.
    #[inline]
    pub fn tag(self) -> u8 {
        // lint: allow(cast, "C-like enum with discriminants 0..=2, always fits u8")
        self as u8
    }

    /// Inverse of [`Module::tag`].
    pub fn from_tag(tag: u8) -> Option<Module> {
        match tag {
            0 => Some(Module::Posix),
            1 => Some(Module::MpiIo),
            2 => Some(Module::Stdio),
            _ => None,
        }
    }

    /// Darshan-style module name (`POSIX`, `MPIIO`, `STDIO`).
    pub fn name(self) -> &'static str {
        match self {
            Module::Posix => "POSIX",
            Module::MpiIo => "MPIIO",
            Module::Stdio => "STDIO",
        }
    }

    /// Parse a module name as produced by [`Module::name`].
    pub fn from_name(name: &str) -> Option<Module> {
        match name {
            "POSIX" => Some(Module::Posix),
            "MPIIO" => Some(Module::MpiIo),
            "STDIO" => Some(Module::Stdio),
            _ => None,
        }
    }
}

macro_rules! counter_enum {
    (
        $(#[$meta:meta])*
        $name:ident, $count:ident, $all:ident {
            $( $(#[$vmeta:meta])* $variant:ident => $text:literal ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
        #[repr(usize)]
        pub enum $name {
            $( $(#[$vmeta])* $variant ),+
        }

        /// Number of counters in this set.
        pub const $count: usize = [$($name::$variant),+].len();

        impl $name {
            /// All counters, in index order.
            pub const $all: [$name; $count] = [$($name::$variant),+];

            /// Dense array index of this counter.
            #[inline]
            pub fn index(self) -> usize {
                // lint: allow(cast, "C-like enum discriminant, always fits usize")
                self as usize
            }

            /// Darshan-style counter name (e.g. `POSIX_BYTES_READ`).
            pub fn name(self) -> &'static str {
                match self {
                    $( $name::$variant => $text ),+
                }
            }

            /// Parse a counter from its Darshan-style name.
            pub fn from_name(name: &str) -> Option<$name> {
                match name {
                    $( $text => Some($name::$variant), )+
                    _ => None,
                }
            }
        }
    };
}

counter_enum! {
    /// Integer counters of a POSIX-module record.
    ///
    /// Names follow Darshan's `POSIX_*` vocabulary so text output is
    /// recognizable to anyone who has read `darshan-parser` output.
    PosixCounter, N_POSIX_COUNTERS, ALL {
        /// Number of `open()` calls.
        Opens => "POSIX_OPENS",
        /// Number of `close()` calls (a missing close relative to opens is a
        /// corruption signal; see [`crate::validate`]).
        Closes => "POSIX_CLOSES",
        /// Number of `read()`-family calls.
        Reads => "POSIX_READS",
        /// Number of `write()`-family calls.
        Writes => "POSIX_WRITES",
        /// Number of `lseek()`-family calls.
        Seeks => "POSIX_SEEKS",
        /// Number of `stat()`-family calls.
        Stats => "POSIX_STATS",
        /// Total bytes read from the file.
        BytesRead => "POSIX_BYTES_READ",
        /// Total bytes written to the file.
        BytesWritten => "POSIX_BYTES_WRITTEN",
        /// Highest offset read.
        MaxByteRead => "POSIX_MAX_BYTE_READ",
        /// Highest offset written.
        MaxByteWritten => "POSIX_MAX_BYTE_WRITTEN",
        /// Number of consecutive (offset-adjacent) reads.
        ConsecReads => "POSIX_CONSEC_READS",
        /// Number of consecutive (offset-adjacent) writes.
        ConsecWrites => "POSIX_CONSEC_WRITES",
        /// Number of sequential (monotonically increasing offset) reads.
        SeqReads => "POSIX_SEQ_READS",
        /// Number of sequential (monotonically increasing offset) writes.
        SeqWrites => "POSIX_SEQ_WRITES",
        /// Number of read→write / write→read switches.
        RwSwitches => "POSIX_RW_SWITCHES",
        /// Accesses not aligned in memory.
        MemNotAligned => "POSIX_MEM_NOT_ALIGNED",
        /// Accesses not aligned in file.
        FileNotAligned => "POSIX_FILE_NOT_ALIGNED",
        /// Size histogram: accesses in [0, 100) bytes.
        SizeRead0To100 => "POSIX_SIZE_READ_0_100",
        /// Size histogram: accesses in [100, 1K) bytes.
        SizeRead100To1k => "POSIX_SIZE_READ_100_1K",
        /// Size histogram: accesses in [1K, 1M) bytes.
        SizeRead1kTo1m => "POSIX_SIZE_READ_1K_1M",
        /// Size histogram: accesses ≥ 1M bytes.
        SizeRead1mPlus => "POSIX_SIZE_READ_1M_PLUS",
        /// Size histogram: writes in [0, 100) bytes.
        SizeWrite0To100 => "POSIX_SIZE_WRITE_0_100",
        /// Size histogram: writes in [100, 1K) bytes.
        SizeWrite100To1k => "POSIX_SIZE_WRITE_100_1K",
        /// Size histogram: writes in [1K, 1M) bytes.
        SizeWrite1kTo1m => "POSIX_SIZE_WRITE_1K_1M",
        /// Size histogram: writes ≥ 1M bytes.
        SizeWrite1mPlus => "POSIX_SIZE_WRITE_1M_PLUS",
    }
}

counter_enum! {
    /// Floating-point counters of a POSIX-module record (seconds relative to
    /// job start, except cumulative `*Time` counters which are durations).
    ///
    /// A value of `0.0` in a `*Timestamp` counter means "never happened",
    /// matching Darshan's convention.
    PosixFCounter, N_POSIX_FCOUNTERS, ALL {
        /// Timestamp of first `open()`.
        OpenStartTimestamp => "POSIX_F_OPEN_START_TIMESTAMP",
        /// Timestamp of last `open()` returning.
        OpenEndTimestamp => "POSIX_F_OPEN_END_TIMESTAMP",
        /// Timestamp of first `close()`.
        CloseStartTimestamp => "POSIX_F_CLOSE_START_TIMESTAMP",
        /// Timestamp of last `close()` returning.
        CloseEndTimestamp => "POSIX_F_CLOSE_END_TIMESTAMP",
        /// Timestamp of first read.
        ReadStartTimestamp => "POSIX_F_READ_START_TIMESTAMP",
        /// Timestamp of last read completing.
        ReadEndTimestamp => "POSIX_F_READ_END_TIMESTAMP",
        /// Timestamp of first write.
        WriteStartTimestamp => "POSIX_F_WRITE_START_TIMESTAMP",
        /// Timestamp of last write completing.
        WriteEndTimestamp => "POSIX_F_WRITE_END_TIMESTAMP",
        /// Cumulative seconds spent in reads.
        ReadTime => "POSIX_F_READ_TIME",
        /// Cumulative seconds spent in writes.
        WriteTime => "POSIX_F_WRITE_TIME",
        /// Cumulative seconds spent in metadata operations.
        MetaTime => "POSIX_F_META_TIME",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_tag_roundtrip() {
        for m in Module::ALL {
            assert_eq!(Module::from_tag(m.tag()), Some(m));
            assert_eq!(Module::from_name(m.name()), Some(m));
        }
        assert_eq!(Module::from_tag(7), None);
        assert_eq!(Module::from_name("HDF5"), None);
    }

    #[test]
    fn counter_indices_are_dense_and_unique() {
        for (i, c) in PosixCounter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, c) in PosixFCounter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn counter_name_roundtrip() {
        for c in PosixCounter::ALL {
            assert_eq!(PosixCounter::from_name(c.name()), Some(c));
        }
        for c in PosixFCounter::ALL {
            assert_eq!(PosixFCounter::from_name(c.name()), Some(c));
        }
        assert_eq!(PosixCounter::from_name("POSIX_NOPE"), None);
    }

    #[test]
    fn counter_counts_match() {
        assert_eq!(PosixCounter::ALL.len(), N_POSIX_COUNTERS);
        assert_eq!(PosixFCounter::ALL.len(), N_POSIX_FCOUNTERS);
        // The MDF format relies on these being stable; bump MDF version if
        // they ever change.
        assert_eq!(N_POSIX_COUNTERS, 25);
        assert_eq!(N_POSIX_FCOUNTERS, 11);
    }

    #[test]
    fn names_follow_darshan_convention() {
        for c in PosixCounter::ALL {
            assert!(c.name().starts_with("POSIX_"), "{}", c.name());
        }
        for c in PosixFCounter::ALL {
            assert!(c.name().starts_with("POSIX_F_"), "{}", c.name());
        }
    }
}
