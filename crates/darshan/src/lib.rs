//! # mosaic-darshan
//!
//! A from-scratch, Darshan-like I/O trace substrate for the MOSAIC
//! reproduction.
//!
//! [Darshan](https://www.mcs.anl.gov/research/projects/darshan/) is the I/O
//! characterization tool that produced the Blue Waters traces analyzed by the
//! MOSAIC paper (Jolivel et al., PDSW/SC 2024). Darshan records, for every
//! `(rank, file)` pair an application touches, a fixed vector of integer
//! counters (operation counts, byte totals, access-size histograms) and
//! floating-point counters (timestamps, cumulative times). Crucially, all
//! accesses between the opening and closing of a file are **aggregated**: the
//! trace tells you that *some* reads happened between
//! `F_READ_START_TIMESTAMP` and `F_READ_END_TIMESTAMP` and how many bytes
//! they moved, but not their temporal distribution. MOSAIC's algorithms are
//! designed around exactly this shape of input, so this crate reproduces it
//! faithfully:
//!
//! * [`counter`] — the counter vocabulary (a curated subset of Darshan's
//!   POSIX module counters, plus the module tag).
//! * [`record`] — per-`(rank, file)` records and their accessors.
//! * [`job`] — the job-level header (job id, user, `nprocs`, wallclock).
//! * [`log`] — [`log::TraceLog`], a complete trace: header + records + file
//!   name table.
//! * [`ops`] — extraction of the *operation view* (timed read/write intervals
//!   and metadata events) that MOSAIC's merging/segmentation consumes.
//! * [`mdf`] — the MOSAIC Darshan Format: a compact, CRC-protected binary
//!   serialization with a writer and a strict parser.
//! * [`limits`] — the shared decompression-bomb guard constants every binary
//!   parser compares untrusted lengths against.
//! * [`text`] — a `darshan-parser`-style line-oriented text format.
//! * [`validate`] — the validity rules of MOSAIC's pre-processing step ①
//!   (corrupted-entry detection and eviction).
//! * [`synthutil`] — small helpers shared by trace-producing crates.
//!
//! ## Quick example
//!
//! ```
//! use mosaic_darshan::job::JobHeader;
//! use mosaic_darshan::log::TraceLogBuilder;
//! use mosaic_darshan::counter::PosixCounter as C;
//! use mosaic_darshan::counter::PosixFCounter as F;
//!
//! let mut b = TraceLogBuilder::new(JobHeader::new(42, 1001, 64, 1_600_000_000, 1_600_003_600)
//!     .with_exe("/apps/sim/checkpointer --steps 100"));
//! let r = b.begin_record("/scratch/ckpt/dump.0001", -1);
//! b.record_mut(r).set(C::Opens, 64)
//!     .set(C::Writes, 640)
//!     .set(C::BytesWritten, 64 << 20)
//!     .setf(F::OpenStartTimestamp, 10.0)
//!     .setf(F::WriteStartTimestamp, 10.5)
//!     .setf(F::WriteEndTimestamp, 12.0)
//!     .setf(F::CloseEndTimestamp, 12.5);
//! let log = b.finish();
//! assert_eq!(log.records().len(), 1);
//! let bytes = mosaic_darshan::mdf::to_bytes(&log);
//! let parsed = mosaic_darshan::mdf::from_bytes(&bytes).unwrap();
//! assert_eq!(parsed, log);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod convert;
pub mod counter;
pub mod dxt;
pub mod error;
pub mod job;
pub mod limits;
pub mod log;
pub mod mdf;
pub mod ops;
pub mod record;
pub mod synthutil;
pub mod text;
pub mod transform;
pub mod validate;
pub mod view;

pub use error::{EvictClass, EvictReason, FormatError, ValidityError};
pub use job::JobHeader;
pub use log::{TraceLog, TraceLogBuilder};
pub use ops::{MetaEvent, MetaKind, OpKind, Operation, OperationView};
pub use record::PosixRecord;
pub use view::{RecordView, TraceView};
