//! Trace validity checking — MOSAIC pre-processing step ①.
//!
//! The paper: *"MOSAIC begins by opening each Darshan trace file to check its
//! validity. The corrupted entries (when a deallocation happens before the
//! end of the application's execution for instance) are deleted."* On the
//! Blue Waters dataset this evicted 32 % of traces (Fig 3).
//!
//! Two levels are distinguished here:
//!
//! * **format corruption** — the bytes do not decode ([`crate::mdf`] /
//!   [`crate::text`] errors); nothing can be salvaged, the trace is evicted;
//! * **semantic corruption** — the trace decodes, but individual records
//!   violate invariants ([`ValidityError`]). [`sanitize`] deletes the
//!   offending records; if nothing survives (or the job header itself is
//!   broken) the whole trace is evicted.

use crate::counter::{PosixCounter as C, PosixFCounter as F};
use crate::error::{EvictReason, ValidityError};
use crate::log::TraceLog;
use crate::record::{PosixRecord, SHARED_RANK};

/// Tolerance for timestamps slightly beyond the (integer-second) job
/// runtime: Darshan's job times are whole seconds while record timestamps
/// are not, so sub-second overhang is legitimate.
const RUNTIME_SLACK: f64 = 1.0;

/// Check a single record against a job runtime. Returns every violated rule.
pub fn check_record(rec: &PosixRecord, runtime: f64, nprocs: u32) -> Vec<ValidityError> {
    let mut errs = Vec::new();

    if rec.rank < SHARED_RANK || u32::try_from(rec.rank).is_ok_and(|r| r >= nprocs.max(1)) {
        errs.push(ValidityError::RankOutOfRange);
    }
    if rec.get(C::BytesRead) < 0 || rec.get(C::BytesWritten) < 0 {
        errs.push(ValidityError::NegativeBytes);
    }
    if (rec.get(C::BytesRead) > 0 && rec.get(C::Reads) == 0)
        || (rec.get(C::BytesWritten) > 0 && rec.get(C::Writes) == 0)
    {
        errs.push(ValidityError::BytesWithoutOps);
    }
    if rec.fcounters.iter().any(|&v| v < 0.0) {
        errs.push(ValidityError::NegativeTimestamp);
    }

    for (start, end) in [
        (F::OpenStartTimestamp, F::OpenEndTimestamp),
        (F::ReadStartTimestamp, F::ReadEndTimestamp),
        (F::WriteStartTimestamp, F::WriteEndTimestamp),
        (F::CloseStartTimestamp, F::CloseEndTimestamp),
    ] {
        let (s, e) = (rec.getf(start), rec.getf(end));
        // 0.0 means "never happened": only check populated intervals.
        if s > 0.0 && e > 0.0 && e < s {
            errs.push(ValidityError::InvertedInterval);
            break;
        }
    }

    if rec.fcounters.iter().any(|&v| v > runtime + RUNTIME_SLACK) {
        errs.push(ValidityError::TimestampBeyondRuntime);
    }

    // The paper's canonical corruption: the record was deallocated (its
    // bookkeeping closed out) before the application ended, leaving I/O
    // attributed to it but a zeroed close timestamp despite closes counted.
    if rec.get(C::Closes) > 0
        && rec.getf(F::CloseEndTimestamp) == 0.0
        && (rec.has_reads() || rec.has_writes())
    {
        errs.push(ValidityError::DeallocatedBeforeEnd);
    }

    errs
}

/// Check job-level invariants.
pub fn check_header(log: &TraceLog) -> Vec<ValidityError> {
    check_header_fields(log.header().runtime(), log.header().nprocs)
}

/// Header invariants on bare fields — the shared core of [`check_header`]
/// and the borrowed-view validation ([`crate::view::validate_view`]), so
/// both paths apply the same rules in the same order.
pub fn check_header_fields(runtime: f64, nprocs: u32) -> Vec<ValidityError> {
    let mut errs = Vec::new();
    if runtime <= 0.0 {
        errs.push(ValidityError::NonPositiveRuntime);
    }
    if nprocs == 0 {
        errs.push(ValidityError::ZeroProcs);
    }
    errs
}

/// Full-trace report: header errors plus `(record index, errors)` for every
/// invalid record, plus name-table consistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidityReport {
    /// Violations of job-level invariants (fatal for the whole trace).
    pub header_errors: Vec<ValidityError>,
    /// Per-record violations, as `(record index, violated rules)`.
    pub record_errors: Vec<(usize, Vec<ValidityError>)>,
    /// Number of records checked.
    pub records_checked: usize,
}

impl ValidityReport {
    /// `true` when nothing at all is wrong.
    pub fn is_clean(&self) -> bool {
        self.header_errors.is_empty() && self.record_errors.is_empty()
    }

    /// `true` when the trace must be evicted outright: broken header, or no
    /// record survives sanitization.
    pub fn is_fatal(&self) -> bool {
        !self.header_errors.is_empty()
            || (self.records_checked > 0 && self.record_errors.len() == self.records_checked)
    }

    /// The typed funnel reason for a fatal report: the first violated
    /// header rule, or [`EvictReason::AllRecordsInvalid`] when the header is
    /// fine but nothing survived sanitization. Only meaningful when
    /// [`ValidityReport::is_fatal`] holds.
    pub fn evict_reason(&self) -> EvictReason {
        match self.header_errors.first() {
            Some(&rule) => EvictReason::ValidationFatal(rule),
            None => EvictReason::AllRecordsInvalid,
        }
    }
}

/// Validate a decoded trace.
pub fn validate(log: &TraceLog) -> ValidityReport {
    let runtime = log.header().runtime();
    let nprocs = log.header().nprocs;
    let header_errors = check_header(log);
    let mut record_errors = Vec::new();
    for (i, rec) in log.records().iter().enumerate() {
        let mut errs = check_record(rec, runtime, nprocs);
        if !log.names().contains_key(&rec.record_id) {
            errs.push(ValidityError::MissingName);
        }
        if !errs.is_empty() {
            record_errors.push((i, errs));
        }
    }
    ValidityReport { header_errors, record_errors, records_checked: log.records().len() }
}

/// Delete the records `report` flagged invalid, in place. Returns the number
/// of deleted records. The report must come from [`validate`] on this same
/// log (indices are positional).
pub fn delete_invalid(log: &mut TraceLog, report: &ValidityReport) -> usize {
    let bad: std::collections::BTreeSet<usize> =
        report.record_errors.iter().map(|(i, _)| *i).collect();
    if bad.is_empty() {
        return 0;
    }
    let mut idx = 0;
    log.records_mut().retain(|_| {
        let keep = !bad.contains(&idx);
        idx += 1;
        keep
    });
    bad.len()
}

/// Delete corrupted records in place (the paper's behaviour). Returns the
/// number of deleted records, or `Err` with the report when the trace as a
/// whole is unusable.
pub fn sanitize(log: &mut TraceLog) -> Result<usize, ValidityReport> {
    let report = validate(log);
    if report.is_fatal() {
        return Err(report);
    }
    Ok(delete_invalid(log, &report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobHeader;
    use crate::log::TraceLogBuilder;

    fn valid_log() -> TraceLog {
        let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 4, 0, 100).with_exe("/bin/a"));
        let r = b.begin_record("/f", 0);
        b.record_mut(r)
            .set(C::Reads, 1)
            .set(C::BytesRead, 10)
            .set(C::Opens, 1)
            .set(C::Closes, 1)
            .setf(F::OpenStartTimestamp, 1.0)
            .setf(F::ReadStartTimestamp, 1.0)
            .setf(F::ReadEndTimestamp, 2.0)
            .setf(F::CloseEndTimestamp, 3.0);
        b.finish()
    }

    #[test]
    fn valid_trace_is_clean() {
        let report = validate(&valid_log());
        assert!(report.is_clean(), "{report:?}");
        assert!(!report.is_fatal());
    }

    #[test]
    fn dealloc_before_end_is_flagged() {
        let mut log = valid_log();
        log.records_mut()[0].setf(F::CloseEndTimestamp, 0.0);
        let report = validate(&log);
        assert_eq!(report.record_errors.len(), 1);
        assert!(report.record_errors[0].1.contains(&ValidityError::DeallocatedBeforeEnd));
    }

    #[test]
    fn inverted_interval_is_flagged() {
        let mut log = valid_log();
        log.records_mut()[0].setf(F::ReadEndTimestamp, 0.5); // < start 1.0
        let report = validate(&log);
        assert!(report.record_errors[0].1.contains(&ValidityError::InvertedInterval));
    }

    #[test]
    fn timestamp_beyond_runtime_is_flagged_with_slack() {
        let mut log = valid_log();
        log.records_mut()[0].setf(F::CloseEndTimestamp, 100.5); // within 1s slack
        assert!(validate(&log).is_clean());
        log.records_mut()[0].setf(F::CloseEndTimestamp, 150.0);
        let report = validate(&log);
        assert!(report.record_errors[0].1.contains(&ValidityError::TimestampBeyondRuntime));
    }

    #[test]
    fn header_errors_are_fatal() {
        let log = TraceLogBuilder::new(JobHeader::new(1, 1, 0, 100, 100)).finish();
        let report = validate(&log);
        assert!(report.header_errors.contains(&ValidityError::NonPositiveRuntime));
        assert!(report.header_errors.contains(&ValidityError::ZeroProcs));
        assert!(report.is_fatal());
    }

    #[test]
    fn sanitize_deletes_only_corrupted_records() {
        let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 4, 0, 100));
        let good = b.begin_record("/good", 0);
        b.record_mut(good)
            .set(C::Writes, 1)
            .set(C::BytesWritten, 5)
            .setf(F::WriteStartTimestamp, 1.0)
            .setf(F::WriteEndTimestamp, 2.0);
        let bad = b.begin_record("/bad", 1);
        b.record_mut(bad).set(C::BytesRead, -5);
        let mut log = b.finish();
        let deleted = sanitize(&mut log).unwrap();
        assert_eq!(deleted, 1);
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.path_of(log.records()[0].record_id), Some("/good"));
    }

    #[test]
    fn sanitize_fails_when_everything_is_corrupt() {
        let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 4, 0, 100));
        let r = b.begin_record("/only", 9); // rank out of range
        b.record_mut(r).set(C::Opens, 1);
        let mut log = b.finish();
        assert!(sanitize(&mut log).is_err());
    }

    #[test]
    fn fatal_reports_carry_typed_evict_reasons() {
        let log = TraceLogBuilder::new(JobHeader::new(1, 1, 0, 100, 100)).finish();
        let report = validate(&log);
        assert_eq!(
            report.evict_reason(),
            EvictReason::ValidationFatal(ValidityError::NonPositiveRuntime)
        );

        let mut b = TraceLogBuilder::new(JobHeader::new(1, 1, 4, 0, 100));
        let r = b.begin_record("/only", 9); // rank out of range
        b.record_mut(r).set(C::Opens, 1);
        let report = validate(&b.finish());
        assert!(report.is_fatal());
        assert_eq!(report.evict_reason(), EvictReason::AllRecordsInvalid);
    }

    #[test]
    fn rank_out_of_range_detected() {
        let mut log = valid_log();
        log.records_mut()[0].rank = 4; // nprocs = 4 → valid ranks 0..=3
        let report = validate(&log);
        assert!(report.record_errors[0].1.contains(&ValidityError::RankOutOfRange));
        let mut log = valid_log();
        log.records_mut()[0].rank = -2;
        let report = validate(&log);
        assert!(report.record_errors[0].1.contains(&ValidityError::RankOutOfRange));
    }

    #[test]
    fn bytes_without_ops_detected() {
        let mut log = valid_log();
        log.records_mut()[0].set(C::Reads, 0); // bytes stay positive
        let report = validate(&log);
        assert!(report.record_errors[0].1.contains(&ValidityError::BytesWithoutOps));
    }
}
