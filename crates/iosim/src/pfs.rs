//! Fluid-flow model of the parallel file system's bandwidth.
//!
//! Concurrent transfers share the aggregate bandwidth max–min fairly,
//! subject to a per-client ceiling: with `n` active flows each receives
//! `min(per_rank_bandwidth, pfs_bandwidth / n)`. Rates are piecewise
//! constant between flow arrivals/departures; the engine advances all flows
//! by the elapsed time at each state change and asks for the next completion
//! time. This is the standard "progressive filling" fluid approximation used
//! by I/O and network simulators when per-packet detail is irrelevant — and
//! for MOSAIC only interval shapes matter.

use std::collections::BTreeMap;

/// Identifier of an active flow.
pub type FlowId = u64;

/// The shared-bandwidth state.
///
/// Flows live in a `BTreeMap` so that iteration — and therefore the
/// floating-point accumulation order of `bytes_moved` — is deterministic
/// across runs and hash seeds.
#[derive(Debug, Clone)]
pub struct Pfs {
    aggregate_bw: f64,
    per_client_bw: f64,
    flows: BTreeMap<FlowId, Flow>,
    last_update: f64,
    next_id: FlowId,
    bytes_moved: f64,
}

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
}

impl Pfs {
    /// New model with the given aggregate and per-client bandwidths
    /// (bytes/s).
    pub fn new(aggregate_bw: f64, per_client_bw: f64) -> Self {
        assert!(aggregate_bw > 0.0 && per_client_bw > 0.0);
        Pfs {
            aggregate_bw,
            per_client_bw,
            flows: BTreeMap::new(),
            last_update: 0.0,
            next_id: 0,
            bytes_moved: 0.0,
        }
    }

    /// Current per-flow rate under fair sharing.
    pub fn current_rate(&self) -> f64 {
        let n = self.flows.len();
        if n == 0 {
            return 0.0;
        }
        (self.aggregate_bw / n as f64).min(self.per_client_bw)
    }

    /// Number of active flows.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes transferred so far (reads + writes).
    pub fn bytes_moved(&self) -> f64 {
        self.bytes_moved
    }

    /// Advance all flows to absolute time `now` at the current rate.
    /// Must be called (by the engine) before any state change.
    pub fn advance_to(&mut self, now: f64) {
        debug_assert!(now + 1e-9 >= self.last_update, "time went backwards");
        let dt = (now - self.last_update).max(0.0);
        if dt > 0.0 && !self.flows.is_empty() {
            let rate = self.current_rate();
            let moved = rate * dt;
            for f in self.flows.values_mut() {
                let step = moved.min(f.remaining);
                f.remaining -= step;
                self.bytes_moved += step;
            }
        }
        self.last_update = now;
    }

    /// Start a transfer of `bytes` at time `now`. Returns the flow id.
    pub fn start_flow(&mut self, now: f64, bytes: u64) -> FlowId {
        self.advance_to(now);
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(id, Flow { remaining: bytes as f64 });
        id
    }

    /// Remove a flow (on completion). Returns any residual bytes (should be
    /// ~0 when removed at its completion time).
    pub fn finish_flow(&mut self, now: f64, id: FlowId) -> f64 {
        self.advance_to(now);
        self.flows.remove(&id).map(|f| f.remaining).unwrap_or(0.0)
    }

    /// Absolute time at which the earliest active flow completes, given the
    /// current rate, or `None` when idle. Valid until the next state change.
    pub fn next_completion(&self) -> Option<(FlowId, f64)> {
        let rate = self.current_rate();
        if rate <= 0.0 {
            return None;
        }
        self.flows
            .iter()
            .map(|(&id, f)| (id, self.last_update + f.remaining / rate))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// `true` when flow `id` has no bytes left.
    pub fn is_done(&self, id: FlowId) -> bool {
        self.flows.get(&id).map(|f| f.remaining <= 1e-6).unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_runs_at_client_ceiling() {
        let mut pfs = Pfs::new(100.0, 10.0);
        let id = pfs.start_flow(0.0, 50);
        assert_eq!(pfs.current_rate(), 10.0);
        let (cid, t) = pfs.next_completion().unwrap();
        assert_eq!(cid, id);
        assert!((t - 5.0).abs() < 1e-9);
        pfs.finish_flow(t, id);
        assert!(pfs.is_done(id));
        assert_eq!(pfs.active(), 0);
        assert!((pfs.bytes_moved() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn many_flows_split_aggregate() {
        let mut pfs = Pfs::new(100.0, 60.0);
        for _ in 0..4 {
            pfs.start_flow(0.0, 100);
        }
        // 100/4 = 25 < 60: aggregate-bound.
        assert!((pfs.current_rate() - 25.0).abs() < 1e-9);
        let (_, t) = pfs.next_completion().unwrap();
        assert!((t - 4.0).abs() < 1e-9);
    }

    #[test]
    fn departures_speed_up_remaining_flows() {
        let mut pfs = Pfs::new(100.0, 100.0);
        let a = pfs.start_flow(0.0, 100); // alone: 100 B/s
        let b = pfs.start_flow(0.5, 100); // both: 50 B/s each
                                          // a has 50 left at t=0.5; completes at 0.5 + 50/50 = 1.5
        let (first, t1) = pfs.next_completion().unwrap();
        assert_eq!(first, a);
        assert!((t1 - 1.5).abs() < 1e-9);
        let residual = pfs.finish_flow(t1, a);
        assert!(residual.abs() < 1e-6);
        // b moved 50 by t=1.5, runs alone at 100 B/s: completes at 2.0.
        let (second, t2) = pfs.next_completion().unwrap();
        assert_eq!(second, b);
        assert!((t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_pfs_has_no_completion() {
        let pfs = Pfs::new(10.0, 10.0);
        assert!(pfs.next_completion().is_none());
        assert_eq!(pfs.current_rate(), 0.0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut pfs = Pfs::new(10.0, 10.0);
        let id = pfs.start_flow(1.0, 0);
        let (cid, t) = pfs.next_completion().unwrap();
        assert_eq!(cid, id);
        assert!((t - 1.0).abs() < 1e-12);
        assert!(pfs.is_done(id));
    }

    #[test]
    fn conservation_of_bytes() {
        let mut pfs = Pfs::new(7.0, 3.0);
        let ids: Vec<_> = (0..3).map(|i| pfs.start_flow(i as f64 * 0.3, 10 + i)).collect();
        let mut finished = 0;
        let mut guard = 0;
        while finished < ids.len() {
            let (id, t) = pfs.next_completion().unwrap();
            pfs.finish_flow(t, id);
            finished += 1;
            guard += 1;
            assert!(guard < 100, "did not converge");
        }
        assert!((pfs.bytes_moved() - (10.0 + 11.0 + 12.0)).abs() < 1e-6);
    }
}
