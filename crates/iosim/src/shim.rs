//! Darshan-like instrumentation shim.
//!
//! The engine reports every open/seek/read/write/close with its start and
//! completion times; the shim aggregates them per `(rank, file)` exactly the
//! way Darshan does — counter totals plus first/last timestamps, nothing
//! in between. At the end of the run it emits a [`TraceLog`], optionally
//! reducing files touched by *all* ranks into a single shared (rank −1)
//! record, mirroring Darshan's shared-file reduction.

use mosaic_darshan::counter::PosixCounter as C;
use mosaic_darshan::counter::PosixFCounter as F;
use mosaic_darshan::dxt::{DxtAccess, DxtRecord, DxtTrace};
use mosaic_darshan::job::JobHeader;
use mosaic_darshan::log::TraceLogBuilder;
use mosaic_darshan::ops::OpKind;
use mosaic_darshan::record::{PosixRecord, SHARED_RANK};
use mosaic_darshan::synthutil::record_id;
use mosaic_darshan::TraceLog;
use std::collections::BTreeMap;

/// Per-`(rank, path)` accumulator.
#[derive(Debug, Clone, Default)]
struct FileStats {
    opens: i64,
    closes: i64,
    seeks: i64,
    stats: i64,
    reads: i64,
    writes: i64,
    bytes_read: i64,
    bytes_written: i64,
    open_start: f64,
    open_end: f64,
    close_start: f64,
    close_end: f64,
    read_start: f64,
    read_end: f64,
    write_start: f64,
    write_end: f64,
    read_time: f64,
    write_time: f64,
    meta_time: f64,
}

fn first_ts(slot: &mut f64, t: f64) {
    if *slot == 0.0 || t < *slot {
        *slot = t;
    }
}

fn last_ts(slot: &mut f64, t: f64) {
    if t > *slot {
        *slot = t;
    }
}

/// Per-`(rank, path)` DXT accumulator (individual accesses + offsets).
#[derive(Debug, Clone, Default)]
struct DxtStats {
    accesses: Vec<DxtAccess>,
    opens: Vec<f64>,
    closes: Vec<f64>,
    /// Next sequential offset (simulated workloads append).
    offset: u64,
}

/// The instrumentation layer: collects I/O activity during a simulated run.
#[derive(Debug, Clone)]
pub struct Shim {
    files: BTreeMap<(u32, String), FileStats>,
    dxt: Option<BTreeMap<(u32, String), DxtStats>>,
    nprocs: u32,
    reduce_shared: bool,
}

impl Shim {
    /// New shim for a job with `nprocs` ranks. When `reduce_shared` is set,
    /// files opened by every rank collapse to one rank −1 record.
    pub fn new(nprocs: u32, reduce_shared: bool) -> Self {
        Shim { files: BTreeMap::new(), dxt: None, nprocs, reduce_shared }
    }

    /// Enable DXT capture: every individual access is kept, like Darshan's
    /// DXT module (at its real-world cost — memory per access).
    pub fn with_dxt(mut self) -> Self {
        self.dxt = Some(BTreeMap::new());
        self
    }

    fn entry(&mut self, rank: u32, path: &str) -> &mut FileStats {
        self.files.entry((rank, path.to_owned())).or_default()
    }

    fn dxt_entry(&mut self, rank: u32, path: &str) -> Option<&mut DxtStats> {
        self.dxt.as_mut().map(|m| m.entry((rank, path.to_owned())).or_default())
    }

    /// Record an `open()` spanning `[start, end]`.
    pub fn on_open(&mut self, rank: u32, path: &str, start: f64, end: f64) {
        let s = self.entry(rank, path);
        s.opens += 1;
        s.meta_time += end - start;
        first_ts(&mut s.open_start, start);
        last_ts(&mut s.open_end, end);
        if let Some(d) = self.dxt_entry(rank, path) {
            d.opens.push(start);
        }
    }

    /// Record a burst of `count` seeks.
    pub fn on_seek(&mut self, rank: u32, path: &str, count: u32, start: f64, end: f64) {
        let s = self.entry(rank, path);
        s.seeks += count as i64;
        s.meta_time += end - start;
    }

    /// Record a burst of `count` stats.
    pub fn on_stat(&mut self, rank: u32, path: &str, count: u32, start: f64, end: f64) {
        let s = self.entry(rank, path);
        s.stats += count as i64;
        s.meta_time += end - start;
        // Darshan has no stat timestamp either; co-locate with opens by
        // recording the burst instant as the record's open start when the
        // file was never opened.
        if s.open_start == 0.0 {
            first_ts(&mut s.open_start, start);
        }
    }

    /// Record a `close()` spanning `[start, end]`.
    pub fn on_close(&mut self, rank: u32, path: &str, start: f64, end: f64) {
        let s = self.entry(rank, path);
        s.closes += 1;
        s.meta_time += end - start;
        first_ts(&mut s.close_start, start);
        last_ts(&mut s.close_end, end);
        if let Some(d) = self.dxt_entry(rank, path) {
            d.closes.push(end);
        }
    }

    /// Record a read of `bytes` spanning `[start, end]`.
    pub fn on_read(&mut self, rank: u32, path: &str, bytes: u64, start: f64, end: f64) {
        let s = self.entry(rank, path);
        s.reads += 1;
        s.bytes_read += bytes as i64;
        s.read_time += end - start;
        first_ts(&mut s.read_start, start);
        last_ts(&mut s.read_end, end);
        if let Some(d) = self.dxt_entry(rank, path) {
            let offset = d.offset;
            d.offset += bytes;
            d.accesses.push(DxtAccess { kind: OpKind::Read, offset, length: bytes, start, end });
        }
    }

    /// Record a write of `bytes` spanning `[start, end]`.
    pub fn on_write(&mut self, rank: u32, path: &str, bytes: u64, start: f64, end: f64) {
        let s = self.entry(rank, path);
        s.writes += 1;
        s.bytes_written += bytes as i64;
        s.write_time += end - start;
        first_ts(&mut s.write_start, start);
        last_ts(&mut s.write_end, end);
        if let Some(d) = self.dxt_entry(rank, path) {
            let offset = d.offset;
            d.offset += bytes;
            d.accesses.push(DxtAccess { kind: OpKind::Write, offset, length: bytes, start, end });
        }
    }

    /// Extract the DXT trace collected so far (if DXT capture is on).
    pub fn dxt_trace(
        &self,
        job_id: u64,
        uid: u32,
        start_time: i64,
        end_time: i64,
        exe: &str,
    ) -> Option<DxtTrace> {
        let dxt = self.dxt.as_ref()?;
        let header = JobHeader::new(job_id, uid, self.nprocs, start_time, end_time).with_exe(exe);
        let mut names = BTreeMap::new();
        let mut records = Vec::with_capacity(dxt.len());
        for ((rank, path), stats) in dxt {
            let id = record_id(path);
            names.entry(id).or_insert_with(|| path.clone());
            records.push(DxtRecord {
                record_id: id,
                rank: *rank as i32,
                accesses: stats.accesses.clone(),
                opens: stats.opens.clone(),
                closes: stats.closes.clone(),
            });
        }
        Some(DxtTrace::from_parts(header, records, names))
    }

    /// Number of `(rank, file)` accumulators currently held.
    pub fn tracked(&self) -> usize {
        self.files.len()
    }

    /// Finalize into a trace with the given job identity.
    pub fn into_trace(
        self,
        job_id: u64,
        uid: u32,
        start_time: i64,
        end_time: i64,
        exe: &str,
    ) -> TraceLog {
        let nprocs = self.nprocs;
        let header = JobHeader::new(job_id, uid, nprocs, start_time, end_time).with_exe(exe);
        let mut builder = TraceLogBuilder::new(header);

        if self.reduce_shared {
            // Group by path; paths touched by all ranks reduce to rank -1.
            let mut by_path: BTreeMap<String, Vec<(u32, FileStats)>> = BTreeMap::new();
            for ((rank, path), stats) in self.files {
                by_path.entry(path).or_default().push((rank, stats));
            }
            for (path, entries) in by_path {
                if nprocs > 1 && entries.len() as u32 == nprocs {
                    let mut merged = FileStats::default();
                    for (_, s) in &entries {
                        accumulate(&mut merged, s);
                    }
                    emit(&mut builder, &path, SHARED_RANK, &merged);
                } else {
                    for (rank, s) in &entries {
                        emit(&mut builder, &path, *rank as i32, s);
                    }
                }
            }
        } else {
            for ((rank, path), stats) in &self.files {
                emit(&mut builder, path, *rank as i32, stats);
            }
        }
        builder.finish()
    }
}

fn accumulate(into: &mut FileStats, s: &FileStats) {
    into.opens += s.opens;
    into.closes += s.closes;
    into.seeks += s.seeks;
    into.stats += s.stats;
    into.reads += s.reads;
    into.writes += s.writes;
    into.bytes_read += s.bytes_read;
    into.bytes_written += s.bytes_written;
    into.read_time += s.read_time;
    into.write_time += s.write_time;
    into.meta_time += s.meta_time;
    for (dst, src) in [
        (&mut into.open_start, s.open_start),
        (&mut into.close_start, s.close_start),
        (&mut into.read_start, s.read_start),
        (&mut into.write_start, s.write_start),
    ] {
        if src > 0.0 {
            first_ts(dst, src);
        }
    }
    for (dst, src) in [
        (&mut into.open_end, s.open_end),
        (&mut into.close_end, s.close_end),
        (&mut into.read_end, s.read_end),
        (&mut into.write_end, s.write_end),
    ] {
        last_ts(dst, src);
    }
}

fn emit(builder: &mut TraceLogBuilder, path: &str, rank: i32, s: &FileStats) {
    let h = builder.begin_record(path, rank);
    let rec: &mut PosixRecord = builder.record_mut(h);
    rec.set(C::Opens, s.opens)
        .set(C::Closes, s.closes)
        .set(C::Seeks, s.seeks)
        .set(C::Stats, s.stats)
        .set(C::Reads, s.reads)
        .set(C::Writes, s.writes)
        .set(C::BytesRead, s.bytes_read)
        .set(C::BytesWritten, s.bytes_written)
        .set(C::SeqReads, s.reads)
        .set(C::SeqWrites, s.writes)
        .set(C::MaxByteRead, (s.bytes_read - 1).max(0))
        .set(C::MaxByteWritten, (s.bytes_written - 1).max(0));
    size_histogram(rec, s.reads, s.bytes_read, true);
    size_histogram(rec, s.writes, s.bytes_written, false);
    rec.setf(F::OpenStartTimestamp, s.open_start)
        .setf(F::OpenEndTimestamp, s.open_end)
        .setf(F::CloseStartTimestamp, s.close_start)
        .setf(F::CloseEndTimestamp, s.close_end)
        .setf(F::ReadStartTimestamp, s.read_start)
        .setf(F::ReadEndTimestamp, s.read_end)
        .setf(F::WriteStartTimestamp, s.write_start)
        .setf(F::WriteEndTimestamp, s.write_end)
        .setf(F::ReadTime, s.read_time)
        .setf(F::WriteTime, s.write_time)
        .setf(F::MetaTime, s.meta_time);
}

fn size_histogram(rec: &mut PosixRecord, ops: i64, bytes: i64, read: bool) {
    if ops <= 0 {
        return;
    }
    let avg = bytes / ops;
    let bucket = match (read, avg) {
        (true, 0..=99) => C::SizeRead0To100,
        (true, 100..=1023) => C::SizeRead100To1k,
        (true, 1024..=1_048_575) => C::SizeRead1kTo1m,
        (true, _) => C::SizeRead1mPlus,
        (false, 0..=99) => C::SizeWrite0To100,
        (false, 100..=1023) => C::SizeWrite100To1k,
        (false, 1024..=1_048_575) => C::SizeWrite1kTo1m,
        (false, _) => C::SizeWrite1mPlus,
    };
    rec.set(bucket, ops);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_multiple_ops_per_file() {
        let mut shim = Shim::new(2, false);
        shim.on_open(0, "/f", 1.0, 1.1);
        shim.on_read(0, "/f", 100, 1.2, 2.0);
        shim.on_read(0, "/f", 50, 5.0, 6.0);
        shim.on_close(0, "/f", 6.1, 6.2);
        let trace = shim.into_trace(1, 1, 0, 10, "/bin/x");
        assert_eq!(trace.records().len(), 1);
        let r = &trace.records()[0];
        assert_eq!(r.get(C::Reads), 2);
        assert_eq!(r.get(C::BytesRead), 150);
        assert_eq!(r.getf(F::ReadStartTimestamp), 1.2);
        assert_eq!(r.getf(F::ReadEndTimestamp), 6.0);
        assert!((r.getf(F::ReadTime) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn shared_reduction_collapses_all_rank_files() {
        let mut shim = Shim::new(4, true);
        for rank in 0..4 {
            shim.on_open(rank, "/shared", 1.0 + rank as f64 * 0.01, 1.1);
            shim.on_write(rank, "/shared", 25, 2.0, 3.0 + rank as f64 * 0.1);
        }
        shim.on_write(0, "/private.0", 10, 4.0, 4.5);
        let trace = shim.into_trace(1, 1, 0, 10, "/bin/x");
        assert_eq!(trace.records().len(), 2);
        let shared = trace.records().iter().find(|r| r.rank == SHARED_RANK).unwrap();
        assert_eq!(shared.get(C::Opens), 4);
        assert_eq!(shared.get(C::BytesWritten), 100);
        assert_eq!(shared.getf(F::WriteEndTimestamp), 3.3);
        let private = trace.records().iter().find(|r| r.rank == 0).unwrap();
        assert_eq!(private.get(C::BytesWritten), 10);
    }

    #[test]
    fn no_reduction_when_disabled_or_partial() {
        let mut shim = Shim::new(4, true);
        // Only 2 of 4 ranks touch the file: no reduction.
        shim.on_open(0, "/partial", 1.0, 1.1);
        shim.on_open(1, "/partial", 1.0, 1.1);
        let trace = shim.into_trace(1, 1, 0, 10, "/bin/x");
        assert_eq!(trace.records().len(), 2);
        assert!(trace.records().iter().all(|r| r.rank >= 0));
    }

    #[test]
    fn size_histogram_buckets() {
        let mut shim = Shim::new(1, false);
        shim.on_read(0, "/tiny", 50, 0.1, 0.2);
        shim.on_write(0, "/big", 2 << 20, 0.3, 0.9);
        let trace = shim.into_trace(1, 1, 0, 10, "/bin/x");
        let tiny =
            trace.records().iter().find(|r| trace.path_of(r.record_id) == Some("/tiny")).unwrap();
        assert_eq!(tiny.get(C::SizeRead0To100), 1);
        let big =
            trace.records().iter().find(|r| trace.path_of(r.record_id) == Some("/big")).unwrap();
        assert_eq!(big.get(C::SizeWrite1mPlus), 1);
    }

    #[test]
    fn produced_trace_is_valid() {
        let mut shim = Shim::new(2, true);
        for rank in 0..2 {
            shim.on_open(rank, "/data", 0.5, 0.6);
            shim.on_read(rank, "/data", 1000, 0.7, 1.4);
            shim.on_close(rank, "/data", 1.5, 1.6);
        }
        let trace = shim.into_trace(7, 42, 1_000_000, 1_000_010, "/bin/app");
        let report = mosaic_darshan::validate::validate(&trace);
        assert!(report.is_clean(), "{report:?}");
    }
}
