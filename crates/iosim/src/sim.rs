//! The event-driven simulation engine.

use crate::config::MachineConfig;
use crate::mds::MetadataServer;
use crate::pfs::{FlowId, Pfs};
use crate::program::{Phase, Program};
use crate::shim::Shim;
use crate::striping::StripedPfs;
use mosaic_darshan::dxt::DxtTrace;
use mosaic_darshan::TraceLog;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// Unix epoch used as the default job start (2019-01-01, the Blue Waters
/// peak year the paper analyzes).
pub const DEFAULT_EPOCH: i64 = 1_546_300_800;

/// A configured simulation: machine + job size + RNG seed.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: MachineConfig,
    nprocs: u32,
    seed: u64,
    job_id: u64,
    uid: u32,
    start_time: i64,
    dxt: bool,
}

/// Everything a run produces beyond the trace itself.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The Darshan-like trace.
    pub trace: TraceLog,
    /// Simulated wallclock of the job, seconds.
    pub makespan: f64,
    /// Peak metadata requests observed in any one second.
    pub mds_peak: u64,
    /// Total metadata requests issued.
    pub mds_total: u64,
    /// `true` if the metadata server hit saturation at least once.
    pub mds_saturated: bool,
    /// Total bytes moved through the PFS.
    pub bytes_moved: f64,
    /// Full-resolution DXT trace, when enabled via [`Simulation::with_dxt`].
    pub dxt: Option<DxtTrace>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Ready { rank: u32 },
    FlowCheck { epoch: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first, tie-break on
        // insertion order for determinism.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

struct PendingFlow {
    rank: u32,
    path: String,
    bytes: u64,
    start: f64,
    is_read: bool,
}

/// Bandwidth model selected by [`MachineConfig::n_osts`].
enum Model {
    Fair(Pfs),
    Striped(StripedPfs),
}

impl Model {
    fn start_flow(&mut self, now: f64, bytes: u64, path: &str) -> FlowId {
        match self {
            Model::Fair(p) => p.start_flow(now, bytes),
            Model::Striped(p) => p.start_flow(now, bytes, path),
        }
    }

    fn finish_flow(&mut self, now: f64, id: FlowId) -> f64 {
        match self {
            Model::Fair(p) => p.finish_flow(now, id),
            Model::Striped(p) => p.finish_flow(now, id),
        }
    }

    fn next_completion(&self) -> Option<(FlowId, f64)> {
        match self {
            Model::Fair(p) => p.next_completion(),
            Model::Striped(p) => p.next_completion(),
        }
    }

    fn bytes_moved(&self) -> f64 {
        match self {
            Model::Fair(p) => p.bytes_moved(),
            Model::Striped(p) => p.bytes_moved(),
        }
    }
}

impl Simulation {
    /// New simulation on `config` with `nprocs` ranks and a deterministic
    /// `seed`.
    pub fn new(config: MachineConfig, nprocs: u32, seed: u64) -> Self {
        assert!(nprocs > 0, "nprocs must be positive");
        Simulation {
            config: config.validated(),
            nprocs,
            seed,
            job_id: seed,
            uid: 1000,
            start_time: DEFAULT_EPOCH,
            dxt: false,
        }
    }

    /// Also capture a DXT (per-access) trace, like Darshan's DXT module.
    pub fn with_dxt(mut self) -> Self {
        self.dxt = true;
        self
    }

    /// Override the job identity recorded in the trace header.
    pub fn with_identity(mut self, job_id: u64, uid: u32, start_time: i64) -> Self {
        self.job_id = job_id;
        self.uid = uid;
        self.start_time = start_time;
        self
    }

    /// Run `program` and return only the trace.
    pub fn run(&self, program: &Program, exe: &str) -> TraceLog {
        self.run_detailed(program, exe).trace
    }

    /// Run `program` (SPMD: every rank executes it) and return the trace
    /// plus engine statistics.
    pub fn run_detailed(&self, program: &Program, exe: &str) -> SimOutcome {
        let flat = program.flatten();
        let per_rank = vec![flat; self.nprocs as usize];
        self.run_flat(per_rank, exe)
    }

    /// Run an MPMD job: rank `r` executes `programs[assign(r)]` — the
    /// I/O-master idiom (rank 0 funnels output while others compute) and
    /// coupled-code idioms live here.
    ///
    /// All programs must contain the same number of barriers (barriers are
    /// global across the job); this is asserted up front because a mismatch
    /// would deadlock a real MPI application just the same.
    pub fn run_mpmd(
        &self,
        programs: &[Program],
        assign: impl Fn(u32) -> usize,
        exe: &str,
    ) -> SimOutcome {
        assert!(!programs.is_empty(), "need at least one program");
        let flats: Vec<Vec<Phase>> = programs.iter().map(Program::flatten).collect();
        let barrier_counts: Vec<usize> = flats
            .iter()
            .map(|f| f.iter().filter(|p| matches!(p, Phase::Barrier)).count())
            .collect();
        assert!(
            barrier_counts.windows(2).all(|w| w[0] == w[1]),
            "programs disagree on barrier count ({barrier_counts:?}): global              barriers would deadlock"
        );
        let per_rank: Vec<Vec<Phase>> = (0..self.nprocs)
            .map(|r| {
                let idx = assign(r);
                assert!(idx < programs.len(), "assign({r}) = {idx} out of range");
                flats[idx].clone()
            })
            .collect();
        self.run_flat(per_rank, exe)
    }

    fn run_flat(&self, flat_per_rank: Vec<Vec<Phase>>, exe: &str) -> SimOutcome {
        let n = self.nprocs;
        debug_assert_eq!(flat_per_rank.len(), n as usize);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut pfs = if self.config.n_osts > 0 {
            Model::Striped(StripedPfs::new(
                self.config.n_osts,
                self.config.ost_bandwidth,
                self.config.per_rank_bandwidth,
                self.config.stripe_count,
            ))
        } else {
            Model::Fair(Pfs::new(self.config.pfs_bandwidth, self.config.per_rank_bandwidth))
        };
        let mut mds = MetadataServer::new(self.config.mds_capacity, self.config.mds_base_latency);
        let mut shim = Shim::new(n, true);
        if self.dxt {
            shim = shim.with_dxt();
        }

        let mut queue: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |queue: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
            *seq += 1;
            queue.push(Event { time, seq: *seq, kind });
        };

        let mut ip = vec![0usize; n as usize];
        let mut barrier: Vec<(u32, f64)> = Vec::new();
        let mut flows: BTreeMap<FlowId, PendingFlow> = BTreeMap::new();
        let mut epoch = 0u64;
        let mut makespan = 0.0f64;

        // Desynchronized starts: each rank begins within a small jittered
        // offset, seeding the process drift the merge algorithms handle.
        for rank in 0..n {
            let offset = rng.gen_range(0.0..=self.config.rank_jitter.max(1e-9));
            push(&mut queue, &mut seq, offset, EventKind::Ready { rank });
        }

        while let Some(ev) = queue.pop() {
            let now = ev.time;
            makespan = makespan.max(now);
            match ev.kind {
                EventKind::FlowCheck { epoch: ev_epoch } => {
                    if ev_epoch != epoch {
                        continue; // stale prediction
                    }
                    let Some((flow_id, t)) = pfs.next_completion() else { continue };
                    debug_assert!((t - now).abs() < 1e-6, "completion drift: {t} vs {now}");
                    pfs.finish_flow(now, flow_id);
                    let pf = flows.remove(&flow_id).expect("pending flow");
                    if pf.is_read {
                        shim.on_read(pf.rank, &pf.path, pf.bytes, pf.start, now);
                    } else {
                        shim.on_write(pf.rank, &pf.path, pf.bytes, pf.start, now);
                    }
                    push(&mut queue, &mut seq, now, EventKind::Ready { rank: pf.rank });
                    epoch += 1;
                    if let Some((_, tn)) = pfs.next_completion() {
                        push(&mut queue, &mut seq, tn, EventKind::FlowCheck { epoch });
                    }
                }
                EventKind::Ready { rank } => {
                    let i = &mut ip[rank as usize];
                    let flat = &flat_per_rank[rank as usize];
                    if *i >= flat.len() {
                        continue; // rank finished
                    }
                    let phase = &flat[*i];
                    *i += 1;
                    match phase {
                        Phase::Compute { seconds } => {
                            // Multiplicative jitter models load imbalance.
                            let factor =
                                1.0 + self.config.rank_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
                            let dur = (seconds * factor).max(0.0);
                            push(&mut queue, &mut seq, now + dur, EventKind::Ready { rank });
                        }
                        Phase::Open { file } => {
                            let path = file.path_for(rank);
                            let done = mds.submit(now, 1);
                            shim.on_open(rank, &path, now, done);
                            push(&mut queue, &mut seq, done, EventKind::Ready { rank });
                        }
                        Phase::Seek { file, count } => {
                            let path = file.path_for(rank);
                            let done = mds.submit(now, *count as u64);
                            shim.on_seek(rank, &path, *count, now, done);
                            push(&mut queue, &mut seq, done, EventKind::Ready { rank });
                        }
                        Phase::Stat { file, count } => {
                            let path = file.path_for(rank);
                            let done = mds.submit(now, *count as u64);
                            shim.on_stat(rank, &path, *count, now, done);
                            push(&mut queue, &mut seq, done, EventKind::Ready { rank });
                        }
                        Phase::Close { file } => {
                            let path = file.path_for(rank);
                            let done = mds.submit(now, 1);
                            shim.on_close(rank, &path, now, done);
                            push(&mut queue, &mut seq, done, EventKind::Ready { rank });
                        }
                        Phase::Read { file, bytes } | Phase::Write { file, bytes } => {
                            let is_read = matches!(phase, Phase::Read { .. });
                            let path = file.path_for(rank);
                            let id = pfs.start_flow(now, *bytes, &path);
                            flows.insert(
                                id,
                                PendingFlow { rank, path, bytes: *bytes, start: now, is_read },
                            );
                            epoch += 1;
                            if let Some((_, tn)) = pfs.next_completion() {
                                push(&mut queue, &mut seq, tn, EventKind::FlowCheck { epoch });
                            }
                        }
                        Phase::Barrier => {
                            barrier.push((rank, now));
                            if barrier.len() as u32 == n {
                                let release =
                                    barrier.iter().map(|&(_, t)| t).fold(0.0f64, f64::max);
                                for &(r, _) in &barrier {
                                    push(
                                        &mut queue,
                                        &mut seq,
                                        release,
                                        EventKind::Ready { rank: r },
                                    );
                                }
                                barrier.clear();
                            }
                        }
                        Phase::Repeat { .. } => unreachable!("flattened programs have no Repeat"),
                    }
                }
            }
        }

        debug_assert!(flows.is_empty(), "dangling flows at end of simulation");
        let end_time = self.start_time + makespan.ceil().max(1.0) as i64;
        let dxt = shim.dxt_trace(self.job_id, self.uid, self.start_time, end_time, exe);
        let trace = shim.into_trace(self.job_id, self.uid, self.start_time, end_time, exe);
        SimOutcome {
            trace,
            makespan,
            mds_peak: mds.peak_load(),
            mds_total: mds.total_requests(),
            mds_saturated: mds.saturated(),
            bytes_moved: pfs.bytes_moved(),
            dxt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FileSpec;
    use mosaic_darshan::counter::PosixCounter as C;
    use mosaic_darshan::ops::OperationView;

    fn machine() -> MachineConfig {
        MachineConfig {
            pfs_bandwidth: 1e9,
            per_rank_bandwidth: 1e8,
            mds_capacity: 3000.0,
            mds_base_latency: 0.0005,
            rank_jitter: 0.02,
            ..MachineConfig::default()
        }
    }

    fn checkpointer(rounds: u32) -> Program {
        Program::new(vec![
            Phase::Open { file: FileSpec::shared("/in/data") },
            Phase::Read { file: FileSpec::shared("/in/data"), bytes: 1 << 20 },
            Phase::Close { file: FileSpec::shared("/in/data") },
            Phase::Repeat {
                times: rounds,
                body: vec![
                    Phase::Compute { seconds: 30.0 },
                    Phase::Open { file: FileSpec::per_rank("/ckpt/d") },
                    Phase::Write { file: FileSpec::per_rank("/ckpt/d"), bytes: 8 << 20 },
                    Phase::Close { file: FileSpec::per_rank("/ckpt/d") },
                    Phase::Barrier,
                ],
            },
        ])
    }

    #[test]
    fn volumes_match_program() {
        let sim = Simulation::new(machine(), 4, 7);
        let out = sim.run_detailed(&checkpointer(3), "/apps/ckpt");
        let t = &out.trace;
        assert_eq!(t.total_bytes_read() as u64, 4 * (1 << 20));
        assert_eq!(t.total_bytes_written() as u64, 4 * 3 * (8 << 20));
        assert!((out.bytes_moved - (4.0 * (1 << 20) as f64 + 12.0 * (8 << 20) as f64)).abs() < 1.0);
    }

    #[test]
    fn makespan_exceeds_compute_floor() {
        let sim = Simulation::new(machine(), 4, 7);
        let out = sim.run_detailed(&checkpointer(3), "/apps/ckpt");
        assert!(out.makespan > 3.0 * 30.0 * 0.97, "makespan {}", out.makespan);
        assert!(out.makespan < 3.0 * 30.0 * 1.5, "makespan {}", out.makespan);
    }

    #[test]
    fn produced_trace_is_valid_and_roundtrips() {
        let sim = Simulation::new(machine(), 8, 11);
        let trace = sim.run(&checkpointer(2), "/apps/ckpt");
        assert!(mosaic_darshan::validate::validate(&trace).is_clean());
        let bytes = mosaic_darshan::mdf::to_bytes(&trace);
        assert_eq!(mosaic_darshan::mdf::from_bytes(&bytes).unwrap(), trace);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Simulation::new(machine(), 4, 99).run(&checkpointer(2), "/x");
        let b = Simulation::new(machine(), 4, 99).run(&checkpointer(2), "/x");
        assert_eq!(a, b);
        let c = Simulation::new(machine(), 4, 100).run(&checkpointer(2), "/x");
        assert_ne!(a, c, "different seeds should perturb timings");
    }

    #[test]
    fn checkpoint_rounds_produce_periodic_write_intervals() {
        let sim = Simulation::new(machine(), 4, 5);
        let trace = sim.run(&checkpointer(5), "/apps/ckpt");
        let view = OperationView::from_log(&trace);
        // Per-rank checkpoint files: 4 ranks × 5 rounds but each (rank,file)
        // pair aggregates its 5 writes... per round a *new* open/write/close
        // on the same per-rank path, so one record per rank holding all 5
        // rounds. The write interval spans round 1 to round 5.
        assert!(!view.writes.is_empty());
        let total: u64 = view.writes.iter().map(|o| o.bytes).sum();
        assert_eq!(total, 4 * 5 * (8 << 20));
    }

    #[test]
    fn shared_read_reduces_to_one_record() {
        let sim = Simulation::new(machine(), 8, 3);
        let trace = sim.run(&checkpointer(1), "/apps/ckpt");
        let shared: Vec<_> = trace.records().iter().filter(|r| r.rank == -1).collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].get(C::Opens), 8);
    }

    #[test]
    fn mds_sees_expected_request_count() {
        let sim = Simulation::new(machine(), 4, 7);
        let out = sim.run_detailed(&checkpointer(3), "/apps/ckpt");
        // opens+closes: shared 4+4, per round 4+4 each → 8 + 3*8 = 32.
        assert_eq!(out.mds_total, 32);
        assert!(!out.mds_saturated);
    }

    #[test]
    fn metadata_storm_saturates_mds() {
        let storm = Program::new(vec![Phase::Repeat {
            times: 200,
            body: vec![
                Phase::Open { file: FileSpec::per_rank("/meta/f") },
                Phase::Close { file: FileSpec::per_rank("/meta/f") },
            ],
        }]);
        let cfg = MachineConfig { mds_capacity: 100.0, ..machine() };
        let out = Simulation::new(cfg, 16, 1).run_detailed(&storm, "/apps/storm");
        assert!(out.mds_peak >= 100, "peak {}", out.mds_peak);
        assert!(out.mds_saturated);
    }

    #[test]
    fn contention_stretches_io() {
        // 1 rank vs 16 ranks writing the same per-rank volume: aggregate
        // bound should stretch the 16-rank run's I/O phase.
        let prog = Program::new(vec![
            Phase::Open { file: FileSpec::per_rank("/o") },
            Phase::Write { file: FileSpec::per_rank("/o"), bytes: 100 << 20 },
            Phase::Close { file: FileSpec::per_rank("/o") },
        ]);
        let cfg = MachineConfig {
            pfs_bandwidth: 4e8,
            per_rank_bandwidth: 1e8,
            rank_jitter: 0.0,
            ..machine()
        };
        let solo = Simulation::new(cfg.clone(), 1, 1).run_detailed(&prog, "/x").makespan;
        let crowd = Simulation::new(cfg, 16, 1).run_detailed(&prog, "/x").makespan;
        // 16 ranks share 4e8: each gets 2.5e7 → 4× slower than solo 1e8.
        assert!(crowd > solo * 3.0, "solo {solo}, crowd {crowd}");
    }

    #[test]
    fn striped_model_is_selectable_and_stripe_width_matters() {
        // Shared-file N-to-1 write: wider stripes finish faster.
        let prog = Program::new(vec![
            Phase::Open { file: FileSpec::shared("/big/shared.out") },
            Phase::Write { file: FileSpec::shared("/big/shared.out"), bytes: 1 << 30 },
            Phase::Close { file: FileSpec::shared("/big/shared.out") },
        ]);
        let base = MachineConfig {
            n_osts: 64,
            ost_bandwidth: 5.0e8,
            per_rank_bandwidth: 1.0e11,
            rank_jitter: 0.0,
            ..machine()
        };
        let narrow = MachineConfig { stripe_count: 1, ..base.clone() };
        let wide = MachineConfig { stripe_count: 16, ..base };
        let t_narrow = Simulation::new(narrow, 1, 1).run_detailed(&prog, "/x").makespan;
        let t_wide = Simulation::new(wide, 1, 1).run_detailed(&prog, "/x").makespan;
        assert!(
            t_narrow > t_wide * 8.0,
            "striping speedup missing: narrow {t_narrow}, wide {t_wide}"
        );
    }

    #[test]
    fn striped_and_flat_models_conserve_volume() {
        let prog = checkpointer(3);
        let flat = Simulation::new(machine(), 4, 7).run(&prog, "/x");
        let striped_cfg = MachineConfig { n_osts: 32, ..machine() };
        let striped = Simulation::new(striped_cfg, 4, 7).run(&prog, "/x");
        assert_eq!(flat.total_bytes_written(), striped.total_bytes_written());
        assert_eq!(flat.total_bytes_read(), striped.total_bytes_read());
    }

    #[test]
    fn mpmd_io_master_pattern() {
        // Rank 0 is the I/O master: it writes everyone's output; other
        // ranks only compute. The classic funnel pattern.
        let master = Program::new(vec![
            Phase::Compute { seconds: 10.0 },
            Phase::Barrier,
            Phase::Open { file: FileSpec::shared("/out/all.dat") },
            Phase::Write { file: FileSpec::shared("/out/all.dat"), bytes: 64 << 20 },
            Phase::Close { file: FileSpec::shared("/out/all.dat") },
        ]);
        let worker = Program::new(vec![Phase::Compute { seconds: 10.0 }, Phase::Barrier]);
        let out = Simulation::new(machine(), 8, 4).run_mpmd(
            &[master, worker],
            |rank| usize::from(rank != 0),
            "/apps/funnel",
        );
        assert_eq!(out.trace.total_bytes_written() as u64, 64 << 20);
        // Only rank 0 touched the file: one record, rank 0.
        assert_eq!(out.trace.records().len(), 1);
        assert_eq!(out.trace.records()[0].rank, 0);
        assert_eq!(out.mds_total, 2); // one open + one close
    }

    #[test]
    #[should_panic(expected = "barrier count")]
    fn mpmd_barrier_mismatch_panics() {
        let a = Program::new(vec![Phase::Barrier]);
        let b = Program::new(vec![Phase::Compute { seconds: 1.0 }]);
        let _ = Simulation::new(machine(), 2, 1).run_mpmd(&[a, b], |r| r as usize, "/x");
    }

    #[test]
    fn mpmd_with_single_program_matches_spmd() {
        let prog = checkpointer(2);
        let spmd = Simulation::new(machine(), 4, 9).run_detailed(&prog, "/x");
        let mpmd = Simulation::new(machine(), 4, 9).run_mpmd(&[prog], |_| 0, "/x");
        assert_eq!(spmd.trace, mpmd.trace);
    }

    #[test]
    fn stat_phase_reaches_the_counters() {
        use mosaic_darshan::counter::PosixCounter as C;
        let prog =
            Program::new(vec![Phase::Stat { file: FileSpec::shared("/probe/target"), count: 7 }]);
        let out = Simulation::new(machine(), 4, 2).run_detailed(&prog, "/x");
        let total_stats: i64 = out.trace.records().iter().map(|r| r.get(C::Stats)).sum();
        assert_eq!(total_stats, 28); // 4 ranks × 7 stats
        assert_eq!(out.mds_total, 28);
    }

    #[test]
    fn empty_program_yields_empty_trace() {
        let sim = Simulation::new(machine(), 2, 1);
        let out = sim.run_detailed(&Program::new(vec![]), "/noop");
        assert!(out.trace.records().is_empty());
        assert_eq!(out.mds_total, 0);
    }
}
