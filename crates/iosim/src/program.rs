//! The workload language: per-rank programs built from I/O phases.

use serde::{Deserialize, Serialize};

/// Which file a phase targets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileSpec {
    /// One file accessed collectively by every rank (N-to-1 pattern; the
    /// shim can reduce it to a Darshan shared record).
    Shared(String),
    /// File-per-process pattern: rank `r` touches `"{prefix}.{r}"`.
    PerRank(String),
}

impl FileSpec {
    /// Shared-file spec.
    pub fn shared(path: impl Into<String>) -> Self {
        FileSpec::Shared(path.into())
    }

    /// File-per-process spec.
    pub fn per_rank(prefix: impl Into<String>) -> Self {
        FileSpec::PerRank(prefix.into())
    }

    /// Concrete path for a given rank.
    pub fn path_for(&self, rank: u32) -> String {
        match self {
            FileSpec::Shared(p) => p.clone(),
            FileSpec::PerRank(prefix) => format!("{prefix}.{rank}"),
        }
    }

    /// `true` when every rank resolves to the same path.
    pub fn is_shared(&self) -> bool {
        matches!(self, FileSpec::Shared(_))
    }
}

/// One step of a rank's execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Pure computation — occupies wallclock, no I/O resources.
    Compute {
        /// Nominal duration in seconds (jittered per rank by the engine).
        seconds: f64,
    },
    /// `open()` — a metadata request.
    Open {
        /// Target file.
        file: FileSpec,
    },
    /// Read `bytes` from `file` — a bandwidth flow.
    Read {
        /// Target file.
        file: FileSpec,
        /// Bytes per rank.
        bytes: u64,
    },
    /// Write `bytes` to `file` — a bandwidth flow.
    Write {
        /// Target file.
        file: FileSpec,
        /// Bytes per rank.
        bytes: u64,
    },
    /// `lseek()` bursts — metadata requests without data movement.
    Seek {
        /// Target file.
        file: FileSpec,
        /// Number of seeks issued.
        count: u32,
    },
    /// `close()` — a metadata request.
    Close {
        /// Target file.
        file: FileSpec,
    },
    /// `stat()` bursts — metadata requests without opening the file.
    Stat {
        /// Target file.
        file: FileSpec,
        /// Number of stats issued.
        count: u32,
    },
    /// Synchronize all ranks (MPI_Barrier).
    Barrier,
    /// Repeat `body` a number of times — the checkpoint-loop idiom.
    Repeat {
        /// Iteration count.
        times: u32,
        /// Phases repeated each iteration.
        body: Vec<Phase>,
    },
}

/// A complete program: the phase list every rank executes (SPMD).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    phases: Vec<Phase>,
}

impl Program {
    /// Build a program from a phase list.
    pub fn new(phases: Vec<Phase>) -> Self {
        Program { phases }
    }

    /// The raw (possibly nested) phase list.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Flatten `Repeat` blocks into a linear instruction list for execution.
    pub fn flatten(&self) -> Vec<Phase> {
        let mut out = Vec::new();
        flatten_into(&self.phases, &mut out);
        out
    }

    /// Total bytes a single rank reads (static analysis, for tests).
    pub fn bytes_read_per_rank(&self) -> u64 {
        self.flatten()
            .iter()
            .map(|p| match p {
                Phase::Read { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes a single rank writes.
    pub fn bytes_written_per_rank(&self) -> u64 {
        self.flatten()
            .iter()
            .map(|p| match p {
                Phase::Write { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Lower bound on one rank's wallclock (compute only, no contention).
    pub fn min_compute_seconds(&self) -> f64 {
        self.flatten()
            .iter()
            .map(|p| match p {
                Phase::Compute { seconds } => *seconds,
                _ => 0.0,
            })
            .sum()
    }
}

fn flatten_into(phases: &[Phase], out: &mut Vec<Phase>) {
    for p in phases {
        match p {
            Phase::Repeat { times, body } => {
                for _ in 0..*times {
                    flatten_into(body, out);
                }
            }
            other => out.push(other.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filespec_paths() {
        let s = FileSpec::shared("/data/mesh");
        assert_eq!(s.path_for(0), "/data/mesh");
        assert_eq!(s.path_for(7), "/data/mesh");
        assert!(s.is_shared());
        let p = FileSpec::per_rank("/ckpt/dump");
        assert_eq!(p.path_for(3), "/ckpt/dump.3");
        assert!(!p.is_shared());
    }

    #[test]
    fn flatten_expands_repeats() {
        let prog = Program::new(vec![
            Phase::Compute { seconds: 1.0 },
            Phase::Repeat {
                times: 3,
                body: vec![
                    Phase::Compute { seconds: 2.0 },
                    Phase::Repeat { times: 2, body: vec![Phase::Barrier] },
                ],
            },
        ]);
        let flat = prog.flatten();
        assert_eq!(flat.len(), 1 + 3 * (1 + 2));
        assert_eq!(flat.iter().filter(|p| matches!(p, Phase::Barrier)).count(), 6);
        assert_eq!(prog.min_compute_seconds(), 1.0 + 3.0 * 2.0);
    }

    #[test]
    fn static_byte_analysis() {
        let f = FileSpec::per_rank("/x");
        let prog = Program::new(vec![
            Phase::Read { file: f.clone(), bytes: 100 },
            Phase::Repeat { times: 4, body: vec![Phase::Write { file: f.clone(), bytes: 25 }] },
        ]);
        assert_eq!(prog.bytes_read_per_rank(), 100);
        assert_eq!(prog.bytes_written_per_rank(), 100);
    }

    #[test]
    fn zero_repeat_contributes_nothing() {
        let prog = Program::new(vec![Phase::Repeat { times: 0, body: vec![Phase::Barrier] }]);
        assert!(prog.flatten().is_empty());
    }
}
