//! OST-level striping model of the parallel file system.
//!
//! Blue Waters' scratch file system spread 26 PB over 360 OSSs and 1440
//! OSTs (object storage targets); a file's throughput depends on how many
//! OSTs it stripes across and how many other flows share them. The flat
//! [`crate::pfs::Pfs`] model treats the machine as one bandwidth pool; this
//! model gives each OST its own capacity:
//!
//! * a file's stripes are a deterministic function of its path (Lustre's
//!   default layout: `stripe_count` consecutive OSTs starting at a
//!   path-hash offset);
//! * each OST splits its bandwidth evenly among the flows touching it;
//! * a flow's rate is the sum of its per-stripe shares, capped by the
//!   client's link.
//!
//! Rates are piecewise constant between flow arrivals/departures, like the
//! flat model, so the engine integration is identical. The
//! `ost_striping` bench shows the phenomena this captures and the flat
//! model cannot: stripe-width scaling for single files and OST hotspots
//! when many files hash onto the same targets.

use crate::pfs::FlowId;
use mosaic_darshan::synthutil::fnv1a64;
use std::collections::BTreeMap;

/// Striped parallel file system state.
///
/// Flows live in a `BTreeMap` so that iteration — and therefore the
/// floating-point accumulation order of `bytes_moved` — is deterministic
/// across runs and hash seeds.
#[derive(Debug, Clone)]
pub struct StripedPfs {
    n_osts: usize,
    ost_bw: f64,
    per_client_bw: f64,
    stripe_count: usize,
    flows: BTreeMap<FlowId, Flow>,
    last_update: f64,
    next_id: FlowId,
    bytes_moved: f64,
}

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
    osts: Vec<u32>,
}

impl StripedPfs {
    /// New model: `n_osts` targets of `ost_bw` bytes/s each, files striped
    /// over `stripe_count` OSTs, clients capped at `per_client_bw`.
    pub fn new(n_osts: usize, ost_bw: f64, per_client_bw: f64, stripe_count: usize) -> Self {
        assert!(n_osts >= 1 && ost_bw > 0.0 && per_client_bw > 0.0);
        assert!(stripe_count >= 1);
        StripedPfs {
            n_osts,
            ost_bw,
            per_client_bw,
            stripe_count: stripe_count.min(n_osts),
            flows: BTreeMap::new(),
            last_update: 0.0,
            next_id: 0,
            bytes_moved: 0.0,
        }
    }

    /// The OSTs a path stripes over (Lustre default layout: consecutive
    /// targets from a hash-derived starting index).
    pub fn stripes_for(&self, path: &str) -> Vec<u32> {
        let start = (fnv1a64(path.as_bytes()) % self.n_osts as u64) as usize;
        (0..self.stripe_count).map(|i| ((start + i) % self.n_osts) as u32).collect()
    }

    /// Per-OST sharer counts for the active flows.
    fn sharers(&self) -> BTreeMap<u32, usize> {
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for f in self.flows.values() {
            for &ost in &f.osts {
                *counts.entry(ost).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Current rate of one flow under per-OST fair sharing.
    fn rate_of(&self, flow: &Flow, sharers: &BTreeMap<u32, usize>) -> f64 {
        let total: f64 = flow
            .osts
            .iter()
            .map(|ost| self.ost_bw / sharers.get(ost).copied().unwrap_or(1) as f64)
            .sum();
        total.min(self.per_client_bw)
    }

    /// Number of active flows.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes transferred.
    pub fn bytes_moved(&self) -> f64 {
        self.bytes_moved
    }

    /// Advance all flows to `now` at current rates.
    pub fn advance_to(&mut self, now: f64) {
        let dt = (now - self.last_update).max(0.0);
        if dt > 0.0 && !self.flows.is_empty() {
            let sharers = self.sharers();
            let rates: Vec<(FlowId, f64)> =
                self.flows.iter().map(|(&id, f)| (id, self.rate_of(f, &sharers))).collect();
            for (id, rate) in rates {
                let f = self.flows.get_mut(&id).expect("flow exists");
                let step = (rate * dt).min(f.remaining);
                f.remaining -= step;
                self.bytes_moved += step;
            }
        }
        self.last_update = now;
    }

    /// Start a transfer of `bytes` on `path`'s stripes at time `now`.
    pub fn start_flow(&mut self, now: f64, bytes: u64, path: &str) -> FlowId {
        self.advance_to(now);
        let id = self.next_id;
        self.next_id += 1;
        let osts = self.stripes_for(path);
        self.flows.insert(id, Flow { remaining: bytes as f64, osts });
        id
    }

    /// Remove a completed flow; returns residual bytes.
    pub fn finish_flow(&mut self, now: f64, id: FlowId) -> f64 {
        self.advance_to(now);
        self.flows.remove(&id).map(|f| f.remaining).unwrap_or(0.0)
    }

    /// Earliest completion under current rates.
    pub fn next_completion(&self) -> Option<(FlowId, f64)> {
        if self.flows.is_empty() {
            return None;
        }
        let sharers = self.sharers();
        self.flows
            .iter()
            .filter_map(|(&id, f)| {
                let rate = self.rate_of(f, &sharers);
                (rate > 0.0).then(|| (id, self.last_update + f.remaining / rate))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// Wallclock to move `bytes` on `path` with no competing flows.
    pub fn solo_transfer_seconds(&self, bytes: u64, path: &str) -> f64 {
        let osts = self.stripes_for(path).len() as f64;
        let rate = (osts * self.ost_bw).min(self.per_client_bw);
        bytes as f64 / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_are_deterministic_and_distinct() {
        let pfs = StripedPfs::new(16, 10.0, 1000.0, 4);
        let a = pfs.stripes_for("/f/a");
        assert_eq!(a, pfs.stripes_for("/f/a"));
        assert_eq!(a.len(), 4);
        let unique: std::collections::HashSet<u32> = a.iter().copied().collect();
        assert_eq!(unique.len(), 4, "consecutive stripes must be distinct");
    }

    #[test]
    fn stripe_count_scales_single_file_bandwidth() {
        // One flow: rate = stripes × ost_bw (below client cap).
        for (stripes, expect) in [(1usize, 10.0), (2, 20.0), (4, 40.0)] {
            let mut pfs = StripedPfs::new(16, 10.0, 1000.0, stripes);
            pfs.start_flow(0.0, 400, "/data");
            let (_, t) = pfs.next_completion().unwrap();
            assert!((t - 400.0 / expect).abs() < 1e-9, "stripes {stripes}: t = {t}");
        }
    }

    #[test]
    fn client_cap_limits_wide_stripes() {
        let mut pfs = StripedPfs::new(64, 10.0, 25.0, 32);
        pfs.start_flow(0.0, 250, "/data");
        let (_, t) = pfs.next_completion().unwrap();
        // 32 stripes × 10 = 320, capped at 25.
        assert!((t - 10.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn ost_contention_halves_colliding_flows() {
        // Two files forced onto the same single OST (n_osts = 1).
        let mut pfs = StripedPfs::new(1, 10.0, 1000.0, 1);
        let a = pfs.start_flow(0.0, 100, "/a");
        let _b = pfs.start_flow(0.0, 100, "/b");
        // Each gets 5 B/s → both complete at t = 20.
        let (first, t) = pfs.next_completion().unwrap();
        assert!((t - 20.0).abs() < 1e-9);
        pfs.finish_flow(t, first);
        let (_, t2) = pfs.next_completion().unwrap();
        assert!((t2 - 20.0).abs() < 1e-6, "t2 = {t2}");
        let _ = a;
    }

    #[test]
    fn disjoint_osts_do_not_interfere() {
        let pfs_probe = StripedPfs::new(64, 10.0, 1000.0, 1);
        // Find two paths on different OSTs.
        let mut paths = ("/x0".to_owned(), None::<String>);
        let first_ost = pfs_probe.stripes_for(&paths.0)[0];
        for i in 1..200 {
            let p = format!("/x{i}");
            if pfs_probe.stripes_for(&p)[0] != first_ost {
                paths.1 = Some(p);
                break;
            }
        }
        let other = paths.1.expect("found disjoint path");

        let mut pfs = StripedPfs::new(64, 10.0, 1000.0, 1);
        pfs.start_flow(0.0, 100, &paths.0);
        pfs.start_flow(0.0, 100, &other);
        // Both run at a full OST each: complete at t = 10.
        let (_, t) = pfs.next_completion().unwrap();
        assert!((t - 10.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn conservation_and_drain() {
        let mut pfs = StripedPfs::new(8, 10.0, 50.0, 2);
        for i in 0..6 {
            pfs.start_flow(i as f64 * 0.1, 100 + i, &format!("/f{i}"));
        }
        let mut guard = 0;
        while let Some((id, t)) = pfs.next_completion() {
            pfs.finish_flow(t, id);
            guard += 1;
            assert!(guard < 50, "did not drain");
        }
        let expected: f64 = (0..6).map(|i| 100.0 + i as f64).sum();
        assert!((pfs.bytes_moved() - expected).abs() < 1e-6);
        assert_eq!(pfs.active(), 0);
    }

    #[test]
    fn solo_transfer_estimate_matches_simulation() {
        let mut pfs = StripedPfs::new(16, 10.0, 1000.0, 4);
        let est = pfs.solo_transfer_seconds(400, "/data");
        pfs.start_flow(0.0, 400, "/data");
        let (_, t) = pfs.next_completion().unwrap();
        assert!((t - est).abs() < 1e-9);
    }
}
