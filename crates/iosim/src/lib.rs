//! # mosaic-iosim
//!
//! A discrete-event simulator of an HPC machine's I/O path, instrumented
//! with a Darshan-like shim that emits [`mosaic_darshan::TraceLog`]s.
//!
//! The MOSAIC paper analyzes traces produced by real applications running on
//! Blue Waters (26k+ nodes, Lustre, 360 OSSs / 1440 OSTs, a metadata server
//! that saturates around a few thousand requests per second). That machine
//! is gone; this crate provides an execution-derived trace source with the
//! phenomena MOSAIC's algorithms exist to handle:
//!
//! * **rank desynchronization** — per-rank jitter slides nominally
//!   collective operations apart (what the concurrent-merge step re-fuses);
//! * **fair-share storage bandwidth** — concurrent flows split the parallel
//!   file system's aggregate bandwidth (a fluid, max–min model), so phases
//!   stretch under contention;
//! * **metadata server load** — open/seek/stat/close requests hit a
//!   capacity-limited metadata server whose response time degrades as the
//!   per-second arrival rate approaches saturation (modeled after the
//!   Mistral MDS benchmarked by Kunkel & Markomanolis, ≈3000 req/s, which
//!   the paper uses to set its thresholds);
//! * **open/close aggregation** — the instrumentation shim records only
//!   counter totals and first/last timestamps per `(rank, file)`, exactly
//!   like Darshan, including optional reduction of identical per-rank
//!   records into a shared (rank −1) record.
//!
//! ## Structure
//!
//! * [`program`] — the workload language: phases (compute, open, read,
//!   write, seek, close, barrier, repeat) composed into per-rank programs;
//! * [`pfs`] — the fluid-flow parallel-file-system bandwidth model;
//! * [`mds`] — the metadata-server latency/saturation model;
//! * [`shim`] — the Darshan-like instrumentation layer;
//! * [`sim`] — the event-driven engine tying it together;
//! * [`config`] — machine parameters (Blue Waters-flavoured defaults).
//!
//! ```
//! use mosaic_iosim::config::MachineConfig;
//! use mosaic_iosim::program::{FileSpec, Phase, Program};
//! use mosaic_iosim::sim::Simulation;
//!
//! // 8 ranks: read a shared input, then 3 checkpoint rounds.
//! let program = Program::new(vec![
//!     Phase::Open { file: FileSpec::shared("/in/mesh.dat") },
//!     Phase::Read { file: FileSpec::shared("/in/mesh.dat"), bytes: 1 << 20 },
//!     Phase::Close { file: FileSpec::shared("/in/mesh.dat") },
//!     Phase::Repeat {
//!         times: 3,
//!         body: vec![
//!             Phase::Compute { seconds: 60.0 },
//!             Phase::Open { file: FileSpec::per_rank("/ckpt/dump") },
//!             Phase::Write { file: FileSpec::per_rank("/ckpt/dump"), bytes: 4 << 20 },
//!             Phase::Close { file: FileSpec::per_rank("/ckpt/dump") },
//!             Phase::Barrier,
//!         ],
//!     },
//! ]);
//! let trace = Simulation::new(MachineConfig::default(), 8, 1)
//!     .run(&program, "/apps/sim/checkpointer");
//! assert!(trace.total_bytes_written() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod mds;
pub mod pfs;
pub mod program;
pub mod shim;
pub mod sim;
pub mod striping;

pub use config::MachineConfig;
pub use program::{FileSpec, Phase, Program};
pub use sim::Simulation;
