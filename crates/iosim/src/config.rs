//! Machine parameters for the simulator.

use serde::{Deserialize, Serialize};

/// Parameters of the simulated machine's I/O path.
///
/// Defaults are scaled-down Blue Waters-flavoured numbers: what matters for
/// MOSAIC is not absolute speed but the *relationships* — metadata latency
/// that degrades near saturation, bandwidth that is shared fairly across
/// concurrent flows, and ranks that drift slightly apart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Aggregate parallel-file-system bandwidth, bytes per second.
    pub pfs_bandwidth: f64,
    /// Metadata server capacity, requests per second (Mistral-like ≈ 3000;
    /// the paper's thresholds derive from this figure).
    pub mds_capacity: f64,
    /// Metadata request service time at zero load, seconds.
    pub mds_base_latency: f64,
    /// Standard deviation of per-rank start/compute jitter, as a fraction of
    /// the phase duration (process desynchronization).
    pub rank_jitter: f64,
    /// Per-rank bandwidth ceiling, bytes per second (a single client cannot
    /// use the whole machine).
    pub per_rank_bandwidth: f64,
    /// Number of OSTs. `0` selects the flat fair-share bandwidth model;
    /// any positive count enables per-OST striping (Blue Waters: 1440).
    pub n_osts: usize,
    /// Per-OST bandwidth, bytes per second (used when `n_osts > 0`).
    pub ost_bandwidth: f64,
    /// Default stripe count for files (Lustre default layout).
    pub stripe_count: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            // 100 GB/s aggregate, 1 GB/s per client — Blue Waters-ish ratios.
            pfs_bandwidth: 100.0e9,
            per_rank_bandwidth: 1.0e9,
            mds_capacity: 3000.0,
            mds_base_latency: 0.001,
            rank_jitter: 0.02,
            n_osts: 0,
            ost_bandwidth: 500.0e6,
            stripe_count: 4,
        }
    }
}

impl MachineConfig {
    /// Validate parameter sanity; panics on nonsensical configurations so
    /// misuse fails fast in tests rather than producing silent nonsense.
    pub fn validated(self) -> Self {
        assert!(self.pfs_bandwidth > 0.0, "pfs_bandwidth must be positive");
        assert!(self.per_rank_bandwidth > 0.0, "per_rank_bandwidth must be positive");
        assert!(self.mds_capacity > 0.0, "mds_capacity must be positive");
        assert!(self.mds_base_latency >= 0.0, "mds_base_latency must be non-negative");
        assert!((0.0..1.0).contains(&self.rank_jitter), "rank_jitter must be in [0, 1)");
        if self.n_osts > 0 {
            assert!(self.ost_bandwidth > 0.0, "ost_bandwidth must be positive");
            assert!(self.stripe_count >= 1, "stripe_count must be at least 1");
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = MachineConfig::default().validated();
        assert!(c.pfs_bandwidth > c.per_rank_bandwidth);
    }

    #[test]
    #[should_panic(expected = "pfs_bandwidth")]
    fn bad_bandwidth_panics() {
        let _ = MachineConfig { pfs_bandwidth: 0.0, ..Default::default() }.validated();
    }

    #[test]
    #[should_panic(expected = "rank_jitter")]
    fn bad_jitter_panics() {
        let _ = MachineConfig { rank_jitter: 1.5, ..Default::default() }.validated();
    }
}
