//! Metadata-server latency and saturation model.
//!
//! The paper sets its metadata thresholds from Kunkel & Markomanolis'
//! `mdworkbench` measurements: a Lustre metadata server comparable to Blue
//! Waters' (DKRZ's Mistral) saturates at roughly **3000 requests per
//! second**. This model keeps a per-second arrival histogram and serves each
//! request with a latency that grows as the current second's load
//! approaches capacity — an M/M/1-flavoured `base / (1 - ρ)` curve, clamped
//! so overload degrades sharply but finitely.

use serde::{Deserialize, Serialize};

/// Metadata server state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetadataServer {
    capacity: f64,
    base_latency: f64,
    /// Requests observed per 1-second bin.
    histogram: Vec<u64>,
    total_requests: u64,
}

/// Latency multiplier cap at/beyond saturation.
const MAX_SLOWDOWN: f64 = 100.0;

impl MetadataServer {
    /// New server with `capacity` requests/s and `base_latency` seconds of
    /// zero-load service time.
    pub fn new(capacity: f64, base_latency: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        MetadataServer { capacity, base_latency, histogram: Vec::new(), total_requests: 0 }
    }

    /// Submit a burst of `count` requests at time `now`; returns the time at
    /// which the burst completes (now + modeled latency).
    pub fn submit(&mut self, now: f64, count: u64) -> f64 {
        let bin = now.max(0.0) as usize;
        if self.histogram.len() <= bin {
            self.histogram.resize(bin + 1, 0);
        }
        self.histogram[bin] += count;
        self.total_requests += count;

        let rho = (self.histogram[bin] as f64 / self.capacity).min(1.0);
        let slowdown =
            if rho >= 1.0 { MAX_SLOWDOWN } else { (1.0 / (1.0 - rho)).min(MAX_SLOWDOWN) };
        now + self.base_latency * slowdown * count as f64
    }

    /// Requests observed in second `bin`.
    pub fn load_at(&self, bin: usize) -> u64 {
        self.histogram.get(bin).copied().unwrap_or(0)
    }

    /// Peak requests per second observed.
    pub fn peak_load(&self) -> u64 {
        self.histogram.iter().copied().max().unwrap_or(0)
    }

    /// Total requests served.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// `true` if any second exceeded the saturation capacity.
    pub fn saturated(&self) -> bool {
        self.peak_load() as f64 >= self.capacity
    }

    /// The full per-second load histogram.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_latency_is_base() {
        let mut mds = MetadataServer::new(3000.0, 0.001);
        let done = mds.submit(0.0, 1);
        assert!((done - 0.001 / (1.0 - 1.0 / 3000.0)).abs() < 1e-9);
        assert_eq!(mds.total_requests(), 1);
        assert!(!mds.saturated());
    }

    #[test]
    fn latency_grows_with_load() {
        let mut mds = MetadataServer::new(100.0, 0.001);
        let t1 = mds.submit(0.0, 1) - 0.0;
        for _ in 0..89 {
            mds.submit(0.2, 1);
        }
        let t2 = mds.submit(0.5, 1) - 0.5;
        assert!(t2 > t1 * 5.0, "t1={t1} t2={t2}");
    }

    #[test]
    fn saturation_is_detected_and_clamped() {
        let mut mds = MetadataServer::new(100.0, 0.001);
        let done = mds.submit(2.0, 500);
        assert!(mds.saturated());
        assert_eq!(mds.peak_load(), 500);
        // Slowdown clamped: 0.001 * 100 * 500 requests.
        assert!((done - (2.0 + 0.001 * 100.0 * 500.0)).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_by_second() {
        let mut mds = MetadataServer::new(1000.0, 0.0);
        mds.submit(0.1, 3);
        mds.submit(0.9, 2);
        mds.submit(5.5, 7);
        assert_eq!(mds.load_at(0), 5);
        assert_eq!(mds.load_at(5), 7);
        assert_eq!(mds.load_at(3), 0);
        assert_eq!(mds.histogram().len(), 6);
        assert_eq!(mds.peak_load(), 7);
    }

    #[test]
    fn negative_time_clamps_to_first_bin() {
        let mut mds = MetadataServer::new(1000.0, 0.0);
        mds.submit(-3.0, 4);
        assert_eq!(mds.load_at(0), 4);
    }
}
