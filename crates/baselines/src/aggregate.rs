//! Aggregate-statistics categorization (the Devarajan-style baseline).
//!
//! Classifies a trace from totals alone — bytes read/written, metadata
//! request count, rank count. The paper's §II-B critique: "this type of
//! categorization only makes it possible to establish very high-level
//! patterns that do not provide temporal information". The classes here are
//! deliberately that coarse; benches compare their information content
//! against MOSAIC's category sets.

use mosaic_darshan::ops::{OpKind, OperationView};
use serde::{Deserialize, Serialize};

/// Coarse aggregate classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateClass {
    /// Below both volume thresholds and light on metadata.
    IoInactive,
    /// Reads dominate (≥ 4× more read than written).
    ReadIntensive,
    /// Writes dominate (≥ 4× more written than read).
    WriteIntensive,
    /// Significant volume in both directions.
    Balanced,
    /// Little data but heavy metadata traffic.
    MetadataIntensive,
}

impl AggregateClass {
    /// Snake-case label.
    pub fn name(self) -> &'static str {
        match self {
            AggregateClass::IoInactive => "io_inactive",
            AggregateClass::ReadIntensive => "read_intensive",
            AggregateClass::WriteIntensive => "write_intensive",
            AggregateClass::Balanced => "balanced",
            AggregateClass::MetadataIntensive => "metadata_intensive",
        }
    }
}

/// The aggregate categorizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateCategorizer {
    /// Volume below which a direction is ignored (default 100 MB, matching
    /// MOSAIC's significance threshold for comparability).
    pub volume_threshold: u64,
    /// Read/write ratio beyond which one direction "dominates".
    pub dominance_ratio: f64,
    /// Metadata requests per rank beyond which a low-volume trace is
    /// metadata-intensive.
    pub meta_per_rank: f64,
}

impl Default for AggregateCategorizer {
    fn default() -> Self {
        AggregateCategorizer {
            volume_threshold: 100 * 1024 * 1024,
            dominance_ratio: 4.0,
            meta_per_rank: 10.0,
        }
    }
}

impl AggregateCategorizer {
    /// Classify one trace.
    pub fn classify(&self, view: &OperationView) -> AggregateClass {
        let read = view.total_bytes(OpKind::Read);
        let write = view.total_bytes(OpKind::Write);
        let meta = view.total_meta_requests();
        let read_sig = read >= self.volume_threshold;
        let write_sig = write >= self.volume_threshold;

        if !read_sig && !write_sig {
            let meta_heavy = meta as f64 >= self.meta_per_rank * view.nprocs.max(1) as f64;
            return if meta_heavy {
                AggregateClass::MetadataIntensive
            } else {
                AggregateClass::IoInactive
            };
        }
        let (rf, wf) = (read as f64, write as f64);
        if read_sig && (!write_sig || rf >= self.dominance_ratio * wf) {
            AggregateClass::ReadIntensive
        } else if write_sig && (!read_sig || wf >= self.dominance_ratio * rf) {
            AggregateClass::WriteIntensive
        } else {
            AggregateClass::Balanced
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_darshan::ops::{MetaEvent, MetaKind, Operation};

    const MB: u64 = 1 << 20;

    fn view(read: u64, write: u64, meta: u64) -> OperationView {
        let mk_op = |kind, bytes| Operation { kind, start: 1.0, end: 2.0, bytes, ranks: 4 };
        OperationView {
            runtime: 100.0,
            nprocs: 4,
            reads: if read > 0 { vec![mk_op(OpKind::Read, read)] } else { vec![] },
            writes: if write > 0 { vec![mk_op(OpKind::Write, write)] } else { vec![] },
            meta: if meta > 0 {
                vec![MetaEvent { time: 1.0, kind: MetaKind::Open, count: meta }]
            } else {
                vec![]
            },
        }
    }

    #[test]
    fn classes() {
        let c = AggregateCategorizer::default();
        assert_eq!(c.classify(&view(0, 0, 2)), AggregateClass::IoInactive);
        assert_eq!(c.classify(&view(10 * MB, 5 * MB, 2)), AggregateClass::IoInactive);
        assert_eq!(c.classify(&view(900 * MB, 0, 0)), AggregateClass::ReadIntensive);
        assert_eq!(c.classify(&view(0, 900 * MB, 0)), AggregateClass::WriteIntensive);
        assert_eq!(c.classify(&view(900 * MB, 800 * MB, 0)), AggregateClass::Balanced);
        assert_eq!(c.classify(&view(10 * MB, 0, 5000)), AggregateClass::MetadataIntensive);
    }

    #[test]
    fn dominance_ratio_boundary() {
        let c = AggregateCategorizer::default();
        // Exactly 4× read vs write: read-intensive.
        assert_eq!(c.classify(&view(800 * MB, 200 * MB, 0)), AggregateClass::ReadIntensive);
        // 3× is balanced.
        assert_eq!(c.classify(&view(600 * MB, 200 * MB, 0)), AggregateClass::Balanced);
    }

    #[test]
    fn names_are_snake_case() {
        for class in [
            AggregateClass::IoInactive,
            AggregateClass::ReadIntensive,
            AggregateClass::WriteIntensive,
            AggregateClass::Balanced,
            AggregateClass::MetadataIntensive,
        ] {
            assert!(class.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn no_temporal_information() {
        // The critique made concrete: read-on-start and read-on-end traces
        // classify identically.
        let c = AggregateCategorizer::default();
        let on_start = OperationView {
            runtime: 1000.0,
            nprocs: 4,
            reads: vec![Operation {
                kind: OpKind::Read,
                start: 1.0,
                end: 10.0,
                bytes: 900 * MB,
                ranks: 4,
            }],
            writes: vec![],
            meta: vec![],
        };
        let on_end = OperationView {
            runtime: 1000.0,
            nprocs: 4,
            reads: vec![Operation {
                kind: OpKind::Read,
                start: 990.0,
                end: 999.0,
                bytes: 900 * MB,
                ranks: 4,
            }],
            writes: vec![],
            meta: vec![],
        };
        assert_eq!(c.classify(&on_start), c.classify(&on_end));
    }
}
