//! Frequency-technique periodicity detection (the Tarraf-style baseline).
//!
//! The trace's operations are rasterized into a fixed-rate activity signal
//! (bytes deposited uniformly over each operation's interval), the mean is
//! removed, and the periodogram's local maxima above a relative threshold
//! become detected periods. An autocorrelation cross-check is included,
//! since lag-domain methods are the other common frequency technique.
//!
//! Strengths: finds a clean dominant period without any clustering.
//! Weaknesses (the paper's critique, reproduced by the benches): two
//! interleaved periodic behaviours of similar energy produce a forest of
//! peaks and harmonics that simple peak-picking cannot attribute, and the
//! method yields no per-operation volume or busy-time information.

use mosaic_darshan::ops::Operation;
use mosaic_signal::autocorr;
use mosaic_signal::periodogram::{find_peaks, periodogram};
use mosaic_signal::window::{rasterize, remove_mean};
use serde::{Deserialize, Serialize};

/// One period reported by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectedPeriod {
    /// Period in seconds.
    pub period: f64,
    /// Relative spectral power (strongest peak = 1).
    pub power: f64,
}

/// FFT-based periodicity detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FftDetector {
    /// Number of raster bins for the activity signal.
    pub bins: usize,
    /// Maximum number of peaks to report.
    pub max_peaks: usize,
    /// Peaks below `threshold × strongest` are ignored.
    pub threshold: f64,
    /// Minimum autocorrelation for the lag-domain estimate.
    pub min_autocorr: f64,
}

impl Default for FftDetector {
    fn default() -> Self {
        FftDetector { bins: 4096, max_peaks: 4, threshold: 0.25, min_autocorr: 0.3 }
    }
}

impl FftDetector {
    /// Detect periods in one direction's operations over `[0, runtime]`.
    pub fn detect(&self, ops: &[Operation], runtime: f64) -> Vec<DetectedPeriod> {
        if ops.len() < 3 || runtime <= 0.0 {
            return Vec::new();
        }
        let intervals: Vec<(f64, f64, f64)> =
            ops.iter().map(|o| (o.start, o.end, o.bytes as f64)).collect();
        let mut signal = rasterize(&intervals, runtime, self.bins);
        remove_mean(&mut signal);
        let sample_rate = self.bins as f64 / runtime;
        let (freqs, powers) = periodogram(&signal, sample_rate);
        find_peaks(&freqs, &powers, self.max_peaks, self.threshold)
            .into_iter()
            .map(|p| DetectedPeriod { period: p.period, power: p.power })
            .collect()
    }

    /// Lag-domain estimate of the single dominant period, if any.
    pub fn dominant_period_autocorr(&self, ops: &[Operation], runtime: f64) -> Option<f64> {
        if ops.len() < 3 || runtime <= 0.0 {
            return None;
        }
        let intervals: Vec<(f64, f64, f64)> =
            ops.iter().map(|o| (o.start, o.end, o.bytes as f64)).collect();
        let signal = rasterize(&intervals, runtime, self.bins);
        let lag = autocorr::dominant_period(&signal, self.min_autocorr)?;
        Some(lag as f64 * runtime / self.bins as f64)
    }

    /// Convenience: is any detected period within `tol` (relative) of
    /// `expected`?
    pub fn finds_period(&self, ops: &[Operation], runtime: f64, expected: f64, tol: f64) -> bool {
        self.detect(ops, runtime).iter().any(|d| (d.period - expected).abs() <= tol * expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_darshan::ops::OpKind;

    fn periodic_ops(period: f64, count: usize, bytes: u64, runtime: f64) -> Vec<Operation> {
        (0..count)
            .map(|i| Operation {
                kind: OpKind::Write,
                start: period * (i as f64 + 0.25),
                end: period * (i as f64 + 0.25) + period * 0.05,
                bytes,
                ranks: 4,
            })
            .filter(|o| o.end < runtime)
            .collect()
    }

    #[test]
    fn clean_single_period_is_found() {
        let runtime = 4000.0;
        let ops = periodic_ops(100.0, 40, 1 << 28, runtime);
        let det = FftDetector::default();
        assert!(det.finds_period(&ops, runtime, 100.0, 0.15), "{:?}", det.detect(&ops, runtime));
    }

    #[test]
    fn autocorr_agrees_on_clean_signal() {
        let runtime = 4000.0;
        let ops = periodic_ops(100.0, 40, 1 << 28, runtime);
        let det = FftDetector::default();
        let p = det.dominant_period_autocorr(&ops, runtime).expect("period");
        assert!((p - 100.0).abs() < 10.0, "autocorr period {p}");
    }

    #[test]
    fn aperiodic_trace_detects_nothing_strong() {
        let runtime = 1000.0;
        let ops = vec![
            Operation { kind: OpKind::Read, start: 10.0, end: 30.0, bytes: 1 << 30, ranks: 4 },
            Operation { kind: OpKind::Read, start: 700.0, end: 710.0, bytes: 1 << 20, ranks: 4 },
            Operation { kind: OpKind::Read, start: 900.0, end: 950.0, bytes: 1 << 25, ranks: 4 },
        ];
        let det = FftDetector::default();
        // A couple of spurious low peaks may appear, but nothing should
        // match a specific "checkpoint" period confidently.
        assert!(det.dominant_period_autocorr(&ops, runtime).is_none());
    }

    #[test]
    fn too_few_ops_short_circuits() {
        let det = FftDetector::default();
        assert!(det.detect(&[], 100.0).is_empty());
        let ops = periodic_ops(10.0, 2, 1024, 100.0);
        assert!(det.detect(&ops, 100.0).is_empty());
        assert_eq!(det.dominant_period_autocorr(&ops, 100.0), None);
    }

    #[test]
    fn two_equal_energy_periods_confuse_peak_attribution() {
        // The paper's claim: two intricate periodic behaviours. A 100 s
        // checkpoint and a 7 s small write, with comparable per-period
        // energy. The spectrum shows many peaks (fundamentals + harmonics +
        // intermodulation); naive peak-picking cannot cleanly report the
        // two behaviours.
        let runtime = 4000.0;
        let mut ops = periodic_ops(100.0, 40, 200 << 20, runtime);
        ops.extend(periodic_ops(7.0, 570, 14 << 20, runtime));
        ops.sort_by(|a, b| a.start.total_cmp(&b.start));
        let det = FftDetector::default();
        let found = det.detect(&ops, runtime);
        let found_100 = found.iter().any(|d| (d.period - 100.0).abs() < 15.0);
        let found_7 = found.iter().any(|d| (d.period - 7.0).abs() < 1.0);
        // The detector must NOT cleanly separate both — that's the gap
        // MOSAIC's clustering fills. (Exactly which one survives depends on
        // energy balance; requiring both to be present fails.)
        assert!(
            !(found_100 && found_7) || found.len() > 2,
            "baseline unexpectedly separated both behaviours cleanly: {found:?}"
        );
    }
}
