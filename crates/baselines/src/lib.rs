//! # mosaic-baselines
//!
//! The comparison methods the MOSAIC paper positions itself against:
//!
//! * [`fft`] — frequency-technique periodicity detection (after Tarraf et
//!   al., IPDPS 2024): rasterize the trace into an activity signal, take a
//!   periodogram, pick spectral peaks. The paper's §II-B claims this
//!   "fails to distinguish between two intricate periodic behaviors" —
//!   the `baseline_fft_vs_mosaic` bench reproduces that comparison.
//! * [`aggregate`] — categorization from aggregate statistics only
//!   (after Devarajan & Mohror): total volumes, rank counts, file counts.
//!   Fast and simple, but blind to temporality and periodicity — which is
//!   exactly the gap MOSAIC fills.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod fft;

pub use aggregate::{AggregateCategorizer, AggregateClass};
pub use fft::{DetectedPeriod, FftDetector};
