//! The recorded performance trajectory: the `BENCH_sec4e.json` schema, its
//! writer, and the throughput-regression gate CI enforces.
//!
//! `sec4e_performance` emits one report per run. The repository commits a
//! baseline (`BENCH_sec4e.json` at the workspace root); `bench_gate`
//! compares a fresh run against it and fails when throughput regresses by
//! more than the configured fraction. The report also records the in-run
//! zero-copy vs owned speedup, which is machine-portable evidence (both
//! paths run on the same box seconds apart) independent of the absolute
//! gate.

use mosaic_obs::RELATIVE_ERROR;
use mosaic_pipeline::PipelineResult;
use serde_json::{json, Value};

/// Schema version of the report; bump on breaking layout changes.
///
/// v2: per-stage `p50_ns`/`p99_ns` come from the log-linear
/// [`mosaic_obs::QuantileSketch`] (no longer power-of-two bucket
/// midpoints) and the report carries `quantile_error_bound` — the
/// sketch's advertised relative error — so validators know how much
/// slack the percentile invariants are owed.
pub const SCHEMA_VERSION: u64 = 2;

/// Top-level keys every report must carry.
pub const REQUIRED_KEYS: [&str; 9] = [
    "schema_version",
    "n_traces",
    "valid",
    "traces_per_sec",
    "owned_traces_per_sec",
    "speedup",
    "workers",
    "quantile_error_bound",
    "stages",
];

/// Per-stage keys every `stages[]` entry must carry.
pub const STAGE_KEYS: [&str; 5] = ["stage", "calls", "p50_ns", "p99_ns", "max_ns"];

/// Build the report for one wire-fed benchmark run. `zc_secs`/`owned_secs`
/// are wall-clock seconds of the zero-copy and owned runs over the same
/// pre-serialized inputs; per-stage percentiles come from the zero-copy
/// run's quantile sketches (relative error ≤ `quantile_error_bound`,
/// exported as nanoseconds).
pub fn report(n_traces: usize, zc_secs: f64, owned_secs: f64, zc_run: &PipelineResult) -> Value {
    let rate = |secs: f64| if secs > 0.0 { n_traces as f64 / secs } else { 0.0 };
    let traces_per_sec = rate(zc_secs);
    let owned_traces_per_sec = rate(owned_secs);
    let speedup = if traces_per_sec > 0.0 { owned_secs / zc_secs } else { 0.0 };
    let stages: Vec<Value> = zc_run
        .metrics
        .stages
        .iter()
        .map(|s| {
            json!({
                "stage": s.stage,
                "calls": s.calls,
                "total_seconds": s.total_seconds,
                "p50_ns": s.p50_micros * 1_000.0,
                "p99_ns": s.p99_micros * 1_000.0,
                "max_ns": s.max_micros * 1_000.0,
            })
        })
        .collect();
    json!({
        "schema_version": SCHEMA_VERSION,
        "n_traces": n_traces,
        "valid": zc_run.funnel.valid,
        "traces_per_sec": traces_per_sec,
        "owned_traces_per_sec": owned_traces_per_sec,
        "speedup": speedup,
        "workers": zc_run.metrics.workers,
        "quantile_error_bound": RELATIVE_ERROR,
        "stages": stages,
    })
}

fn f64_of(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("missing numeric key {key:?}"))
}

/// Validate a report against the schema: all required keys present, a
/// plausible `quantile_error_bound`, every stage entry complete with
/// monotone percentiles (`p50 ≤ p99`, and `p99` within the quantile
/// tolerance band of the exact `max_ns` sample), and nonzero throughput.
pub fn validate(v: &Value) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if v.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let version = f64_of(v, "schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("schema_version {version} != supported {SCHEMA_VERSION}"));
    }
    let band = f64_of(v, "quantile_error_bound")?;
    if !(band > 0.0 && band < 1.0) {
        return Err(format!("quantile_error_bound {band} outside (0, 1)"));
    }
    if f64_of(v, "traces_per_sec")? <= 0.0 {
        return Err("traces_per_sec must be > 0".to_owned());
    }
    if f64_of(v, "owned_traces_per_sec")? <= 0.0 {
        return Err("owned_traces_per_sec must be > 0".to_owned());
    }
    let stages = v
        .get("stages")
        .and_then(Value::as_array)
        .ok_or_else(|| "stages must be an array".to_owned())?;
    if stages.is_empty() {
        return Err("stages must be non-empty".to_owned());
    }
    for (i, s) in stages.iter().enumerate() {
        for key in STAGE_KEYS {
            if s.get(key).is_none() {
                return Err(format!("stage entry {i} missing key {key:?}"));
            }
        }
        // p50/p99 come from the same monotone sketch scan, so ordering must
        // hold exactly. `max_ns` is an exact sample while the percentiles
        // are sketch estimates: p99 may sit below max (usual) or above it by
        // at most the sketch's relative error (p99 estimates the true p99,
        // which is ≤ max).
        let (p50, p99, max) = (f64_of(s, "p50_ns")?, f64_of(s, "p99_ns")?, f64_of(s, "max_ns")?);
        if p50 > p99 {
            return Err(format!(
                "stage entry {i}: percentiles not monotone: p50 {p50} > p99 {p99}"
            ));
        }
        if p99 > max * (1.0 + band) {
            return Err(format!(
                "stage entry {i}: p99 {p99} exceeds max {max} beyond the \
                 quantile tolerance band ({band})"
            ));
        }
        if p50 < 0.0 || max < 0.0 {
            return Err(format!("stage entry {i}: negative duration"));
        }
    }
    Ok(())
}

/// The regression gate: both reports must validate, the current throughput
/// may not fall more than `max_regression` (a fraction, e.g. `0.10`) below
/// the baseline's, and no stage's p99 latency may grow past `max_p99_ratio`
/// times its baseline value (a deliberately loose multiple — sub-µs stage
/// percentiles are noisy across machines, so this catches order-of-magnitude
/// blowups, not jitter). Returns a human-readable verdict either way; `Err`
/// means the gate fails.
pub fn gate(
    baseline: &Value,
    current: &Value,
    max_regression: f64,
    max_p99_ratio: f64,
) -> Result<String, String> {
    validate(baseline).map_err(|e| format!("baseline report invalid: {e}"))?;
    validate(current).map_err(|e| format!("current report invalid: {e}"))?;
    let base = f64_of(baseline, "traces_per_sec")?;
    let cur = f64_of(current, "traces_per_sec")?;
    let floor = base * (1.0 - max_regression);
    let delta = (cur - base) / base;
    if cur < floor {
        return Err(format!(
            "throughput regression: {cur:.0} traces/s vs baseline {base:.0} \
             ({:+.1}%, allowed floor {floor:.0})",
            100.0 * delta
        ));
    }
    // Per-stage p99 gate, matched by stage name: stages present in only one
    // report are skipped (schema evolution must not hard-fail the gate).
    let stage_p99s = |v: &Value| -> Vec<(String, f64)> {
        v.get("stages")
            .and_then(Value::as_array)
            .map(|stages| {
                stages
                    .iter()
                    .filter_map(|s| {
                        let name = s.get("stage").and_then(Value::as_str)?;
                        let p99 = s.get("p99_ns").and_then(Value::as_f64)?;
                        Some((name.to_owned(), p99))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_stages = stage_p99s(baseline);
    for (name, cur_p99) in stage_p99s(current) {
        let Some((_, base_p99)) = base_stages.iter().find(|(n, _)| *n == name) else {
            continue;
        };
        // Floor the baseline at 1 µs: ratios on tens-of-nanoseconds stages
        // are pure measurement noise.
        let ceiling = base_p99.max(1_000.0) * max_p99_ratio;
        if cur_p99 > ceiling {
            return Err(format!(
                "stage {name:?} p99 regression: {cur_p99:.0} ns vs baseline {base_p99:.0} ns \
                 (ceiling {ceiling:.0} ns at {max_p99_ratio}x)"
            ));
        }
    }
    Ok(format!(
        "throughput ok: {cur:.0} traces/s vs baseline {base:.0} ({:+.1}%, floor {floor:.0}); \
         all stage p99s within {max_p99_ratio}x of baseline",
        100.0 * delta
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_pipeline_inputs, wire_inputs};
    use mosaic_pipeline::ParseMode;
    use mosaic_synth::{Dataset, DatasetConfig};

    fn sample_report() -> Value {
        let ds = Dataset::new(DatasetConfig { n_traces: 40, corruption_rate: 0.3, seed: 7 });
        let inputs = wire_inputs(&ds);
        let run = run_pipeline_inputs(inputs, Some(1), ParseMode::ZeroCopy);
        report(ds.len(), 0.5, 0.8, &run)
    }

    /// Return the report with `key` replaced (the shim `Value` has no
    /// mutation API, so tests rebuild via the public enum variants).
    fn with_key(mut r: Value, key: &str, val: Value) -> Value {
        if let Value::Object(map) = &mut r {
            map.insert(key.to_owned(), val);
        }
        r
    }

    fn without_key(mut r: Value, key: &str) -> Value {
        if let Value::Object(map) = &mut r {
            map.remove(key);
        }
        r
    }

    fn with_stage0_key(mut r: Value, key: &str, val: Value) -> Value {
        if let Value::Object(map) = &mut r {
            if let Some(Value::Array(stages)) = map.get_mut("stages") {
                if let Some(Value::Object(stage)) = stages.first_mut() {
                    stage.insert(key.to_owned(), val);
                }
            }
        }
        r
    }

    #[test]
    fn emitted_report_satisfies_its_own_schema() {
        let r = sample_report();
        validate(&r).unwrap();
        // Spot-check the advertised values.
        assert_eq!(r["schema_version"].as_u64(), Some(SCHEMA_VERSION));
        assert_eq!(r["n_traces"].as_u64(), Some(40));
        assert!(r["valid"].as_u64().unwrap() > 0);
        assert!((r["traces_per_sec"].as_f64().unwrap() - 80.0).abs() < 1e-9);
        assert!((r["speedup"].as_f64().unwrap() - 1.6).abs() < 1e-9);
        assert_eq!(r["stages"].as_array().unwrap().len(), 5);
    }

    #[test]
    fn schema_rejects_missing_keys_and_degenerate_values() {
        let r = without_key(sample_report(), "speedup");
        assert!(validate(&r).unwrap_err().contains("speedup"));

        let r = with_key(sample_report(), "traces_per_sec", json!(0.0));
        assert!(validate(&r).unwrap_err().contains("traces_per_sec"));

        let r = with_key(sample_report(), "stages", json!([]));
        assert!(validate(&r).unwrap_err().contains("non-empty"));

        let r = with_key(sample_report(), "schema_version", json!(99));
        assert!(validate(&r).unwrap_err().contains("schema_version"));

        let r = with_key(sample_report(), "quantile_error_bound", json!(1.5));
        assert!(validate(&r).unwrap_err().contains("quantile_error_bound"));

        let r = without_key(sample_report(), "quantile_error_bound");
        assert!(validate(&r).unwrap_err().contains("quantile_error_bound"));
    }

    #[test]
    fn schema_rejects_p99_outside_the_tolerance_band() {
        // p99 above max × (1 + band) cannot come from a sound sketch: the
        // true p99 is ≤ max, and the estimate errs by at most the band.
        let r = with_stage0_key(sample_report(), "p50_ns", json!(1.0));
        let r = with_stage0_key(r, "p99_ns", json!(2_000.0));
        let r = with_stage0_key(r, "max_ns", json!(1_000.0));
        let err = validate(&r).unwrap_err();
        assert!(err.contains("tolerance band"), "{err}");

        // ...but p99 slightly above max — within the band — is legitimate
        // (midpoint estimate of the bucket holding the max sample).
        let r = with_stage0_key(sample_report(), "p50_ns", json!(1.0));
        let r = with_stage0_key(r, "p99_ns", json!(1_030.0));
        let r = with_stage0_key(r, "max_ns", json!(1_000.0));
        validate(&r).unwrap();
    }

    #[test]
    fn schema_rejects_non_monotone_percentiles() {
        let r = with_stage0_key(sample_report(), "p50_ns", json!(10_000.0));
        let r = with_stage0_key(r, "p99_ns", json!(1.0));
        let err = validate(&r).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn gate_passes_small_dips_and_fails_large_ones() {
        let base = sample_report();
        let base_rate = base["traces_per_sec"].as_f64().unwrap();

        // 5% below: within the 10% allowance.
        let current = with_key(base.clone(), "traces_per_sec", json!(base_rate * 0.95));
        gate(&base, &current, 0.10, 3.0).unwrap();

        // 15% below: gate fails.
        let current = with_key(base.clone(), "traces_per_sec", json!(base_rate * 0.85));
        let err = gate(&base, &current, 0.10, 3.0).unwrap_err();
        assert!(err.contains("regression"), "{err}");

        // Faster than baseline always passes.
        let current = with_key(base.clone(), "traces_per_sec", json!(base_rate * 2.0));
        gate(&base, &current, 0.10, 3.0).unwrap();
    }

    #[test]
    fn gate_catches_stage_p99_blowups_but_tolerates_noise() {
        let base = sample_report();
        // Pin a baseline stage p99 above the 1 µs noise floor so the ratio
        // is meaningful, keeping max within the tolerance band.
        let base = with_stage0_key(base, "p50_ns", json!(1_000.0));
        let base = with_stage0_key(base, "p99_ns", json!(10_000.0));
        let base = with_stage0_key(base, "max_ns", json!(20_000.0));

        // 2x the baseline p99: inside the 3x ceiling.
        let current = with_stage0_key(base.clone(), "p99_ns", json!(20_000.0));
        gate(&base, &current, 0.10, 3.0).unwrap();

        // 5x the baseline p99: the gate fails and names the stage.
        let current = with_stage0_key(base.clone(), "p99_ns", json!(50_000.0));
        let current = with_stage0_key(current, "max_ns", json!(60_000.0));
        let err = gate(&base, &current, 0.10, 3.0).unwrap_err();
        assert!(err.contains("p99 regression"), "{err}");
    }

    #[test]
    fn gate_refuses_invalid_reports() {
        let base = sample_report();
        let err = gate(&base, &json!({}), 0.10, 3.0).unwrap_err();
        assert!(err.contains("current report invalid"), "{err}");
        let err = gate(&json!({"schema_version": 2}), &base, 0.10, 3.0).unwrap_err();
        assert!(err.contains("baseline report invalid"), "{err}");
    }
}
