//! Shared support for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper has a `src/bin/` target that prints
//! "paper says / we measure" side by side; this module holds the plumbing
//! they share: flag parsing, dataset → pipeline wiring, and table
//! formatting.

#![forbid(unsafe_code)]

use mosaic_core::CategorizerConfig;
use mosaic_pipeline::executor::{process, ParseMode, PipelineConfig, PipelineResult};
use mosaic_pipeline::source::{ClosureSource, TraceInput, VecSource};
use mosaic_synth::{Dataset, DatasetConfig, Payload};
use std::collections::HashMap;

pub mod perf;

/// Parsed `--key value` flags.
pub struct Flags(HashMap<String, String>);

impl Flags {
    /// Parse the process arguments (panics on malformed flags: these are
    /// experiment binaries, failing fast is the right behaviour).
    pub fn from_args() -> Flags {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let key = arg.strip_prefix("--").unwrap_or_else(|| panic!("unexpected arg {arg:?}"));
            if key == "full" {
                map.insert(key.to_owned(), "true".to_owned());
                continue;
            }
            let value = it.next().unwrap_or_else(|| panic!("--{key} needs a value"));
            map.insert(key.to_owned(), value.clone());
        }
        Flags(map)
    }

    /// Typed flag with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.0.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| panic!("bad value for --{key}: {v:?}")),
            None => default,
        }
    }

    /// Boolean presence flag.
    pub fn has(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }
}

/// Standard experiment scale: `--n` traces (default 20,000; `--full` uses
/// the paper's 462,502) with `--seed`.
pub fn dataset(flags: &Flags) -> Dataset {
    let n = if flags.has("full") { 462_502 } else { flags.get("n", 20_000usize) };
    Dataset::new(DatasetConfig {
        n_traces: n,
        corruption_rate: flags.get("corruption", 0.32f64),
        seed: flags.get("seed", 42u64),
    })
}

/// Run the full pipeline over a dataset.
pub fn run_pipeline(ds: &Dataset, threads: Option<usize>) -> PipelineResult {
    run_pipeline_traced(ds, threads, None)
}

/// Run the full pipeline over a dataset, optionally recording a span
/// timeline of `capacity` entries (attached to the result's `timeline`).
pub fn run_pipeline_traced(
    ds: &Dataset,
    threads: Option<usize>,
    trace_capacity: Option<usize>,
) -> PipelineResult {
    let source = ClosureSource::new(ds.len(), |i| match ds.generate(i).payload {
        Payload::Log(log) => TraceInput::log(log),
        Payload::Bytes(bytes) => TraceInput::bytes(bytes),
    });
    let config = PipelineConfig {
        threads,
        categorizer: CategorizerConfig::default(),
        progress: None,
        trace_capacity,
        parse_mode: ParseMode::default(),
        metrics: false,
    };
    process(&source, &config)
}

/// Pre-serialize every dataset payload to MDF wire bytes. Deliberately a
/// separate step so wire-fed benchmarks can serialize OUTSIDE the timed
/// region and measure parse→validate→merge→categorize, not generation.
pub fn wire_inputs(ds: &Dataset) -> Vec<TraceInput> {
    (0..ds.len())
        .map(|i| match ds.generate(i).payload {
            Payload::Log(log) => TraceInput::bytes(mosaic_darshan::mdf::to_bytes(&log)),
            Payload::Bytes(bytes) => TraceInput::bytes(bytes),
        })
        .collect()
}

/// Run the pipeline over pre-built inputs with an explicit parse mode — the
/// owned-vs-zerocopy comparison harness of `sec4e_performance`.
pub fn run_pipeline_inputs(
    inputs: Vec<TraceInput>,
    threads: Option<usize>,
    parse_mode: ParseMode,
) -> PipelineResult {
    let config = PipelineConfig { threads, parse_mode, ..Default::default() };
    process(&VecSource::new(inputs), &config)
}

/// Print a two-column "paper vs measured" row.
pub fn row(label: &str, paper: &str, measured: &str) {
    println!("  {label:<44} {paper:>14} {measured:>14}");
}

/// Print the header for [`row`] tables.
pub fn header(title: &str) {
    println!("\n== {title} ==");
    println!("  {:<44} {:>14} {:>14}", "", "paper", "measured");
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.325), "32.5%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn dataset_default_scale() {
        let flags = Flags(HashMap::new());
        assert_eq!(flags.get("n", 7usize), 7);
        assert!(!flags.has("full"));
    }
}
