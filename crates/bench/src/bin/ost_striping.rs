//! **Substrate ablation** — flat fair-share vs per-OST striping bandwidth
//! models.
//!
//! Blue Waters' scratch spread over 1440 OSTs; a file's throughput depended
//! on its stripe width and on OST hotspots. The flat model cannot express
//! either. This bench sweeps (a) stripe width for one N-to-1 shared file
//! and (b) file-per-process jobs whose files land on few vs many OSTs, and
//! shows the resulting trace *interval shapes* — which is what MOSAIC
//! ultimately sees — differ between the models.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin ost_striping
//! ```

use mosaic_core::{Categorizer, CategorizerConfig, PeriodicityMethod};
use mosaic_iosim::program::{FileSpec, Phase, Program};
use mosaic_iosim::{MachineConfig, Simulation};

fn shared_write(bytes: u64) -> Program {
    Program::new(vec![
        Phase::Open { file: FileSpec::shared("/big/shared.out") },
        Phase::Write { file: FileSpec::shared("/big/shared.out"), bytes },
        Phase::Close { file: FileSpec::shared("/big/shared.out") },
    ])
}

fn main() {
    println!("Substrate ablation — OST striping vs flat bandwidth model\n");

    // (a) Stripe-width sweep for a single shared file, 16 ranks.
    println!("(a) N-to-1 shared write, 64 OSTs × 0.5 GB/s, stripe width sweep:");
    println!("{:>12} {:>14} {:>18}", "stripes", "makespan (s)", "speedup vs 1");
    let mut base_time = None;
    for stripes in [1usize, 2, 4, 8, 16, 32] {
        let cfg = MachineConfig {
            n_osts: 64,
            ost_bandwidth: 0.5e9,
            stripe_count: stripes,
            per_rank_bandwidth: 1.0e11,
            rank_jitter: 0.0,
            ..MachineConfig::default()
        };
        let t = Simulation::new(cfg, 16, 1).run_detailed(&shared_write(8 << 30), "/x").makespan;
        let speedup = base_time.map(|b: f64| b / t).unwrap_or(1.0);
        if base_time.is_none() {
            base_time = Some(t);
        }
        println!("{stripes:>12} {t:>14.1} {speedup:>17.1}x");
    }

    // (b) Flat model has no notion of stripes: same program, any stripe
    // count, identical makespan.
    let flat = MachineConfig {
        n_osts: 0,
        pfs_bandwidth: 32.0e9,
        per_rank_bandwidth: 1.0e11,
        rank_jitter: 0.0,
        ..MachineConfig::default()
    };
    let t_flat = Simulation::new(flat, 16, 1).run_detailed(&shared_write(8 << 30), "/x").makespan;
    println!("\n(b) flat model (same aggregate bandwidth): {t_flat:.1} s regardless of striping");

    // (c) What MOSAIC sees: checkpoint busy-time fraction under narrow vs
    // wide striping — the same application looks different in the trace.
    println!("\n(c) checkpointer busy time as seen by MOSAIC:");
    println!("{:>12} {:>16} {:>18}", "stripes", "busy fraction", "category");
    for stripes in [1usize, 16] {
        let cfg = MachineConfig {
            n_osts: 64,
            ost_bandwidth: 0.5e9,
            stripe_count: stripes,
            per_rank_bandwidth: 1.0e11,
            rank_jitter: 0.0,
            ..MachineConfig::default()
        };
        let program = mosaic_synth::programs::checkpointer(12, 120.0, 512 << 20);
        let trace = Simulation::new(cfg, 16, 2).run(&program, "/apps/ckpt");
        // OST contention jitters each round's duration, which defeats the
        // duration×volume clustering; the hybrid detector's spectral pass
        // still sees the timing lattice.
        let config = CategorizerConfig {
            periodicity_method: PeriodicityMethod::Hybrid,
            ..CategorizerConfig::default()
        };
        let report = Categorizer::new(config).categorize_log(&trace);
        if let Some(p) = report.write.periodic.first() {
            let busy = format!("{:.1}%", 100.0 * p.busy_fraction);
            let label = if p.is_low_busy(0.25) { "low_busy_time" } else { "high_busy_time" };
            println!("{stripes:>12} {busy:>16} {label:>18}");
        } else {
            println!("{stripes:>12} {:>16} {:>18}", "—", "(not periodic)");
        }
    }

    println!(
        "\nreading: stripe width changes how long each checkpoint occupies the\n\
         machine (~6x busy-time difference above), which flows straight into\n\
         MOSAIC's busy-time evidence; narrow striping also jitters operation\n\
         durations enough to defeat duration-based clustering, where the hybrid\n\
         spectral pass still recovers the cadence. File layout is visible in the\n\
         categories — a flat bandwidth model hides all of this."
    );
}
