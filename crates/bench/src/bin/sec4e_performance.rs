//! **§IV-E (performance)** — processing throughput and thread scaling.
//!
//! Paper: the Python/Dispy implementation processes the full 462k-trace
//! year in 165 minutes on a 64-core EPYC 7702 (≈47 traces/s) and needs
//! ~300 GB of RAM. This binary measures the Rust pipeline's throughput at
//! several thread counts on the synthetic dataset (generation cost is
//! *included*, so the numbers are conservative).
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin sec4e_performance [-- --n 20000]
//! ```
//!
//! With `--trace-out FILE.json` the widest run records a structured span
//! timeline: the Chrome trace-event JSON goes to `FILE.json` (open it in
//! Perfetto) and the slowest-traces-per-stage table to `FILE.json.slow.md`.
//!
//! Every run also benchmarks the wire-fed parse→merge hot path — the same
//! pre-serialized MDF bytes through the zero-copy and owned parse modes —
//! and writes the machine-readable result to `--bench-out` (default
//! `BENCH_sec4e.json`). CI's `bench_gate` compares that file against the
//! committed baseline.

use mosaic_bench::{dataset, perf, run_pipeline_inputs, run_pipeline_traced, wire_inputs, Flags};
use mosaic_pipeline::ParseMode;
use std::time::Instant;

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let trace_out = flags.has("trace-out").then(|| flags.get("trace-out", String::new()));
    let trace_capacity = flags.get("trace-capacity", 65_536usize);
    println!("§IV-E — performance (n = {} traces, {} applications)", ds.len(), ds.apps().len());
    println!("paper reference: 462,502 traces in 165 min on 64 cores ≈ 47 traces/s (Python)\n");

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut candidates = vec![1usize, 2, 4, 8, 16, 32, 64];
    candidates.retain(|&t| t <= cores);
    if !candidates.contains(&cores) {
        candidates.push(cores);
    }

    println!("{:>8} {:>12} {:>14} {:>10}", "threads", "seconds", "traces/s", "speedup");
    let mut base = None;
    let mut last = None;
    let widest = candidates.last().copied().unwrap_or(1);
    for threads in candidates {
        let started = Instant::now();
        // Only the widest run pays for tracing, so the scaling numbers of
        // the narrower runs stay untouched.
        let capacity = (threads == widest && trace_out.is_some()).then_some(trace_capacity);
        let result = run_pipeline_traced(&ds, Some(threads), capacity);
        let secs = started.elapsed().as_secs_f64();
        let rate = ds.len() as f64 / secs;
        let speedup = base.map(|b: f64| b / secs).unwrap_or(1.0);
        if base.is_none() {
            base = Some(secs);
        }
        println!(
            "{threads:>8} {secs:>12.2} {rate:>14.0} {speedup:>9.1}x   (valid {})",
            result.funnel.valid
        );
        last = Some(result);
    }

    if let Some(result) = last {
        // Where the time actually goes, from the widest run: cumulative CPU
        // seconds per stage across all workers.
        let stages: Vec<String> = result
            .metrics
            .stages
            .iter()
            .map(|s| format!("{} {:.2}s", s.stage, s.total_seconds))
            .collect();
        println!("\nstage breakdown (cumulative worker seconds): {}", stages.join(", "));

        if let (Some(path), Some(timeline)) = (&trace_out, &result.timeline) {
            std::fs::write(path, timeline.to_chrome_json())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            let md_path = format!("{path}.slow.md");
            std::fs::write(&md_path, timeline.render_slow_md())
                .unwrap_or_else(|e| panic!("writing {md_path}: {e}"));
            println!(
                "wrote {path} ({} spans kept, {} dropped by ring wrap) and {md_path}",
                timeline.events.len(),
                timeline.dropped
            );
        }
    }

    // Wire-fed hot-path benchmark: serialize everything to MDF bytes first
    // (outside the timed region), then run the identical inputs through both
    // parse modes. This isolates parse→validate→merge→categorize.
    let bench_out = flags.get("bench-out", "BENCH_sec4e.json".to_owned());
    let reps = flags.get("reps", 3usize).max(1);
    println!("\nwire-fed parse→merge benchmark (pre-serialized MDF bytes, best of {reps}):");
    let inputs = wire_inputs(&ds);
    // Best-of-N with the modes interleaved: single passes over a small
    // corpus finish in tens of milliseconds, where scheduler and frequency
    // noise would dominate a one-shot comparison.
    let timed = |mode: ParseMode| {
        let started = Instant::now();
        let run = run_pipeline_inputs(inputs.clone(), None, mode);
        (started.elapsed().as_secs_f64(), run)
    };
    let (mut zc_secs, mut zc_run) = timed(ParseMode::ZeroCopy);
    let (mut owned_secs, owned_run) = timed(ParseMode::Owned);
    assert_eq!(zc_run.funnel, owned_run.funnel, "parse modes must agree on every fate");
    for _ in 1..reps {
        let (s, r) = timed(ParseMode::ZeroCopy);
        if s < zc_secs {
            (zc_secs, zc_run) = (s, r);
        }
        let (s, _) = timed(ParseMode::Owned);
        owned_secs = owned_secs.min(s);
    }
    println!(
        "  zero-copy {:>10.0} traces/s ({zc_secs:.2}s)   owned {:>10.0} traces/s \
         ({owned_secs:.2}s)   speedup {:.2}x   (valid {})",
        ds.len() as f64 / zc_secs,
        ds.len() as f64 / owned_secs,
        owned_secs / zc_secs,
        zc_run.funnel.valid
    );

    let report = perf::report(ds.len(), zc_secs, owned_secs, &zc_run);
    perf::validate(&report).unwrap_or_else(|e| panic!("emitted report fails own schema: {e}"));
    let json = serde_json::to_string_pretty(&report).expect("report serialization");
    std::fs::write(&bench_out, json).unwrap_or_else(|e| panic!("writing {bench_out}: {e}"));
    println!("  wrote {bench_out}");

    println!(
        "\nextrapolation: at the single-core rate above, the paper's full year \
         (462,502 traces) would take the Rust pipeline a small fraction of the \
         165-minute Python figure; memory stays O(apps + reports), not O(dataset)."
    );
}
