//! **§IV-E (performance)** — processing throughput and thread scaling.
//!
//! Paper: the Python/Dispy implementation processes the full 462k-trace
//! year in 165 minutes on a 64-core EPYC 7702 (≈47 traces/s) and needs
//! ~300 GB of RAM. This binary measures the Rust pipeline's throughput at
//! several thread counts on the synthetic dataset (generation cost is
//! *included*, so the numbers are conservative).
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin sec4e_performance [-- --n 20000]
//! ```

use mosaic_bench::{dataset, run_pipeline, Flags};
use std::time::Instant;

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    println!("§IV-E — performance (n = {} traces, {} applications)", ds.len(), ds.apps().len());
    println!("paper reference: 462,502 traces in 165 min on 64 cores ≈ 47 traces/s (Python)\n");

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut candidates = vec![1usize, 2, 4, 8, 16, 32, 64];
    candidates.retain(|&t| t <= cores);
    if !candidates.contains(&cores) {
        candidates.push(cores);
    }

    println!("{:>8} {:>12} {:>14} {:>10}", "threads", "seconds", "traces/s", "speedup");
    let mut base = None;
    let mut last = None;
    for threads in candidates {
        let started = Instant::now();
        let result = run_pipeline(&ds, Some(threads));
        let secs = started.elapsed().as_secs_f64();
        let rate = ds.len() as f64 / secs;
        let speedup = base.map(|b: f64| b / secs).unwrap_or(1.0);
        if base.is_none() {
            base = Some(secs);
        }
        println!(
            "{threads:>8} {secs:>12.2} {rate:>14.0} {speedup:>9.1}x   (valid {})",
            result.funnel.valid
        );
        last = Some(result);
    }

    if let Some(result) = last {
        // Where the time actually goes, from the widest run: cumulative CPU
        // seconds per stage across all workers.
        let stages: Vec<String> = result
            .metrics
            .stages
            .iter()
            .map(|s| format!("{} {:.2}s", s.stage, s.total_seconds))
            .collect();
        println!("\nstage breakdown (cumulative worker seconds): {}", stages.join(", "));
    }

    println!(
        "\nextrapolation: at the single-core rate above, the paper's full year \
         (462,502 traces) would take the Rust pipeline a small fraction of the \
         165-minute Python figure; memory stays O(apps + reports), not O(dataset)."
    );
}
