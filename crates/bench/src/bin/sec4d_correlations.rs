//! **§IV-D** — noteworthy correlations.
//!
//! Paper claims:
//! 1. metadata-dense / high-spike apps are more likely to read on start
//!    and/or write on end;
//! 2. 95 % of applications with no significant reads also have no
//!    significant writes;
//! 3. 66 % of applications reading on start write on end
//!    (the read-compute-write motif);
//! 4. 96 % of traces with periodic writes spend < 25 % of the time writing.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin sec4d_correlations [-- --n 50000]
//! ```

use mosaic_bench::{dataset, header, pct, row, run_pipeline, Flags};
use mosaic_core::category::{Category, MetadataLabel, OpKindTag, TemporalityLabel};
use std::collections::BTreeSet;

fn conditional(sets: &[BTreeSet<Category>], given: Category, then: Category) -> Option<f64> {
    let with: Vec<_> = sets.iter().filter(|s| s.contains(&given)).collect();
    if with.is_empty() {
        return None;
    }
    Some(with.iter().filter(|s| s.contains(&then)).count() as f64 / with.len() as f64)
}

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let result = run_pipeline(&ds, None);
    let single = result.single_run_sets();
    let all = result.all_runs_sets();

    let t = |kind, label| Category::Temporality { kind, label };
    let read_insig = t(OpKindTag::Read, TemporalityLabel::Insignificant);
    let write_insig = t(OpKindTag::Write, TemporalityLabel::Insignificant);
    let read_start = t(OpKindTag::Read, TemporalityLabel::OnStart);
    let write_end = t(OpKindTag::Write, TemporalityLabel::OnEnd);
    let spike = Category::Metadata(MetadataLabel::HighSpike);
    let dense = Category::Metadata(MetadataLabel::HighDensity);
    let periodic_w = Category::Periodic { kind: OpKindTag::Write };
    let low_busy = Category::PeriodicLowBusyTime { kind: OpKindTag::Write };

    println!("§IV-D — noteworthy correlations (single-run set of {})", single.len());

    header("claim 2: quiet readers are quiet writers");
    if let Some(p) = conditional(&single, read_insig, write_insig) {
        row("P(write insig | read insig)", "95%", &pct(p));
    }

    header("claim 3: the read-compute-write motif");
    if let Some(p) = conditional(&single, read_start, write_end) {
        row("P(write_on_end | read_on_start)", "66%", &pct(p));
    }

    header("claim 4: periodic writes are low-busy");
    if let Some(p) = conditional(&all, periodic_w, low_busy) {
        row("P(<25% busy | periodic write)", "96%", &pct(p));
    }

    header("claim 1: metadata-heavy apps read on start / write on end");
    for (name, meta) in [("high_spike", spike), ("high_density", dense)] {
        if let Some(p_start) = conditional(&single, meta, read_start) {
            let base = single.iter().filter(|s| s.contains(&read_start)).count() as f64
                / single.len() as f64;
            row(
                &format!("P(read_on_start | {name}) vs base"),
                "elevated",
                &format!("{} vs {}", pct(p_start), pct(base)),
            );
        }
        if let Some(p_end) = conditional(&single, meta, write_end) {
            let base = single.iter().filter(|s| s.contains(&write_end)).count() as f64
                / single.len() as f64;
            row(
                &format!("P(write_on_end | {name}) vs base"),
                "elevated",
                &format!("{} vs {}", pct(p_end), pct(base)),
            );
        }
    }
}
