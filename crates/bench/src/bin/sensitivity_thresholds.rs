//! **Threshold sensitivity** — §III-A: the significance threshold "can be
//! modified in MOSAIC to extend or narrow the amount of I/O activities to
//! categorize", and "future work will investigate advanced methods for
//! determining them". This sweep quantifies how the headline distributions
//! move as the paper's fixed thresholds move.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin sensitivity_thresholds [-- --n 8000]
//! ```

use mosaic_bench::{pct, Flags};
use mosaic_core::category::{Category, MetadataLabel, OpKindTag, TemporalityLabel};
use mosaic_core::{Categorizer, CategorizerConfig};
use mosaic_pipeline::executor::{process, PipelineConfig};
use mosaic_pipeline::source::{ClosureSource, TraceInput};
use mosaic_synth::{Dataset, DatasetConfig, Payload};

fn run(ds: &Dataset, categorizer: CategorizerConfig) -> mosaic_pipeline::PipelineResult {
    let source = ClosureSource::new(ds.len(), |i| match ds.generate(i).payload {
        Payload::Log(log) => TraceInput::log(log),
        Payload::Bytes(bytes) => TraceInput::bytes(bytes),
    });
    process(&source, &PipelineConfig { categorizer, ..Default::default() })
}

fn main() {
    let flags = Flags::from_args();
    let ds = Dataset::new(DatasetConfig {
        n_traces: flags.get("n", 8000usize),
        corruption_rate: flags.get("corruption", 0.32f64),
        seed: flags.get("seed", 42u64),
    });
    let _ = Categorizer::default();

    const MB: u64 = 1 << 20;
    println!("Threshold sensitivity (n = {})\n", ds.len());

    // 1. Significance threshold sweep (paper default: 100 MB).
    println!("significance threshold sweep (all-runs view):");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "threshold", "read insig", "write insig", "write periodic"
    );
    for mb in [10u64, 50, 100, 500, 2000] {
        let config =
            CategorizerConfig { insignificant_bytes: mb * MB, ..CategorizerConfig::default() };
        let result = run(&ds, config);
        let all = result.all_runs_counts();
        let t = |kind, label| all.fraction(Category::Temporality { kind, label });
        println!(
            "{:>9} MB {:>14} {:>14} {:>14}",
            mb,
            pct(t(OpKindTag::Read, TemporalityLabel::Insignificant)),
            pct(t(OpKindTag::Write, TemporalityLabel::Insignificant)),
            pct(all.fraction(Category::Periodic { kind: OpKindTag::Write })),
        );
    }

    // 2. Metadata spike threshold sweep (paper default: 250 req/s, derived
    //    from the Mistral MDS saturating near 3000 req/s).
    println!("\nmetadata high-spike threshold sweep (all-runs view):");
    println!("{:>12} {:>16}", "threshold", "high_spike share");
    for req in [50u64, 100, 250, 1000, 3000] {
        let config = CategorizerConfig { high_spike_requests: req, ..CategorizerConfig::default() };
        let result = run(&ds, config);
        let all = result.all_runs_counts();
        println!(
            "{:>7} req/s {:>16}",
            req,
            pct(all.fraction(Category::Metadata(MetadataLabel::HighSpike))),
        );
    }

    // 3. Steady CV sweep (paper default: 25 %).
    println!("\nsteady coefficient-of-variation sweep (all-runs view):");
    println!("{:>12} {:>14} {:>14}", "CV", "read steady", "write steady");
    for cv in [0.10f64, 0.25, 0.50, 0.75] {
        let config = CategorizerConfig { steady_cv: cv, ..CategorizerConfig::default() };
        let result = run(&ds, config);
        let all = result.all_runs_counts();
        let t =
            |kind| all.fraction(Category::Temporality { kind, label: TemporalityLabel::Steady });
        println!(
            "{:>12} {:>14} {:>14}",
            pct(cv),
            pct(t(OpKindTag::Read)),
            pct(t(OpKindTag::Write)),
        );
    }

    println!(
        "\nreading: distributions move smoothly — no knife-edge sits under the\n\
         paper's chosen values (100 MB, 250 req/s, 25% CV), which is what makes\n\
         fixed thresholds defensible until the §V automated determination lands."
    );
}
