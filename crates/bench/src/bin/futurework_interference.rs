//! **§V future work** — concurrency-aware interference analysis.
//!
//! The paper closes with the goal of identifying "whether some categories
//! are more conflicting than others" and using that for job scheduling
//! (intro example: "two jobs categorized as reading large volumes of data
//! at the start of execution could be scheduled so as not to overlap").
//!
//! This binary runs the interference analysis over the synthetic year:
//! contention participation per category, the most conflicting category
//! pairs, and the category-aware staggering what-if.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin futurework_interference [-- --n 20000]
//! ```

use mosaic_bench::{dataset, pct, run_pipeline, Flags};
use mosaic_core::category::{Category, OpKindTag, TemporalityLabel};
use mosaic_pipeline::interference::{analyze, stagger_what_if};
use mosaic_synth::dataset::YEAR_EPOCH;

const GB: f64 = (1u64 << 30) as f64;

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let result = run_pipeline(&ds, None);
    // The scaled-down sample (tens of thousands of jobs vs Blue Waters'
    // hundreds of concurrent jobs) is too sparse to collide on a year-long
    // timeline; compressing the timeline restores production-like
    // concurrency. A modest PFS bandwidth plays the same role.
    let compress = flags.get("compress", 50.0f64);
    let pfs_bandwidth = flags.get("bandwidth-gbs", 1.0f64) * GB;
    let bin = 600.0;

    let mut outcomes = result.outcomes.clone();
    for o in &mut outcomes {
        let offset = (o.start_time - YEAR_EPOCH) as f64 / compress;
        let runtime = o.end_time - o.start_time;
        o.start_time = YEAR_EPOCH + offset as i64;
        o.end_time = o.start_time + runtime;
    }

    let report = analyze(&outcomes, pfs_bandwidth, bin);
    println!(
        "§V — interference over {} valid jobs (timeline ÷{compress}), PFS {:.1} GB/s, {}-s bins\n",
        outcomes.len(),
        pfs_bandwidth / GB,
        bin
    );
    println!(
        "aggregate demand: peak {:.2} GB/s, mean {:.2} GB/s",
        report.peak_demand / GB,
        report.mean_demand / GB
    );
    println!(
        "contended bins: {} of {} active ({})",
        report.contended_bins,
        report.active_bins,
        pct(report.contended_bins as f64 / report.active_bins.max(1) as f64)
    );
    println!(
        "contended volume: {:.1} PB·s of excess demand\n",
        report.contended_byte_seconds / (GB * 1024.0 * 1024.0)
    );

    println!("contention participation by category:");
    for (cat, score) in report.category_scores.iter().take(8) {
        println!("  {:>10.1} TB·s  {}", score / (GB * 1024.0), cat.name());
    }

    println!("\nmost conflicting category pairs:");
    for (a, b, score) in report.pair_scores.iter().take(8) {
        println!("  {:>10.1} TB·s  {}  ×  {}", score / (GB * 1024.0), a.name(), b.name());
    }

    // The intro's scheduling example, quantified — per category, because
    // only *bursty* categories can be staggered (a steady job occupies the
    // machine for its whole life; delaying it moves, not removes, its load).
    batch_release_what_if(&result);
}

/// The introduction's scenario, controlled: a scheduler releases a batch of
/// heavy read-on-start jobs at the same instant (what happens after a
/// maintenance window or a queue flush). Compare the contention of the
/// naive co-start against K-slot category-aware staggering.
fn batch_release_what_if(result: &mosaic_pipeline::PipelineResult) {
    let read_start =
        Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::OnStart };
    // The 24 heaviest read-on-start applications, forced to co-start.
    let mut batch: Vec<_> =
        result.representatives().filter(|o| o.report.has(read_start)).cloned().collect();
    batch.sort_by_key(|o| std::cmp::Reverse(o.weight));
    batch.truncate(48);
    for o in &mut batch {
        let runtime = o.end_time - o.start_time;
        o.start_time = 0;
        o.end_time = runtime;
    }
    if batch.len() < 4 {
        println!("\n(not enough read_on_start jobs for the batch-release what-if)");
        return;
    }

    // Sized like a shared I/O island / burst-buffer partition: small enough
    // that synchronized heavy starts visibly collide.
    let bw = 0.2 * GB;
    let naive = analyze(&batch, bw, 60.0);
    println!(
        "\nwhat-if — batch release of {} heavy read_on_start jobs on a {:.1} GB/s PFS:",
        batch.len(),
        bw / GB
    );
    println!(
        "  naive co-start:          peak demand {:.1} GB/s, contended volume {:.1} TB·s",
        naive.peak_demand / GB,
        naive.contended_byte_seconds / (GB * 1024.0)
    );
    for k in [8usize, 4, 2] {
        let (report, removed) = stagger_what_if(&batch, bw, 60.0, read_start, k, 86_400.0);
        println!(
            "  staggered, K={k:>2} at once: peak demand {:.1} GB/s, contention removed {}",
            report.peak_demand / GB,
            pct(removed.max(0.0))
        );
    }
    println!(
        "\nreading: year-scale contention is dominated by steady flows (which need\n\
         bandwidth partitioning, not scheduling), but for the bursty categories the\n\
         intro's lever is real: admitting read_on_start jobs a few at a time removes\n\
         most of the contention their synchronized start phases would cause."
    );
}
