//! The throughput-regression gate.
//!
//! Compares a fresh `sec4e_performance` report against the committed
//! baseline and exits nonzero when throughput regressed by more than
//! `--max-regression` (default 10 %) or any stage's p99 latency grew past
//! `--max-p99-regression` times its baseline (default 3.0 — a loose
//! multiple, since sub-µs percentiles are noisy across machines). Run by
//! CI on every push:
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin sec4e_performance -- --n 2000 \
//!     --bench-out target/BENCH_sec4e.json
//! cargo run --release -p mosaic-bench --bin bench_gate -- \
//!     --baseline BENCH_sec4e.json --current target/BENCH_sec4e.json
//! ```
//!
//! To refresh the baseline after an intentional perf change, re-run
//! `sec4e_performance` with `--bench-out BENCH_sec4e.json` at the workspace
//! root and commit the result alongside the change that explains it.

use mosaic_bench::{perf, Flags};
use serde_json::Value;

fn read_report(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn main() {
    let flags = Flags::from_args();
    let baseline_path = flags.get("baseline", "BENCH_sec4e.json".to_owned());
    let current_path = flags.get("current", "target/BENCH_sec4e.json".to_owned());
    let max_regression = flags.get("max-regression", 0.10f64);
    let max_p99_ratio = flags.get("max-p99-regression", 3.0f64);

    let baseline = read_report(&baseline_path);
    let current = read_report(&current_path);
    println!(
        "bench gate: {current_path} vs baseline {baseline_path} \
         (throughput allowance {:.0}%, stage p99 ceiling {max_p99_ratio}x)",
        100.0 * max_regression
    );
    match perf::gate(&baseline, &current, max_regression, max_p99_ratio) {
        Ok(verdict) => println!("PASS — {verdict}"),
        Err(reason) => {
            eprintln!("FAIL — {reason}");
            eprintln!(
                "if this regression is intentional, refresh the baseline: \
                 cargo run --release -p mosaic-bench --bin sec4e_performance -- \
                 --n 2000 --bench-out {baseline_path}  (and commit it)"
            );
            std::process::exit(1);
        }
    }
}
