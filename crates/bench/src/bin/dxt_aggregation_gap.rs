//! **§IV-A conjecture** — what does Darshan's open/close aggregation hide?
//!
//! The paper: *"In the case of an application that opens files at start
//! time and keeps them open throughout the execution, Darshan will only
//! provide a single entry [...] MOSAIC categorizes this behavior as steady.
//! [...] It is likely that the majority of these behaviors are, in fact,
//! periodic."* Blue Waters had DXT disabled, so the paper could not check.
//!
//! We can: the simulator captures both the default aggregated trace and a
//! DXT per-access trace of the *same run*. This binary categorizes both
//! views for a bank of steady-looking workloads and reports how many
//! `steady` verdicts turn `periodic` once aggregation is removed.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin dxt_aggregation_gap
//! ```

use mosaic_core::category::TemporalityLabel;
use mosaic_core::Categorizer;
use mosaic_iosim::{MachineConfig, Simulation};
use mosaic_synth::programs;

fn main() {
    let categorizer = Categorizer::default();
    let machine = MachineConfig::default();

    println!("§IV-A — the aggregation gap, measured with simulated DXT\n");
    println!(
        "{:<34} {:>16} {:>22} {:>16}",
        "workload", "aggregated view", "DXT view", "hidden period"
    );

    let mut steady_total = 0;
    let mut steady_actually_periodic = 0;

    // Streaming writers with different slab cadences: all keep one file
    // open for the whole run (→ aggregated `steady`), with truly periodic
    // slab writes inside.
    for (label, slabs, slab_bytes, compute) in [
        ("stream 30 s cadence", 60u32, 256u64 << 20, 30.0),
        ("stream 2 min cadence", 30, 1 << 30, 120.0),
        ("stream 10 min cadence", 12, 4 << 30, 600.0),
        ("stream irregular cadence", 25, 512 << 20, 77.0),
    ] {
        let program = programs::steady_writer(slabs, slab_bytes, compute);
        let outcome = Simulation::new(machine.clone(), 16, 11)
            .with_dxt()
            .run_detailed(&program, "/apps/stream");

        let agg_report = categorizer.categorize_log(&outcome.trace);
        let dxt_view = outcome.dxt.expect("dxt enabled").operation_view();
        let dxt_report = categorizer.categorize(&dxt_view);

        let agg_label = format!(
            "{:?}{}",
            agg_report.write.temporality.label,
            if agg_report.write.periodic.is_empty() { "" } else { " + periodic" }
        );
        let dxt_label = format!(
            "{:?}{}",
            dxt_report.write.temporality.label,
            if dxt_report.write.periodic.is_empty() { "" } else { " + periodic" }
        );
        let hidden_period = dxt_report
            .write
            .periodic
            .first()
            .map(|p| format!("{:.0} s", p.period))
            .unwrap_or_else(|| "—".into());

        if agg_report.write.temporality.label == TemporalityLabel::Steady
            && agg_report.write.periodic.is_empty()
        {
            steady_total += 1;
            if !dxt_report.write.periodic.is_empty() {
                steady_actually_periodic += 1;
            }
        }
        println!("{label:<34} {agg_label:>16} {dxt_label:>22} {hidden_period:>16}");
    }

    // Scale reference: a fine-grained dribble. DXT still finds a cadence,
    // but at the seconds scale of library buffering rather than the
    // minute-to-hour scale of checkpointing — the magnitude label is what
    // separates the two.
    let program = programs::steady_writer(400, 16 << 20, 4.5);
    let outcome =
        Simulation::new(machine, 16, 13).with_dxt().run_detailed(&program, "/apps/dribble");
    let dxt_report = categorizer.categorize(&outcome.dxt.expect("dxt enabled").operation_view());
    println!(
        "{:<34} {:>16} {:>22} {:>16}",
        "reference: fine-grained dribble",
        "Steady",
        format!(
            "{:?}{}",
            dxt_report.write.temporality.label,
            if dxt_report.write.periodic.is_empty() { "" } else { " + periodic" }
        ),
        dxt_report
            .write
            .periodic
            .first()
            .map(|p| format!("{:.0} s", p.period))
            .unwrap_or_else(|| "—".into()),
    );

    println!(
        "\n{} of {} aggregated-`steady` workloads were periodic under DXT — \
         consistent with the paper's conjecture that most `write_steady` traces \
         (37% of write behaviours) hide checkpoint-style periodicity.",
        steady_actually_periodic, steady_total
    );
}
