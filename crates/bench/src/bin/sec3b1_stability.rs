//! **§III-B1** — per-application categorization stability.
//!
//! Paper: "about 97 % of the ≈12,000 runs of LAMMPS are similarly
//! categorized by MOSAIC while this percentage is 80 % for NEK5000" —
//! the premise behind analyzing only the heaviest trace per application.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin sec3b1_stability [-- --n 30000]
//! ```

use mosaic_bench::{dataset, header, pct, row, run_pipeline, Flags};
use mosaic_pipeline::stability::{app_stability, mean_stability};

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let result = run_pipeline(&ds, None);
    let stats = app_stability(&result.outcomes, 20);

    println!(
        "§III-B1 — categorization stability over {} applications with ≥ 20 valid runs",
        stats.len()
    );

    header("most-executed applications");
    for s in stats.iter().take(10) {
        row(
            &format!("{} (uid {}, {} runs)", s.app.1, s.app.0, s.runs),
            "80–97%",
            &pct(s.stability()),
        );
    }

    header("aggregate");
    row("run-weighted mean stability", "~90%+", &pct(mean_stability(&stats)));
    let min = stats.iter().map(|s| s.stability()).fold(f64::INFINITY, f64::min);
    let max = stats.iter().map(|s| s.stability()).fold(0.0_f64, f64::max);
    row("range across apps", "80%..97%", &format!("{}..{}", pct(min), pct(max)));
}
