//! **Fig 4** — category distribution for metadata access.
//!
//! Paper: over all runs, `metadata_high_spike` is the most represented
//! category (60 % of executions exceed 250 req/s at least once),
//! `metadata_multiple_spikes` covers 45.9 %, and just under 13 % are
//! `metadata_high_density`. The single-run distribution is much quieter —
//! a small number of heavily-rerun applications are metadata-intensive.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin fig4_metadata [-- --n 50000]
//! ```

use mosaic_bench::{dataset, header, pct, row, run_pipeline, Flags};
use mosaic_core::category::{Category, MetadataLabel};

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let result = run_pipeline(&ds, None);
    let single = result.single_run_counts();
    let all = result.all_runs_counts();

    println!("Fig 4 — metadata category distribution (n = {})", result.funnel.total);

    header("all runs (PFS load view)");
    row(
        "metadata_high_spike",
        "60%",
        &pct(all.fraction(Category::Metadata(MetadataLabel::HighSpike))),
    );
    row(
        "metadata_multiple_spikes",
        "45.9%",
        &pct(all.fraction(Category::Metadata(MetadataLabel::MultipleSpikes))),
    );
    row(
        "metadata_high_density",
        "~13%",
        &pct(all.fraction(Category::Metadata(MetadataLabel::HighDensity))),
    );
    row(
        "metadata_insignificant_load",
        "—",
        &pct(all.fraction(Category::Metadata(MetadataLabel::InsignificantLoad))),
    );

    header("single-run (application view)");
    for label in MetadataLabel::ALL {
        row(label.name(), "—", &pct(single.fraction(Category::Metadata(label))));
    }

    // The paper links multiple_spikes to periodic/steady writes (8 % + 37 %).
    use mosaic_core::category::{OpKindTag, TemporalityLabel};
    let sets = result.all_runs_sets();
    let spiky: Vec<_> = sets
        .iter()
        .filter(|s| s.contains(&Category::Metadata(MetadataLabel::MultipleSpikes)))
        .collect();
    if !spiky.is_empty() {
        let writers = spiky
            .iter()
            .filter(|s| {
                s.contains(&Category::Periodic { kind: OpKindTag::Write })
                    || s.contains(&Category::Temporality {
                        kind: OpKindTag::Write,
                        label: TemporalityLabel::Steady,
                    })
            })
            .count() as f64
            / spiky.len() as f64;
        header("consistency check");
        row("multiple_spikes ∧ (periodic ∨ steady write)", "≈in line", &pct(writers));
    }
}
