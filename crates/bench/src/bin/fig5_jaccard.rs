//! **Fig 5** — matrix of relevant Jaccard indices (values ≥ 1 % shown).
//!
//! The paper plots the category × category Jaccard heatmap over the
//! categorized traces; this binary prints the same matrix as text plus the
//! strongest pairs.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin fig5_jaccard [-- --n 50000]
//! ```

use mosaic_bench::{dataset, run_pipeline, Flags};

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let result = run_pipeline(&ds, None);

    let jaccard = result.jaccard_single_run();
    println!(
        "Fig 5 — Jaccard matrix over the single-run set ({} traces, {} categories)",
        result.representatives.len(),
        jaccard.categories.len()
    );
    println!("\n{}", jaccard.render_text());

    println!("strongest off-diagonal pairs (index ≥ 10%):");
    for (a, b, v) in jaccard.relevant_pairs(0.10) {
        println!("  {:>5.1}%  {}  ∧  {}", 100.0 * v, a.name(), b.name());
    }
}
