//! **§IV-E robustness** — accuracy across dataset seeds.
//!
//! The paper reports one number (92 %) from one 512-trace sample. With a
//! generative dataset the sampling distribution is measurable: this binary
//! repeats the §IV-E protocol across seeds and reports
//! mean/spread/min/max, plus the per-axis error breakdown pooled over all
//! samples.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin accuracy_seeds [-- --n 8000 --seeds 10]
//! ```

use mosaic_bench::{pct, Flags};
use mosaic_core::Categorizer;
use mosaic_synth::truth::AccuracyReport;
use mosaic_synth::{Dataset, DatasetConfig, Payload};
use std::collections::BTreeMap;

fn main() {
    let flags = Flags::from_args();
    let n: usize = flags.get("n", 8000);
    let n_seeds: u64 = flags.get("seeds", 10);
    let sample: usize = flags.get("sample", 512);
    let categorizer = Categorizer::default();

    let mut accuracies = Vec::new();
    let mut pooled_errors: BTreeMap<String, usize> = BTreeMap::new();
    println!("§IV-E accuracy across {n_seeds} seeds ({sample}-trace samples, n = {n})\n");
    println!("{:>8} {:>12} {:>20}", "seed", "accuracy", "errors by axis");
    for seed in 0..n_seeds {
        let ds = Dataset::new(DatasetConfig { n_traces: n, corruption_rate: 0.32, seed });
        let mut pairs = Vec::new();
        let mut i = 0;
        while pairs.len() < sample && i < ds.len() {
            let run = ds.generate(i);
            if let (Some(truth), Payload::Log(log)) = (run.truth, &run.payload) {
                pairs.push((truth, categorizer.categorize_log(log)));
            }
            i += 1;
        }
        let acc = AccuracyReport::score(pairs.iter().map(|(t, r)| (t, r)));
        accuracies.push(acc.accuracy());
        let axes: Vec<String> =
            acc.errors_by_axis.iter().map(|(a, c)| format!("{a}:{c}")).collect();
        for (axis, count) in &acc.errors_by_axis {
            *pooled_errors.entry(axis.clone()).or_insert(0) += count;
        }
        println!("{seed:>8} {:>12} {:>20}", pct(acc.accuracy()), axes.join(" "));
    }

    let mean = accuracies.iter().sum::<f64>() / accuracies.len() as f64;
    let var = accuracies.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / accuracies.len() as f64;
    let min = accuracies.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = accuracies.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nmean {} ± {:.1} pts (min {}, max {});  paper: 92% from a single sample",
        pct(mean),
        100.0 * var.sqrt(),
        pct(min),
        pct(max),
    );
    println!("\npooled error axes:");
    let total_errors: usize = pooled_errors.values().sum();
    for (axis, count) in &pooled_errors {
        println!("  {axis:<22} {count:>6}  ({})", pct(*count as f64 / total_errors.max(1) as f64));
    }
}
