//! **Ablation** — clustering algorithm and feature-scaling choices for
//! periodicity detection (DESIGN.md design-choice #1 and #4).
//!
//! Compares Mean Shift (the paper's choice) against k-means and DBSCAN on
//! segment grouping, and linear vs log feature scaling, over a bank of
//! synthetic segment sets with known cluster structure.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin ablation_clustering
//! ```

use mosaic_clustering::dbscan::Dbscan;
use mosaic_clustering::kmeans::KMeans;
use mosaic_clustering::metrics::rand_index;
use mosaic_clustering::{Kernel, MeanShift};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A labeled segment bank: (duration s, volume bytes) with ground-truth
/// cluster ids, mimicking 1–3 periodic behaviours plus one-off noise.
fn make_bank(rng: &mut ChaCha8Rng, behaviours: usize) -> (Vec<[f64; 2]>, Vec<usize>) {
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for b in 0..behaviours {
        let period = 10.0_f64 * 8.0_f64.powi(b as i32);
        let volume = 1e6_f64 * 30.0_f64.powi(b as i32);
        let count = 30 / (b + 1);
        for _ in 0..count {
            let j = rng.gen_range(0.9..1.1);
            points.push([period * j, volume * (2.0 - j)]);
            labels.push(b);
        }
    }
    for n in 0..3 {
        points.push([rng.gen_range(1.0..1e5), rng.gen_range(1e3..1e11)]);
        labels.push(behaviours + n);
    }
    (points, labels)
}

fn log_scale(points: &[[f64; 2]]) -> Vec<[f64; 2]> {
    points.iter().map(|p| [(1.0 + p[0]).log10(), (1.0 + p[1]).log10()]).collect()
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    println!("Ablation — clustering algorithm & scaling for segment grouping\n");
    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "method", "1 behaviour", "2 behaviours", "3 behaviours"
    );

    let mut rows: Vec<(String, Vec<f64>)> = vec![
        ("mean shift (log features)".into(), vec![]),
        ("mean shift (linear features)".into(), vec![]),
        ("mean shift gaussian (log)".into(), vec![]),
        ("k-means k=2 (log)".into(), vec![]),
        ("k-means k=4 (log)".into(), vec![]),
        ("dbscan eps=0.15 minPts=2 (log)".into(), vec![]),
    ];

    for behaviours in 1..=3 {
        // Average Rand index over several draws.
        let mut scores = vec![0.0; rows.len()];
        const DRAWS: usize = 20;
        for _ in 0..DRAWS {
            let (points, truth) = make_bank(&mut rng, behaviours);
            let logp = log_scale(&points);

            let results: Vec<Vec<usize>> = vec![
                MeanShift::new(0.15).fit(&logp).labels,
                MeanShift::new(0.15 * 1e7).fit(&points).labels, // linear scale needs huge h
                MeanShift::new(0.15).kernel(Kernel::Gaussian).fit(&logp).labels,
                KMeans::new(2).fit(&logp, &mut rng).labels,
                KMeans::new(4).fit(&logp, &mut rng).labels,
                Dbscan::new(0.15, 2).fit(&logp).labels,
            ];
            for (score, labels) in scores.iter_mut().zip(&results) {
                *score += rand_index(labels, &truth) / DRAWS as f64;
            }
        }
        for (row, score) in rows.iter_mut().zip(scores) {
            row.1.push(score);
        }
    }

    for (name, scores) in rows {
        print!("{name:<34}");
        for s in scores {
            print!(" {:>11.3}", s);
        }
        println!();
    }

    println!(
        "\nreading: Mean Shift on log features needs no k and tracks the true\n\
         structure as behaviours are added; k-means needs the unknown k, and\n\
         linear-scale Mean Shift cannot serve both byte scales with one bandwidth."
    );
}
