//! **Table III** — detection of temporality.
//!
//! Paper:
//!
//! | direction | view       | insignificant | on_start/on_end | steady | others |
//! |-----------|------------|---------------|-----------------|--------|--------|
//! | read      | single-run | 85 %          | 9 % (on_start)  | 2 %    | 4 %    |
//! | read      | all runs   | 27 %          | 38 % (on_start) | 30 %   | 5 %    |
//! | write     | single-run | 87 %          | 8 % (on_end)    | 3 %    | 2 %    |
//! | write     | all runs   | 47 %          | 14 % (on_end)   | 37 %   | 2 %    |
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin table3_temporality [-- --n 50000]
//! ```

use mosaic_bench::{dataset, header, pct, row, run_pipeline, Flags};
use mosaic_core::category::{Category, OpKindTag, TemporalityLabel};
use mosaic_core::report::CategoryCounts;

fn section(
    counts: &CategoryCounts,
    kind: OpKindTag,
    main_label: TemporalityLabel,
    paper: [&str; 4],
) {
    let frac = |label| counts.fraction(Category::Temporality { kind, label });
    let insig = frac(TemporalityLabel::Insignificant);
    let main = frac(main_label);
    let steady = frac(TemporalityLabel::Steady);
    let others = 1.0 - insig - main - steady;
    row("insignificant", paper[0], &pct(insig));
    row(
        if main_label == TemporalityLabel::OnStart { "on_start" } else { "on_end" },
        paper[1],
        &pct(main),
    );
    row("steady", paper[2], &pct(steady));
    row("others", paper[3], &pct(others.max(0.0)));
}

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let result = run_pipeline(&ds, None);
    let single = result.single_run_counts();
    let all = result.all_runs_counts();

    println!("Table III — detection of temporality (n = {})", result.funnel.total);

    header("READ, single-run");
    section(&single, OpKindTag::Read, TemporalityLabel::OnStart, ["85%", "9%", "2%", "4%"]);
    header("READ, all runs");
    section(&all, OpKindTag::Read, TemporalityLabel::OnStart, ["27%", "38%", "30%", "5%"]);
    header("WRITE, single-run");
    section(&single, OpKindTag::Write, TemporalityLabel::OnEnd, ["87%", "8%", "3%", "2%"]);
    header("WRITE, all runs");
    section(&all, OpKindTag::Write, TemporalityLabel::OnEnd, ["47%", "14%", "37%", "2%"]);

    // The paper's 95 % / 6-category coverage claim.
    let six = [
        (OpKindTag::Read, TemporalityLabel::Insignificant),
        (OpKindTag::Read, TemporalityLabel::OnStart),
        (OpKindTag::Read, TemporalityLabel::Steady),
        (OpKindTag::Write, TemporalityLabel::Insignificant),
        (OpKindTag::Write, TemporalityLabel::OnEnd),
        (OpKindTag::Write, TemporalityLabel::Steady),
    ];
    let covered = result
        .all_runs_sets()
        .iter()
        .filter(|s| {
            let read_ok = six[..3]
                .iter()
                .any(|&(kind, label)| s.contains(&Category::Temporality { kind, label }));
            let write_ok = six[3..]
                .iter()
                .any(|&(kind, label)| s.contains(&Category::Temporality { kind, label }));
            read_ok && write_ok
        })
        .count() as f64
        / result.outcomes.len().max(1) as f64;
    header("coverage");
    row("runs described by the 6 main categories", "95%", &pct(covered));
}
