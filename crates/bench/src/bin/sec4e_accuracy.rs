//! **§IV-E (accuracy)** — sampling-based validation.
//!
//! Paper: 512 randomly selected traces manually validated; 42 incorrectly
//! classified (92 % accuracy), "mainly because of a sub-optimal detection
//! of temporality in some cases where an operation is unequally spread
//! across multiple chunks".
//!
//! Here the generator's ground truth replaces manual validation; the same
//! 512-trace sampling is applied.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin sec4e_accuracy [-- --n 20000 --sample 512]
//! ```

use mosaic_bench::{dataset, header, pct, row, Flags};
use mosaic_core::Categorizer;
use mosaic_synth::truth::AccuracyReport;
use mosaic_synth::Payload;

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let sample: usize = flags.get("sample", 512);
    let categorizer = Categorizer::default();

    let mut pairs = Vec::new();
    let mut scanned = 0usize;
    while pairs.len() < sample && scanned < ds.len() {
        let run = ds.generate(scanned);
        scanned += 1;
        if let (Some(truth), Payload::Log(log)) = (run.truth, &run.payload) {
            pairs.push((truth, categorizer.categorize_log(log)));
        }
    }

    let acc = AccuracyReport::score(pairs.iter().map(|(t, r)| (t, r)));
    println!("§IV-E — accuracy by sampling ({} traces sampled)", acc.total);

    header("accuracy");
    row(
        "correctly classified",
        &format!("{}/512 (92%)", 512 - 42),
        &format!("{}/{} ({})", acc.correct, acc.total, pct(acc.accuracy())),
    );

    header("error breakdown by axis");
    for (axis, count) in &acc.errors_by_axis {
        let paper = if axis.contains("temporality") { "dominant" } else { "minor" };
        row(axis, paper, &count.to_string());
    }
    println!(
        "\npaper attributes errors to temporality on unequally-spread operations;\n\
         the synthetic hard-case archetype reproduces exactly that failure mode."
    );
}
