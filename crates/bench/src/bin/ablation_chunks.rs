//! **Ablation** — temporality chunk count (DESIGN.md design-choice #3).
//!
//! The paper fixes 4 chunks; this sweep measures ground-truth temporality
//! accuracy with 2, 4, 8 and 16 chunks on the synthetic dataset. More
//! chunks sharpen the position estimate but make the dominance rule harder
//! to satisfy (single operations split across more bins).
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin ablation_chunks [-- --n 6000]
//! ```

use mosaic_bench::{pct, Flags};
use mosaic_core::{Categorizer, CategorizerConfig};
use mosaic_synth::{Dataset, DatasetConfig, Payload};

fn main() {
    let flags = Flags::from_args();
    // Default smaller than the other experiments: this sweep categorizes
    // every trace once per chunk setting.
    let ds = Dataset::new(DatasetConfig {
        n_traces: flags.get("n", 6000usize),
        corruption_rate: flags.get("corruption", 0.32f64),
        seed: flags.get("seed", 42u64),
    });

    println!("Ablation — temporality chunk count (n = {})\n", ds.len());
    println!("{:>8} {:>22} {:>22}", "chunks", "temporality accuracy", "unconfident fallbacks");

    for chunks in [2usize, 4, 8, 16] {
        let config = CategorizerConfig { chunks, ..CategorizerConfig::default() };
        let categorizer = Categorizer::new(config);
        let mut total = 0usize;
        let mut correct = 0usize;
        let mut fallbacks = 0usize;
        for i in 0..ds.len() {
            let run = ds.generate(i);
            let (Some(truth), Payload::Log(log)) = (run.truth, &run.payload) else { continue };
            let report = categorizer.categorize_log(log);
            total += 2;
            if report.read.temporality.label == truth.read_temporality {
                correct += 1;
            }
            if report.write.temporality.label == truth.write_temporality {
                correct += 1;
            }
            fallbacks +=
                [&report.read, &report.write].iter().filter(|d| !d.temporality.confident).count();
        }
        println!("{chunks:>8} {:>22} {:>22}", pct(correct as f64 / total.max(1) as f64), fallbacks);
    }

    println!(
        "\nreading: 4 chunks (the paper's choice) balances positional precision\n\
         against dominance-rule satisfiability; finer chunking multiplies\n\
         low-confidence fallbacks without improving accuracy."
    );
}
