//! **Table II** — detection of periodic write operations.
//!
//! Paper (write direction): single-run view 98 % non-periodic / 2 %
//! periodic; all-runs view 92 % / 8 %; detected period magnitudes fall
//! between minutes and hours. Periodic *reads* are under 2 % of executions
//! at second-to-minute scale.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin table2_periodicity [-- --n 50000]
//! ```

use mosaic_bench::{dataset, header, pct, row, run_pipeline, Flags};
use mosaic_core::category::{Category, OpKindTag, PeriodMagnitude};

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let result = run_pipeline(&ds, None);
    let single = result.single_run_counts();
    let all = result.all_runs_counts();

    let periodic_w = Category::Periodic { kind: OpKindTag::Write };
    let periodic_r = Category::Periodic { kind: OpKindTag::Read };
    let mag = |kind, magnitude| Category::PeriodicMagnitude { kind, magnitude };

    println!("Table II — detection of periodic write operations");
    header("write periodicity");
    row("single-run: non-periodic", "98%", &pct(1.0 - single.fraction(periodic_w)));
    row("single-run: periodic", "2%", &pct(single.fraction(periodic_w)));
    row("all runs:   non-periodic", "92%", &pct(1.0 - all.fraction(periodic_w)));
    row("all runs:   periodic", "8%", &pct(all.fraction(periodic_w)));

    header("write period magnitude (share of all runs)");
    for (label, magnitude) in [
        ("periodic_second", PeriodMagnitude::Second),
        ("periodic_minute", PeriodMagnitude::Minute),
        ("periodic_hour", PeriodMagnitude::Hour),
        ("periodic_day_or_more", PeriodMagnitude::DayOrMore),
    ] {
        let paper = match magnitude {
            PeriodMagnitude::Minute | PeriodMagnitude::Hour => "min..hour",
            _ => "≈0",
        };
        row(label, paper, &pct(all.fraction(mag(OpKindTag::Write, magnitude))));
    }

    header("read periodicity");
    row("all runs: periodic reads", "<2%", &pct(all.fraction(periodic_r)));
    row(
        "read magnitude: second",
        "sec..min",
        &pct(all.fraction(mag(OpKindTag::Read, PeriodMagnitude::Second))),
    );
    row(
        "read magnitude: minute",
        "sec..min",
        &pct(all.fraction(mag(OpKindTag::Read, PeriodMagnitude::Minute))),
    );
}
