//! **§V future work** — automatic category determination by clustering.
//!
//! Embeds the single-run traces of the synthetic year and clusters them
//! with k-means for a sweep of k, reporting (a) cluster→hand-category
//! alignment and (b) purity against the joint temporality reference label.
//! High purity with clusters that map cleanly onto Table I's vocabulary is
//! evidence the hand-made taxonomy reflects real population structure —
//! the question the paper's future work poses.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin futurework_discovery [-- --n 8000]
//! ```

use mosaic_bench::{dataset, pct, run_pipeline, Flags};
use mosaic_core::discovery::{discover, profiles, purity, reference_label};
use rand::SeedableRng;

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let result = run_pipeline(&ds, None);
    let reports: Vec<_> = result.representatives().map(|o| o.report.clone()).collect();
    let labels: Vec<String> = reports.iter().map(reference_label).collect();

    println!("§V — automatic category discovery over {} single-run traces\n", reports.len());

    println!("{:>4} {:>10}   discovered clusters ↔ hand-made categories", "k", "purity");
    for k in [4usize, 6, 8, 10, 12] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(flags.get("seed", 42u64));
        let clustering = discover(&reports, k, &mut rng);
        let p = purity(&clustering, &labels);
        println!("{k:>4} {:>10}", pct(p));
    }

    // Detailed profile at a representative k.
    let k = flags.get("k", 8usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(flags.get("seed", 42u64));
    let clustering = discover(&reports, k, &mut rng);
    println!("\ncluster profiles at k = {k} (categories in ≥ 60% of members):");
    for profile in profiles(&reports, &clustering, 0.6) {
        let cats: Vec<String> = profile
            .dominant
            .iter()
            .map(|(c, f)| format!("{} {:.0}%", c.name(), 100.0 * f))
            .collect();
        println!(
            "  cluster {:>2}  ({:>5} traces)  {}",
            profile.cluster,
            profile.size,
            cats.join(", ")
        );
    }

    println!(
        "\nreading: discovered clusters align with the quiet block, the\n\
         read-compute-write motif, steady streamers and metadata storms —\n\
         the hand-made Table I taxonomy carves the population at its joints."
    );
}
