//! **Ablation / future work** — clustering vs spectral vs hybrid
//! periodicity detection (§V: "we plan to implement [signal-processing]
//! techniques to improve the detection of this type of pattern").
//!
//! Scores all three [`PeriodicityMethod`]s against ground truth on the
//! synthetic dataset (periodicity axes only), and times them.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin ablation_periodicity_method [-- --n 6000]
//! ```

use mosaic_bench::{pct, Flags};
use mosaic_core::{Categorizer, CategorizerConfig, PeriodicityMethod};
use mosaic_synth::{Dataset, DatasetConfig, Payload};
use std::time::Instant;

fn main() {
    let flags = Flags::from_args();
    let ds = Dataset::new(DatasetConfig {
        n_traces: flags.get("n", 6000usize),
        corruption_rate: 0.0, // evaluation wants ground truth for every run
        seed: flags.get("seed", 42u64),
    });

    println!("Ablation — periodicity detection method (n = {})\n", ds.len());
    println!(
        "{:>10} {:>16} {:>16} {:>14} {:>12}",
        "method", "periodic found", "magnitude ok", "false alarms", "seconds"
    );

    for (name, method) in [
        ("meanshift", PeriodicityMethod::MeanShift),
        ("spectral", PeriodicityMethod::Spectral),
        ("hybrid", PeriodicityMethod::Hybrid),
    ] {
        let config = CategorizerConfig { periodicity_method: method, ..Default::default() };
        let categorizer = Categorizer::new(config);

        let mut truly_periodic = 0usize;
        let mut found = 0usize;
        let mut magnitude_ok = 0usize;
        let mut false_alarms = 0usize;
        let started = Instant::now();
        for i in 0..ds.len() {
            let run = ds.generate(i);
            let (Some(truth), Payload::Log(log)) = (run.truth, &run.payload) else { continue };
            let report = categorizer.categorize_log(log);
            for (expected, detected) in [
                (truth.read_periodic, report.read.periodic.first()),
                (truth.write_periodic, report.write.periodic.first()),
            ] {
                match (expected, detected) {
                    (Some(mag), Some(p)) => {
                        truly_periodic += 1;
                        found += 1;
                        if p.magnitude == mag {
                            magnitude_ok += 1;
                        }
                    }
                    (Some(_), None) => truly_periodic += 1,
                    (None, Some(_)) => false_alarms += 1,
                    (None, None) => {}
                }
            }
        }
        let secs = started.elapsed().as_secs_f64();
        println!(
            "{name:>10} {:>16} {:>16} {:>14} {:>12.2}",
            format!(
                "{}/{} ({})",
                found,
                truly_periodic,
                pct(found as f64 / truly_periodic.max(1) as f64)
            ),
            pct(magnitude_ok as f64 / truly_periodic.max(1) as f64),
            false_alarms,
            secs,
        );
    }

    stress_sweep();

    println!(
        "\nreading: on the calibrated dataset all methods saturate; the stress\n\
         sweep separates them. Heavy volume jitter breaks the clustering\n\
         features (volume is a feature axis) while the spectral lattice only\n\
         looks at timing, so it keeps detecting — the concrete payoff of the\n\
         paper's §V plan. Hybrid sits between: when clustering *partially*\n\
         succeeds it claims fragments, leaving the spectral pass a broken\n\
         train, so fixing fragmentation (not adding detectors) is the lever."
    );
}

/// Jittered checkpoint trains: timing jitter stresses the spectral lattice,
/// volume jitter stresses the Mean Shift feature space.
fn stress_sweep() {
    use mosaic_darshan::ops::{OpKind, Operation, OperationView};
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    println!("\nstress sweep — detection rate over 40 jittered checkpoint trains");
    println!(
        "{:>14} {:>14} {:>12} {:>12} {:>12}",
        "timing jitter", "volume jitter", "meanshift", "spectral", "hybrid"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(77);
    for (tj, vj) in [(0.0, 0.0), (0.1, 0.0), (0.25, 0.0), (0.0, 0.5), (0.0, 2.0), (0.15, 1.0)] {
        let mut rates = Vec::new();
        for method in
            [PeriodicityMethod::MeanShift, PeriodicityMethod::Spectral, PeriodicityMethod::Hybrid]
        {
            let config = CategorizerConfig { periodicity_method: method, ..Default::default() };
            let categorizer = Categorizer::new(config);
            let mut hits = 0;
            const TRIALS: usize = 40;
            for _ in 0..TRIALS {
                let period = 300.0;
                let runtime = 300.0 * 20.0;
                let writes: Vec<Operation> = (0..20)
                    .map(|i| {
                        let t = period * (i as f64 + 0.3) + period * tj * (rng.gen::<f64>() - 0.5);
                        let bytes = ((512u64 << 20) as f64 * (1.0 + vj * rng.gen::<f64>())) as u64;
                        Operation { kind: OpKind::Write, start: t, end: t + 8.0, bytes, ranks: 16 }
                    })
                    .collect();
                let view =
                    OperationView { runtime, nprocs: 16, reads: vec![], writes, meta: vec![] };
                let report = categorizer.categorize(&view);
                if report
                    .write
                    .periodic
                    .iter()
                    .any(|p| (p.period - period).abs() < period * 0.2 && p.occurrences >= 10)
                {
                    hits += 1;
                }
            }
            rates.push(hits as f64 / TRIALS as f64);
        }
        println!(
            "{:>13}% {:>13}% {:>12} {:>12} {:>12}",
            (tj * 100.0) as u32,
            (vj * 100.0) as u32,
            pct(rates[0]),
            pct(rates[1]),
            pct(rates[2]),
        );
    }
}
