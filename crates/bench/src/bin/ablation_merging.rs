//! **Ablation** — effect of the §III-B2 merging passes on periodicity
//! detection (DESIGN.md design-choice #2).
//!
//! Generates checkpoint traces with increasing rank desynchronization and
//! measures how often the periodic pattern is recovered with (a) both
//! merges, (b) concurrent merge only, (c) no merging.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin ablation_merging
//! ```

use mosaic_core::merge::{merge_all, merge_concurrent};
use mosaic_core::periodicity::detect_periodic;
use mosaic_core::segment::segment;
use mosaic_core::CategorizerConfig;
use mosaic_darshan::ops::{OpKind, Operation};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// 32 ranks × 12 checkpoints, each rank's write staggered by up to
/// `desync` seconds.
fn desynced_checkpoints(rng: &mut ChaCha8Rng, desync: f64) -> (Vec<Operation>, f64) {
    let period = 300.0;
    let rounds = 12;
    let runtime = period * rounds as f64;
    let mut ops = Vec::new();
    for round in 0..rounds {
        let t0 = period * (round as f64 + 0.3);
        for _ in 0..32 {
            let offset = rng.gen_range(0.0..=desync.max(1e-9));
            ops.push(Operation {
                kind: OpKind::Write,
                start: t0 + offset,
                end: t0 + offset + 8.0,
                bytes: 64 << 20,
                ranks: 1,
            });
        }
    }
    ops.sort_by(|a, b| a.start.total_cmp(&b.start));
    (ops, runtime)
}

fn detects_period(ops: &[Operation], runtime: f64, config: &CategorizerConfig) -> bool {
    let segments = segment(ops, runtime);
    detect_periodic(&segments, config).iter().any(|p| (p.period - 300.0).abs() < 45.0)
}

fn main() {
    let config = CategorizerConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    const TRIALS: usize = 25;

    println!("Ablation — merging passes vs rank desynchronization");
    println!("(fraction of {TRIALS} trials where the 300 s checkpoint period is recovered)\n");
    println!(
        "{:>10} {:>14} {:>18} {:>12}",
        "desync(s)", "both merges", "concurrent only", "no merge"
    );

    for desync in [0.0, 0.5, 2.0, 5.0, 10.0, 20.0] {
        let mut both = 0;
        let mut conc = 0;
        let mut none = 0;
        for _ in 0..TRIALS {
            let (ops, runtime) = desynced_checkpoints(&mut rng, desync);
            if detects_period(&merge_all(&ops, runtime, &config), runtime, &config) {
                both += 1;
            }
            if detects_period(&merge_concurrent(&ops), runtime, &config) {
                conc += 1;
            }
            if detects_period(&ops, runtime, &config) {
                none += 1;
            }
        }
        println!(
            "{desync:>10} {:>13.0}% {:>17.0}% {:>11.0}%",
            100.0 * both as f64 / TRIALS as f64,
            100.0 * conc as f64 / TRIALS as f64,
            100.0 * none as f64 / TRIALS as f64,
        );
    }

    println!(
        "\nreading: without merging, 32 desynchronized per-rank writes swamp the\n\
         segmentation; the concurrent merge restores the 12-operation structure,\n\
         and the neighbor merge keeps it once drift slides ranks past overlap."
    );
}
