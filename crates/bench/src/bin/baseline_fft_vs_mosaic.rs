//! **§II-B claim** — frequency techniques "fail to distinguish between two
//! intricate periodic behaviors"; MOSAIC's segmentation + Mean Shift does.
//!
//! Sweeps the period ratio of two interleaved periodic write behaviours and
//! reports, for each ratio, whether (a) MOSAIC separates both patterns with
//! correct periods, and (b) the FFT baseline's peak list contains both
//! fundamentals. The trains are phase-placed so the §III-B2 neighbor merge
//! (gap < 0.1 % of runtime) never fuses members of different behaviours —
//! the sweep isolates the *detection* question. (When trains do brush
//! against each other, the merge absorbs a few fast members and biases that
//! train's period; see `ablation_merging` for that effect.)
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin baseline_fft_vs_mosaic
//! ```

use mosaic_baselines::FftDetector;
use mosaic_core::Categorizer;
use mosaic_darshan::ops::{OpKind, Operation, OperationView};

const RUNTIME: f64 = 7200.0;
const FAST_PERIOD: f64 = 60.0;

/// Fast train: one 2-second 100 MiB write at second 10 of every minute.
fn fast_train() -> Vec<Operation> {
    let mut ops = Vec::new();
    let mut t = 10.0;
    while t + 2.0 < RUNTIME {
        ops.push(Operation {
            kind: OpKind::Write,
            start: t,
            end: t + 2.0,
            bytes: 100 << 20,
            ranks: 32,
        });
        t += FAST_PERIOD;
    }
    ops
}

/// Slow train: a 5-second 2 GiB checkpoint at second 40 of every
/// `ratio`-th minute — 28 s clear of every fast op on both sides.
fn slow_train(ratio: f64) -> Vec<Operation> {
    let period = FAST_PERIOD * ratio;
    let mut ops = Vec::new();
    let mut t = 40.0;
    while t + 5.0 < RUNTIME {
        ops.push(Operation {
            kind: OpKind::Write,
            start: t,
            end: t + 5.0,
            bytes: 2 << 30,
            ranks: 32,
        });
        t += period;
    }
    ops
}

fn main() {
    let categorizer = Categorizer::default();
    let det = FftDetector::default();

    println!("§II-B — two interleaved periodic behaviours, period ratio sweep");
    println!("fast behaviour: {FAST_PERIOD} s period; slow behaviour: ratio × fast\n");
    println!(
        "{:>7} {:>16} {:>10} {:>10} {:>12} {:>12}",
        "ratio", "MOSAIC patterns", "fast ok", "slow ok", "FFT fast", "FFT slow"
    );

    let mut mosaic_wins = 0;
    let mut fft_wins = 0;
    let ratios = [3.0, 5.0, 8.0, 12.0, 20.0, 30.0];
    for &ratio in &ratios {
        let slow_period = FAST_PERIOD * ratio;
        let mut writes = fast_train();
        writes.extend(slow_train(ratio));
        writes.sort_by(|a, b| a.start.total_cmp(&b.start));
        let view = OperationView {
            runtime: RUNTIME,
            nprocs: 32,
            reads: vec![],
            writes: writes.clone(),
            meta: vec![],
        };

        let report = categorizer.categorize(&view);
        let periods: Vec<f64> = report.write.periodic.iter().map(|p| p.period).collect();
        let fast_ok = periods.iter().any(|&p| (p - FAST_PERIOD).abs() < FAST_PERIOD * 0.1);
        let slow_ok = periods.iter().any(|&p| (p - slow_period).abs() < slow_period * 0.1);
        if fast_ok && slow_ok {
            mosaic_wins += 1;
        }

        let peaks = det.detect(&writes, RUNTIME);
        let fft_fast = peaks.iter().any(|d| (d.period - FAST_PERIOD).abs() < FAST_PERIOD * 0.1);
        let fft_slow = peaks.iter().any(|d| (d.period - slow_period).abs() < slow_period * 0.1);
        if fft_fast && fft_slow {
            fft_wins += 1;
        }

        println!(
            "{ratio:>7} {:>16} {:>10} {:>10} {:>12} {:>12}",
            report.write.periodic.len(),
            if fast_ok { "yes" } else { "NO" },
            if slow_ok { "yes" } else { "NO" },
            if fft_fast { "yes" } else { "no" },
            if fft_slow { "yes" } else { "no" },
        );
    }

    println!(
        "\nsummary: MOSAIC separated both behaviours in {mosaic_wins}/{} settings; \
         the FFT baseline in {fft_wins}/{}.",
        ratios.len(),
        ratios.len()
    );
    println!(
        "paper expectation: MOSAIC wins across the sweep; spectral peak-picking \
         confuses harmonics of the slow train with the fast fundamental."
    );
}
