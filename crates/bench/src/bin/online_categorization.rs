//! **Scheduler use case** — how early is the verdict available?
//!
//! §IV-E closes with MOSAIC feeding a job scheduler. A scheduler wants the
//! category *while the job runs*; this experiment sweeps observation
//! fractions over the synthetic dataset and reports, per final category,
//! when the online verdict stabilizes to the final one.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin online_categorization [-- --n 5000]
//! ```

use mosaic_bench::{pct, Flags};
use mosaic_core::category::{Category, OpKindTag, TemporalityLabel};
use mosaic_core::online::decision_fraction;
use mosaic_core::Categorizer;
use mosaic_darshan::ops::OperationView;
use mosaic_synth::{Dataset, DatasetConfig, Payload};
use std::collections::BTreeMap;

fn main() {
    let flags = Flags::from_args();
    let ds = Dataset::new(DatasetConfig {
        n_traces: flags.get("n", 5000usize),
        corruption_rate: 0.0,
        seed: flags.get("seed", 42u64),
    });
    let categorizer = Categorizer::default();
    let fractions = [0.25, 0.5, 0.75, 1.0];

    // decision fraction histogram per dominant final category.
    let mut per_category: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    let mut decided_by: BTreeMap<String, usize> = BTreeMap::new();
    let mut total = 0usize;

    for i in 0..ds.len() {
        let run = ds.generate(i);
        let Payload::Log(log) = run.payload else { continue };
        let view = OperationView::from_log(&log);
        let final_report = categorizer.categorize(&view);
        let key = dominant_label(&final_report);
        let d = decision_fraction(&categorizer, &view, &fractions);
        let bucket = match d {
            Some(f) if f <= 0.25 => "≤25%",
            Some(f) if f <= 0.5 => "≤50%",
            Some(f) if f <= 0.75 => "≤75%",
            Some(_) => "100%",
            None => "100%",
        };
        *per_category.entry(key).or_default().entry(bucket.to_owned()).or_insert(0) += 1;
        if matches!(d, Some(f) if f <= 0.5) {
            *decided_by.entry("half".into()).or_insert(0) += 1;
        }
        total += 1;
    }

    println!("Online categorization — verdict stabilization over {total} traces\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "final category", "n", "≤25%", "≤50%", "≤75%", "100%"
    );
    for (cat, hist) in &per_category {
        let n: usize = hist.values().sum();
        let f = |b: &str| {
            let c = hist.get(b).copied().unwrap_or(0);
            pct(c as f64 / n as f64)
        };
        println!(
            "{cat:<28} {n:>8} {:>8} {:>8} {:>8} {:>8}",
            f("≤25%"),
            f("≤50%"),
            f("≤75%"),
            f("100%")
        );
    }

    let half = decided_by.get("half").copied().unwrap_or(0);
    println!(
        "\n{} of traces have their final verdict available at half the runtime —\n\
         read_on_start and steady behaviours decide early; write_on_end is, by\n\
         definition, only observable at the end. A scheduler acting on MOSAIC\n\
         feeds should treat end-loaded categories as historical priors (from the\n\
         application's previous runs, cf. §III-B1 stability) rather than live\n\
         observations.",
        pct(half as f64 / total.max(1) as f64)
    );
}

/// A compact label for the trace's scheduler-relevant behaviour.
fn dominant_label(report: &mosaic_core::TraceReport) -> String {
    let sig = |label: TemporalityLabel| label != TemporalityLabel::Insignificant;
    let periodic = report.has(Category::Periodic { kind: OpKindTag::Write });
    if periodic {
        return "write_periodic".into();
    }
    match (sig(report.read.temporality.label), sig(report.write.temporality.label)) {
        (false, false) => "quiet".into(),
        (true, false) => format!("read_{}", report.read.temporality.label.suffix()),
        (false, true) => format!("write_{}", report.write.temporality.label.suffix()),
        (true, true) => format!(
            "read_{}+write_{}",
            report.read.temporality.label.suffix(),
            report.write.temporality.label.suffix()
        ),
    }
}
