//! **Fig 3** — pre-processing of one year of Blue Waters I/O traces.
//!
//! Paper: 462,502 input traces → 32 % corrupted and evicted → 8 % of the
//! valid remainder are unique executions → 24,606 retained.
//!
//! ```sh
//! cargo run --release -p mosaic-bench --bin fig3_funnel [-- --n 50000 | --full]
//! ```

use mosaic_bench::{dataset, header, pct, row, run_pipeline, Flags};

fn main() {
    let flags = Flags::from_args();
    let ds = dataset(&flags);
    let result = run_pipeline(&ds, None);
    let f = &result.funnel;

    println!("Fig 3 — pre-processing funnel (n = {})", f.total);
    println!("\n{}", f.render());

    header("funnel fractions");
    row("corrupted & evicted", "32%", &pct(f.corruption_fraction()));
    row("unique executions among valid", "8%", &pct(f.unique_fraction()));
    row(
        "retained / input",
        &pct(24_606.0 / 462_502.0),
        &pct(f.unique_apps as f64 / f.total as f64),
    );

    // Breakdown of eviction causes (ours; the paper reports only the total).
    header("eviction breakdown (this repo only)");
    row("source-level (I/O failures)", "—", &pct(f.io_error as f64 / f.total as f64));
    row("format-level (parse failures)", "—", &pct(f.format_corrupt as f64 / f.total as f64));
    row("semantic (validation failures)", "—", &pct(f.invalid as f64 / f.total as f64));
    for (reason, n) in &f.by_reason {
        row(&format!("  {}", reason.slug()), "—", &pct(*n as f64 / f.total as f64));
    }
}
