//! Criterion: end-to-end pipeline throughput and thread scaling (the
//! §IV-E performance experiment, statistically rigorous edition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mosaic_bench::run_pipeline;
use mosaic_synth::{Dataset, DatasetConfig};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let ds = Dataset::new(DatasetConfig { n_traces: 2000, seed: 3, ..Default::default() });
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        if threads > cores {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("process_2000_traces", threads),
            &threads,
            |b, &threads| b.iter(|| run_pipeline(black_box(&ds), Some(threads))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
