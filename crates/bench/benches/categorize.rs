//! Criterion: full per-trace categorization cost across archetypes — the
//! number that decides whether MOSAIC can run inline in a job scheduler
//! (the paper's motivating deployment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosaic_core::Categorizer;
use mosaic_synth::archetype::Archetype;
use mosaic_synth::build::{build_run, RunSpec};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn trace_for(archetype: Archetype) -> mosaic_darshan::TraceLog {
    let spec = RunSpec {
        archetype,
        job_id: 1,
        uid: 1,
        nprocs: 256,
        base_runtime: 7200.0,
        start_epoch: 0,
        exe: "/apps/bench/app".into(),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    build_run(&spec, &mut rng).0
}

fn bench_categorize(c: &mut Criterion) {
    let categorizer = Categorizer::default();
    let mut group = c.benchmark_group("categorize");
    for (name, archetype) in [
        ("quiet", Archetype::Quiet),
        ("read_compute_write", Archetype::ReadComputeWrite),
        ("checkpointer", Archetype::CheckpointerRead),
        ("periodic_reader", Archetype::PeriodicReader),
        ("metadata_storm", Archetype::MetadataStorm),
    ] {
        let log = trace_for(archetype);
        group.bench_with_input(BenchmarkId::new("full_trace", name), &log, |b, log| {
            b.iter(|| categorizer.categorize_log(black_box(log)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_categorize);
criterion_main!(benches);
