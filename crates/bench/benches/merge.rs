//! Criterion: the §III-B2 merging passes vs operation count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mosaic_core::merge::{merge_all, merge_concurrent, merge_neighbors};
use mosaic_core::CategorizerConfig;
use mosaic_darshan::ops::{OpKind, Operation};
use std::hint::black_box;

/// Desynchronized checkpoint ops: `rounds` × `ranks` overlapping writes.
fn ops(rounds: usize, ranks: usize) -> (Vec<Operation>, f64) {
    let period = 100.0;
    let runtime = period * rounds as f64;
    let mut out = Vec::with_capacity(rounds * ranks);
    for round in 0..rounds {
        for rank in 0..ranks {
            let t = period * round as f64 + rank as f64 * 0.01;
            out.push(Operation {
                kind: OpKind::Write,
                start: t,
                end: t + 5.0,
                bytes: 1 << 20,
                ranks: 1,
            });
        }
    }
    out.sort_by(|a, b| a.start.total_cmp(&b.start));
    (out, runtime)
}

fn bench_merge(c: &mut Criterion) {
    let config = CategorizerConfig::default();
    let mut group = c.benchmark_group("merge");
    for n_ops in [100usize, 1_000, 10_000, 100_000] {
        let rounds = (n_ops / 64).max(1);
        let (input, runtime) = ops(rounds, 64);
        group.throughput(Throughput::Elements(input.len() as u64));
        group.bench_with_input(BenchmarkId::new("concurrent", input.len()), &input, |b, input| {
            b.iter(|| merge_concurrent(black_box(input)))
        });
        let merged = merge_concurrent(&input);
        group.bench_with_input(BenchmarkId::new("neighbors", input.len()), &merged, |b, merged| {
            b.iter(|| merge_neighbors(black_box(merged), runtime, &config))
        });
        group.bench_with_input(BenchmarkId::new("both", input.len()), &input, |b, input| {
            b.iter(|| merge_all(black_box(input), runtime, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
