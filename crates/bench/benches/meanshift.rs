//! Criterion: Mean Shift clustering cost vs segment count, plus the
//! k-means/DBSCAN alternatives for context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mosaic_clustering::dbscan::Dbscan;
use mosaic_clustering::kmeans::KMeans;
use mosaic_clustering::{Kernel, MeanShift};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn points(n: usize) -> Vec<[f64; 2]> {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    (0..n)
        .map(|i| {
            let cluster = (i % 3) as f64;
            [cluster * 2.0 + rng.gen_range(-0.05..0.05), cluster * 3.0 + rng.gen_range(-0.05..0.05)]
        })
        .collect()
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    for n in [32usize, 128, 512, 2048] {
        let pts = points(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("meanshift_flat", n), &pts, |b, pts| {
            b.iter(|| MeanShift::new(0.15).fit(black_box(pts)))
        });
        group.bench_with_input(BenchmarkId::new("meanshift_gaussian", n), &pts, |b, pts| {
            b.iter(|| MeanShift::new(0.15).kernel(Kernel::Gaussian).fit(black_box(pts)))
        });
        group.bench_with_input(BenchmarkId::new("kmeans_k3", n), &pts, |b, pts| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            b.iter(|| KMeans::new(3).fit(black_box(pts), &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("dbscan", n), &pts, |b, pts| {
            b.iter(|| Dbscan::new(0.15, 2).fit(black_box(pts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
