//! Criterion: the FFT baseline's cost (rasterize + FFT + peak picking) vs
//! MOSAIC's segmentation + Mean Shift on the same operation lists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mosaic_baselines::FftDetector;
use mosaic_core::periodicity::detect_periodic;
use mosaic_core::segment::segment;
use mosaic_core::CategorizerConfig;
use mosaic_darshan::ops::{OpKind, Operation};
use mosaic_signal::fft::rfft;
use std::hint::black_box;

fn periodic_ops(count: usize, runtime: f64) -> Vec<Operation> {
    let period = runtime / count as f64;
    (0..count)
        .map(|i| Operation {
            kind: OpKind::Write,
            start: period * (i as f64 + 0.3),
            end: period * (i as f64 + 0.35),
            bytes: 64 << 20,
            ranks: 16,
        })
        .collect()
}

fn bench_detectors(c: &mut Criterion) {
    let config = CategorizerConfig::default();
    let det = FftDetector::default();
    let runtime = 86_400.0;

    let mut group = c.benchmark_group("periodicity_detectors");
    for n_ops in [16usize, 64, 256, 1024] {
        let ops = periodic_ops(n_ops, runtime);
        group.throughput(Throughput::Elements(n_ops as u64));
        group.bench_with_input(
            BenchmarkId::new("mosaic_segment_cluster", n_ops),
            &ops,
            |b, ops| {
                b.iter(|| {
                    let segments = segment(black_box(ops), runtime);
                    detect_periodic(&segments, &config)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("fft_baseline", n_ops), &ops, |b, ops| {
            b.iter(|| det.detect(black_box(ops), runtime))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fft_kernel");
    for n in [1024usize, 4096, 16384, 65536] {
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("rfft", n), &signal, |b, signal| {
            b.iter(|| rfft(black_box(signal)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
