//! Criterion: MDF encode/decode and text parse throughput — the paper's
//! Python implementation was bottlenecked on trace loading (2 files "take
//! too long to load"; 300 GB RAM), so format cost matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mosaic_darshan::counter::PosixCounter as C;
use mosaic_darshan::counter::PosixFCounter as F;
use mosaic_darshan::job::JobHeader;
use mosaic_darshan::log::TraceLogBuilder;
use mosaic_darshan::{mdf, text, validate};
use std::hint::black_box;

/// A trace with exactly `n_records` populated records.
fn traces(n_records: u32) -> mosaic_darshan::TraceLog {
    let mut b =
        TraceLogBuilder::new(JobHeader::new(1, 1, 128, 0, 100_000).with_exe("/apps/bench/app"));
    for i in 0..n_records {
        let h = b.begin_record(&format!("/scratch/ref/chunk.{i:05}"), -1);
        b.record_mut(h)
            .set(C::Opens, 128)
            .set(C::Closes, 128)
            .set(C::Reads, 1024)
            .set(C::BytesRead, 32 << 20)
            .setf(F::OpenStartTimestamp, i as f64 + 0.1)
            .setf(F::ReadStartTimestamp, i as f64 + 0.2)
            .setf(F::ReadEndTimestamp, i as f64 + 0.9)
            .setf(F::CloseEndTimestamp, i as f64 + 1.0);
    }
    b.finish()
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("formats");
    for n_records in [10u32, 100, 1000] {
        let log = traces(n_records);
        let bytes = mdf::to_bytes(&log);
        let rendered = text::to_text(&log);
        let tag = format!("{n_records}rec");
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("mdf_encode", &tag), &log, |b, log| {
            b.iter(|| mdf::to_bytes(black_box(log)))
        });
        group.bench_with_input(BenchmarkId::new("mdf_decode", &tag), &bytes, |b, bytes| {
            b.iter(|| mdf::from_bytes(black_box(bytes)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("text_parse", &tag), &rendered, |b, rendered| {
            b.iter(|| text::parse(black_box(rendered)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("validate", &tag), &log, |b, log| {
            b.iter(|| validate::validate(black_box(log)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
