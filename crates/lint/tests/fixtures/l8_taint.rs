//! L8 fixture: wire-read lengths flowing into allocation sinks.
//!
//! Linted under the pretend path `crates/darshan/src/mdf.rs`, so the
//! cursor reads below seed taint. Each function is one scenario; the
//! harness asserts the exact finding set, so a weakened pass shows up
//! as a count mismatch, not a silent hole.

pub const MAX_RECORDS: u32 = 16_777_216;

/// Unguarded: the wire length sizes the allocation directly.
pub fn from_bytes(cur: &mut Cursor) -> Vec<u64> {
    let n_records = cur.get_u32_le();
    Vec::with_capacity(crate::convert::to_usize(n_records))
}

/// The comparison exists but guards the wrong branch: the early return
/// fires on *small* lengths, so the fall-through path still allocates
/// with the unbounded one.
fn wrong_branch(cur: &mut Cursor) -> Vec<u64> {
    let n = cur.get_u32_le();
    if n < MAX_RECORDS {
        return Vec::new();
    }
    Vec::with_capacity(crate::convert::to_usize(n))
}

/// Two hops: the length is read by a helper and returned to the caller.
fn read_len(cur: &mut Cursor) -> u32 {
    cur.get_u32_le()
}

fn two_hop(cur: &mut Cursor) -> Vec<u64> {
    let n = read_len(cur);
    Vec::with_capacity(crate::convert::to_usize(n))
}

/// The sink hides inside a helper: the tainted argument allocates there.
fn alloc_records(n: u32) -> Vec<u64> {
    Vec::with_capacity(crate::convert::to_usize(n))
}

fn sink_helper(cur: &mut Cursor) -> Vec<u64> {
    let n = cur.get_u32_le();
    alloc_records(n)
}

/// `vec![elem; n]` allocates `n` elements just like `with_capacity`.
fn vec_macro(cur: &mut Cursor) -> Vec<u8> {
    let n = cur.get_u32_le();
    vec![0u8; crate::convert::to_usize(n)]
}

/// A slice-range bound materializes `n` bytes downstream.
fn slice_prefix<'a>(cur: &mut Cursor, d: &'a [u8]) -> &'a [u8] {
    let n = cur.get_u32_le();
    &d[..crate::convert::to_usize(n)]
}

/// Correctly guarded: an exceed-direction comparison with a diverging
/// body dominates the sink — quiet.
fn guarded(cur: &mut Cursor) -> Vec<u64> {
    let n = cur.get_u32_le();
    if n > MAX_RECORDS {
        return Vec::new();
    }
    Vec::with_capacity(crate::convert::to_usize(n))
}

/// Audited: the allow consumes the finding.
fn audited(cur: &mut Cursor) -> Vec<u64> {
    let n = cur.get_u32_le();
    // lint: allow(taint, "n is clamped by the frame header validated in from_bytes")
    Vec::with_capacity(crate::convert::to_usize(n))
}

/// This allow suppresses nothing: `len` is a caller-provided count, not
/// a wire read — the stale claim must itself be reported.
fn stale_audit(len: usize) -> Vec<u64> {
    // lint: allow(taint, "bounded upstream (stale claim)")
    Vec::with_capacity(len)
}
