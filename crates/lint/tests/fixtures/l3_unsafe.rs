//! Known-bad fixture for rule L3: a crate root with no
//! `#![forbid(unsafe_code)]` that also drops into an `unsafe` block.
//! Linted under the pretend path `crates/demo/src/lib.rs`.

pub fn read_first(data: &[u8]) -> u8 {
    unsafe { *data.as_ptr() }
}
