//! Known-bad fixture for the escape hatch itself: `lint: allow`
//! directives that are missing a justification, use an unknown rule key,
//! or do not parse at all. None of these may suppress anything.
//! Linted under the pretend path `crates/darshan/src/mdf.rs`.

pub fn parse(data: &[u8]) -> u8 {
    // lint: allow(panic)
    let a = data.first().unwrap();
    // lint: allow(panic, unquoted words)
    let b = data.last().unwrap();
    // lint: allow(frobnication, "not a rule")
    let c = data.iter().next().unwrap();
    // lint: allowance("nonsense")
    a + b + c
}
