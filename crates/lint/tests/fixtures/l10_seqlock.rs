//! Deliberately bad: L10 seqlock-bracket violations on both sides — a
//! writer whose payload leaks outside the bracket and whose open/close
//! orderings are wrong, a writer using in-place read-modify-writes for
//! the sequence, and a reader missing the Acquire edges.

use std::sync::atomic::{fence, AtomicU64, Ordering};

struct Cell {
    seq: AtomicU64,
    payload_a: AtomicU64,
    payload_b: AtomicU64,
}

struct RmwCell {
    rseq: AtomicU64,
    rpayload: AtomicU64,
}

impl Cell {
    fn broken_writer(&self, lap: u64, v: u64) {
        // Payload store before the bracket opens: readable under the old
        // even sequence.
        self.payload_a.store(v, Ordering::Relaxed);
        // Release on the open orders nothing that follows it.
        self.seq.store(lap * 2 + 1, Ordering::Release);
        self.payload_a.store(v, Ordering::Relaxed);
        self.payload_b.store(v + 1, Ordering::Relaxed);
        // Relaxed close publishes nothing.
        self.seq.store(lap * 2 + 2, Ordering::Relaxed);
    }

    fn broken_reader(&self) -> Option<(u64, u64)> {
        // Relaxed first check: payload loads may float above it.
        let before = self.seq.load(Ordering::Relaxed);
        let a = self.payload_a.load(Ordering::Relaxed);
        let b = self.payload_b.load(Ordering::Relaxed);
        // No Acquire fence before the re-check, and the re-check itself
        // is Relaxed.
        let after = self.seq.load(Ordering::Relaxed);
        if before == after && before % 2 == 0 {
            Some((a, b))
        } else {
            None
        }
    }
}

impl RmwCell {
    fn rmw_writer(&self, v: u64) {
        // In-place increments: two racing writers can make the sequence
        // even while both payloads are still in flight.
        self.rseq.fetch_add(1, Ordering::AcqRel);
        self.rpayload.store(v, Ordering::Relaxed);
        self.rseq.fetch_add(1, Ordering::Release);
    }

    fn good_reader(&self) -> Option<u64> {
        let before = self.rseq.load(Ordering::Acquire);
        let v = self.rpayload.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        let after = self.rseq.load(Ordering::Acquire);
        if before == after && before % 2 == 0 {
            Some(v)
        } else {
            None
        }
    }
}
