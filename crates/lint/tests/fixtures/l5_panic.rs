//! Known-bad fixture for rule L5: panic avenues in the `from_bytes` entry
//! point itself, plus a `panic!` seeded two call hops below it — the case
//! the old per-file allowlist could never see.
//! Linted under the pretend path `crates/darshan/src/mdf.rs`.

pub fn from_bytes(data: &[u8]) -> u32 {
    let first = data[0];
    let last = *data.last().unwrap();
    helper(data) + u32::from(first) + u32::from(last)
}

fn helper(data: &[u8]) -> u32 {
    deep(data.len())
}

fn deep(n: usize) -> u32 {
    if n == 0 {
        panic!("empty input");
    }
    1
}
