//! Known-bad fixture for rule L2: unordered collections, wall-clock, and
//! ambient RNG in a crate that feeds snapshot digests. Linted under the
//! pretend path `crates/core/src/merge.rs`.

use std::collections::{HashMap, HashSet};

pub fn tally(keys: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &k in keys {
        seen.insert(k);
        *counts.entry(k).or_insert(0) += 1;
    }
    let started = std::time::Instant::now();
    let stamp = std::time::SystemTime::now();
    let jitter = thread_rng().gen::<u8>() as usize;
    let _ = (started, stamp);
    seen.len() + counts.len() + jitter
}

/// Monotonic reads that are findings only under `crates/obs/` (the clock
/// rule's stricter arm): `.elapsed()` and `.duration_since()` calls.
pub fn monotonic_reads(epoch: std::time::Instant, later: std::time::Instant) -> u128 {
    let a = epoch.elapsed().as_nanos();
    let b = later.duration_since(epoch).as_nanos();
    a + b
}
