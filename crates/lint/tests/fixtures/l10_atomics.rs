//! Deliberately bad: L10 atomics-discipline violations — unpaired
//! Release/Acquire, a Relaxed publish on a consumed field, a consumed
//! Relaxed read-modify-write, and a Relaxed-guarded read of plain shared
//! state. One audited counter shows the `allow(sync, …)` hatch working.

use std::sync::atomic::{AtomicU64, Ordering};

struct Publisher {
    half_published: AtomicU64,
    weak_flag: AtomicU64,
    phantom_ready: AtomicU64,
    ticket: AtomicU64,
    audited_ticket: AtomicU64,
    gate: AtomicU64,
    staged: Vec<u64>,
}

impl Publisher {
    fn release_into_the_void(&self) {
        // Release with no Acquire consumer anywhere: pairs with nothing.
        self.half_published.store(1, Ordering::Release);
    }

    fn peek_half_published(&self) -> u64 {
        self.half_published.load(Ordering::Relaxed)
    }

    fn weak_publish(&self) {
        // Relaxed store on a field consumed with Acquire below.
        self.weak_flag.store(1, Ordering::Relaxed);
    }

    fn weak_consume(&self) -> u64 {
        self.weak_flag.load(Ordering::Acquire)
    }

    fn phantom_acquire(&self) -> u64 {
        // Acquire with no Release-strength publish anywhere.
        self.phantom_ready.load(Ordering::Acquire)
    }

    fn claim(&self) -> u64 {
        // The claimed value is consumed under Relaxed with no proof.
        let n = self.ticket.fetch_add(1, Ordering::Relaxed);
        n
    }

    fn claim_audited(&self) -> u64 {
        // lint: allow(sync, "pure ticket counter: the value only names this call's slot and orders nothing")
        let n = self.audited_ticket.fetch_add(1, Ordering::Relaxed);
        n
    }

    fn guarded_read(&self) -> u64 {
        // A Relaxed load guards a read of non-atomic shared data.
        if self.gate.load(Ordering::Relaxed) > 0 {
            return self.staged.len() as u64;
        }
        0
    }
}
