//! L9 fixture, borrowed half: enforces `MAX_RECORDS` and `MAX_EXE_LEN`
//! but never `MAX_NAMES` — drifted from its owned twin `l9_mdf.rs`.

use crate::limits::{MAX_EXE_LEN, MAX_RECORDS};

pub fn parse(cur: &mut Cursor) -> Vec<u64> {
    let n_records = cur.get_u32_le();
    if n_records > MAX_RECORDS {
        return Vec::new();
    }
    let exe_len = cur.get_u32_le();
    if exe_len > MAX_EXE_LEN {
        return Vec::new();
    }
    Vec::with_capacity(crate::convert::to_usize(n_records))
}

pub fn validate_view(len: u32) -> bool {
    len <= MAX_RECORDS
}
