//! Deliberately bad: an L11 lock-acquisition-order cycle — one path takes
//! `ledger` then `journal`, another takes `journal` then `ledger`. Two
//! threads entering from different ends deadlock. The third function
//! shows the repaired shape: dropping the first guard removes the edge.

use std::sync::Mutex;

struct Books {
    ledger: Mutex<Vec<u64>>,
    journal: Mutex<Vec<u64>>,
}

fn post_entry(b: &Books, v: u64) {
    let mut ledger = b.ledger.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut journal = b.journal.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    ledger.push(v);
    journal.push(v);
}

fn reconcile(b: &Books) -> usize {
    let journal = b.journal.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let ledger = b.ledger.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    journal.len() + ledger.len()
}

fn audit(b: &Books) -> usize {
    let journal = b.journal.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let journal_len = journal.len();
    drop(journal);
    let ledger = b.ledger.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    journal_len + ledger.len()
}
