//! Fixture for the `unused-allow` rule: a stale escape hatch that no
//! longer suppresses anything is itself a finding.
//! Linted under the pretend path `crates/core/src/merge.rs`.

pub fn tidy(x: u64) -> u64 {
    // lint: allow(panic, "stale: there is no panic here any more")
    x + 1
}
