//! L9 fixture limits module: declares only `MAX_RECORDS`, so every
//! other guard constant the parser pair compares against must fail the
//! anchor check — bomb bounds live here or nowhere.

pub const MAX_RECORDS: u32 = 16_777_216;
