//! Known-bad fixture for rule L1: every panic avenue in one parse fn.
//! Linted under the pretend path `crates/darshan/src/mdf.rs`.

pub fn parse(data: &[u8]) -> u32 {
    let first = data[0];
    let tail: Option<&u8> = data.last();
    let last = tail.unwrap();
    let four: [u8; 4] = data[..4].try_into().expect("four bytes");
    if first == 0 {
        panic!("zero header");
    }
    u32::from_le_bytes(four) + u32::from(*last)
}
