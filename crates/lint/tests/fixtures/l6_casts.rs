//! Known-bad fixture for rule L6: narrowing, sign-dropping and
//! precision-dropping `as` casts on a merge path, one audited cast that
//! must be suppressed, and an `as f64` that is exempt.
//! Linted under the pretend path `crates/core/src/merge.rs`.

pub fn casts(len: u64, count: i64, ratio: f64) -> f64 {
    let a = len as u32;
    let _b = count as u64;
    let c = ratio as f32;
    // lint: allow(cast, "demo: len is bounded by the wire-format cap")
    let _d = len as usize;
    let e = len as f64;
    e + f64::from(a) + f64::from(c)
}
