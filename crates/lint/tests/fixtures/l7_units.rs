//! Known-bad fixture for rule L7: `+`/`-` arithmetic mixing byte-volume
//! and seconds-duration identifiers, one audited mix that must be
//! suppressed, and same-class arithmetic that must stay quiet.
//! Linted under the pretend path `crates/core/src/merge.rs`.

pub fn mix(start_time: f64, total_bytes: f64, elapsed_secs: f64) -> f64 {
    let bad = total_bytes + elapsed_secs;
    let also_bad = start_time - total_bytes;
    // lint: allow(unit, "demo: deliberately mixed for a composite score")
    let audited = total_bytes + start_time;
    let fine = total_bytes + total_bytes;
    bad + also_bad + audited + fine
}
