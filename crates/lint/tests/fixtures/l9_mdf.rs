//! L9 fixture, owned half: enforces `MAX_RECORDS` and `MAX_NAMES`.
//! Its borrowed twin (`l9_view.rs`) dropped `MAX_NAMES` and invented
//! `MAX_EXE_LEN`, so guard parity must flag drift in both directions.

use crate::limits::{MAX_NAMES, MAX_RECORDS};

pub fn from_bytes(cur: &mut Cursor) -> Vec<u64> {
    let n_records = cur.get_u32_le();
    if n_records > MAX_RECORDS {
        return Vec::new();
    }
    let n_names = cur.get_u32_le();
    if n_names > MAX_NAMES {
        return Vec::new();
    }
    Vec::with_capacity(crate::convert::to_usize(n_records))
}
