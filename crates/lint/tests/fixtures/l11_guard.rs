//! Deliberately bad: L11 guard-liveness and poison-parity violations —
//! a `MutexGuard` held across a fan-out call, `lock().unwrap()`, and
//! `try_lock().expect(…)`. The dropped-guard twin shows the clean shape.

use std::sync::Mutex;

struct Shared {
    registry: Mutex<Vec<u64>>,
    totals: Mutex<u64>,
    frame: Mutex<String>,
}

fn guard_across_fan_out(s: &Shared, data: &[u64]) -> usize {
    let reg = s.registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // The guard is still live here: a pool worker taking `registry`
    // deadlocks the fan-out.
    let n = run_chunked(data, 4, |chunk| chunk.len());
    reg.len() + n
}

fn guard_dropped_before_fan_out(s: &Shared, data: &[u64]) -> usize {
    let reg = s.registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let held = reg.len();
    drop(reg);
    held + run_chunked(data, 4, |chunk| chunk.len())
}

fn poisoned_unwrap(s: &Shared) -> u64 {
    // Panics if a previous holder panicked; the state under the lock is
    // still consistent, so recovery is the established idiom.
    let g = s.totals.lock().unwrap();
    *g
}

fn contention_as_error(s: &Shared) -> usize {
    // `try_lock` fails on plain contention; panicking turns a benign
    // skip into a crash.
    let g = s.frame.try_lock().expect("frame lock");
    g.len()
}

fn run_chunked<R>(data: &[u64], _chunk: usize, f: impl Fn(&[u64]) -> R) -> usize {
    let _ = f(data);
    data.len()
}
