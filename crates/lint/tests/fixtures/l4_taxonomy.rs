//! Known-bad fixture for rule L4: the `slug` accounting match hides
//! behind a `_` wildcard and silently drops the declared (and
//! constructed) `UnknownModule` variant. Linted under the pretend path
//! `crates/darshan/src/error.rs`.

pub enum EvictClass {
    Io,
    Format,
}

pub enum EvictReason {
    IoError,
    BadMagic,
    UnknownModule,
}

impl EvictReason {
    pub fn class(self) -> EvictClass {
        match self {
            EvictReason::IoError => EvictClass::Io,
            EvictReason::BadMagic => EvictClass::Format,
            EvictReason::UnknownModule => EvictClass::Format,
        }
    }

    pub fn slug(self) -> &'static str {
        match self {
            EvictReason::IoError => "io_error",
            EvictReason::BadMagic => "bad_magic",
            _ => "other",
        }
    }
}

pub fn classify(bytes: &[u8]) -> Option<EvictReason> {
    match bytes.first() {
        None => Some(EvictReason::IoError),
        Some(0) => Some(EvictReason::BadMagic),
        Some(1) => Some(EvictReason::UnknownModule),
        Some(_) => None,
    }
}
