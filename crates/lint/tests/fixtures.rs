//! Fixture-based self-tests: each known-bad snippet in `tests/fixtures/`
//! must produce findings of its rule, and the real workspace must be
//! clean end-to-end through the CLI driver.

use mosaic_lint::{cli_main, find_workspace_root, lint_files, FileInput, Rule, EXIT_FINDINGS};
use std::path::PathBuf;

/// The `tests/fixtures/` directory, whether the test runs under cargo or
/// a bare `rustc`-built binary.
fn fixture_dir() -> PathBuf {
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        return PathBuf::from(manifest).join("tests/fixtures");
    }
    let cwd = std::env::current_dir().expect("no working directory");
    let root = find_workspace_root(&cwd).expect("workspace root not found");
    root.join("crates/lint/tests/fixtures")
}

/// Lint one fixture file under a pretend workspace-relative path.
fn lint_fixture(fixture: &str, pretend_rel: &str) -> Vec<(Rule, u32, String)> {
    let path = fixture_dir().join(fixture);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report = lint_files(&[FileInput { rel: pretend_rel.to_owned(), text }]);
    report.findings.into_iter().map(|f| (f.rule, f.line, f.message)).collect()
}

#[test]
fn l1_fixture_trips_panic_freedom() {
    let findings = lint_fixture("l1_panic.rs", "crates/darshan/src/mdf.rs");
    let l1: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::PanicFreedom).collect();
    // indexing ×2 (`data[0]`, `data[..4]`), `.unwrap()`, `.expect()`, `panic!`.
    assert!(l1.len() >= 5, "{findings:?}");
}

#[test]
fn l2_fixture_trips_determinism() {
    let findings = lint_fixture("l2_nondet.rs", "crates/core/src/merge.rs");
    let l2: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::Determinism).collect();
    let text = format!("{l2:?}");
    assert!(text.contains("HashMap"), "{findings:?}");
    assert!(text.contains("HashSet"), "{findings:?}");
    assert!(text.contains("Instant::now"), "{findings:?}");
    assert!(text.contains("SystemTime::now"), "{findings:?}");
    assert!(text.contains("thread_rng"), "{findings:?}");
}

#[test]
fn l3_fixture_trips_unsafe_hygiene() {
    let findings = lint_fixture("l3_unsafe.rs", "crates/demo/src/lib.rs");
    let l3: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::UnsafeHygiene).collect();
    // Missing `#![forbid(unsafe_code)]` at the root plus the `unsafe` block.
    assert_eq!(l3.len(), 2, "{findings:?}");
}

#[test]
fn l4_fixture_trips_taxonomy() {
    let findings = lint_fixture("l4_taxonomy.rs", "crates/darshan/src/error.rs");
    let l4: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::Taxonomy).collect();
    let text = format!("{l4:?}");
    assert!(text.contains("wildcard"), "{findings:?}");
    assert!(text.contains("UnknownModule"), "{findings:?}");
    assert!(!l4.is_empty());
}

#[test]
fn malformed_allows_are_findings_and_do_not_suppress() {
    let findings = lint_fixture("bad_allow.rs", "crates/darshan/src/mdf.rs");
    let malformed = findings.iter().filter(|(r, ..)| *r == Rule::MalformedAllow).count();
    assert_eq!(malformed, 4, "{findings:?}");
    // The unwraps they failed to cover still count.
    let l1 = findings.iter().filter(|(r, ..)| *r == Rule::PanicFreedom).count();
    assert_eq!(l1, 3, "{findings:?}");
}

#[test]
fn fixture_reports_are_byte_stable() {
    let path = fixture_dir().join("l1_panic.rs");
    let text = std::fs::read_to_string(path).expect("fixture readable");
    let input = [FileInput { rel: "crates/darshan/src/mdf.rs".to_owned(), text }];
    let a = lint_files(&input).to_json();
    let b = lint_files(&input).to_json();
    assert_eq!(a, b);
    assert!(a.contains("\"L1/panic-freedom\""));
}

/// End-to-end through the CLI driver: a bad mini-workspace exits non-zero.
#[test]
fn cli_exits_nonzero_on_a_dirty_tree() {
    let dir = std::env::temp_dir().join(format!("mosaic-lint-e2e-{}", std::process::id()));
    let src = dir.join("crates/darshan/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(src.join("mdf.rs"), "pub fn f(d: &[u8]) -> u8 { d[0] }\n").expect("fixture");
    let code = cli_main(&["--root".to_owned(), dir.display().to_string()]);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(code, EXIT_FINDINGS);
}

/// The real workspace must lint clean through the same driver the CI job
/// and `mosaic lint` use.
#[test]
fn cli_is_clean_on_this_workspace() {
    let cwd = std::env::current_dir().expect("no working directory");
    let start = option_env!("CARGO_MANIFEST_DIR").map(PathBuf::from).unwrap_or(cwd);
    let root = find_workspace_root(&start).expect("workspace root not found");
    let code = cli_main(&[
        "--root".to_owned(),
        root.display().to_string(),
        "--format".to_owned(),
        "json".to_owned(),
    ]);
    assert_eq!(code, mosaic_lint::EXIT_CLEAN);
}
