//! Fixture-based self-tests: each known-bad snippet in `tests/fixtures/`
//! must produce findings of its rule, and the real workspace must be
//! clean end-to-end through the CLI driver.

use mosaic_lint::{cli_main, find_workspace_root, lint_files, FileInput, Rule, EXIT_FINDINGS};
use std::path::PathBuf;

/// The `tests/fixtures/` directory, whether the test runs under cargo or
/// a bare `rustc`-built binary.
fn fixture_dir() -> PathBuf {
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        return PathBuf::from(manifest).join("tests/fixtures");
    }
    let cwd = std::env::current_dir().expect("no working directory");
    let root = find_workspace_root(&cwd).expect("workspace root not found");
    root.join("crates/lint/tests/fixtures")
}

/// Lint one fixture file under a pretend workspace-relative path.
fn lint_fixture(fixture: &str, pretend_rel: &str) -> Vec<(Rule, u32, String)> {
    lint_fixture_set(&[(fixture, pretend_rel)]).into_iter().map(|(r, _, l, m)| (r, l, m)).collect()
}

/// Lint several fixture files together (for the cross-file rules),
/// each under its pretend workspace-relative path.
fn lint_fixture_set(pairs: &[(&str, &str)]) -> Vec<(Rule, String, u32, String)> {
    let dir = fixture_dir();
    let inputs: Vec<FileInput> = pairs
        .iter()
        .map(|(fixture, pretend_rel)| {
            let path = dir.join(fixture);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            FileInput { rel: (*pretend_rel).to_owned(), text }
        })
        .collect();
    let report = lint_files(&inputs);
    report.findings.into_iter().map(|f| (f.rule, f.file, f.line, f.message)).collect()
}

#[test]
fn l5_fixture_reports_the_two_hop_call_path() {
    let findings = lint_fixture("l5_panic.rs", "crates/darshan/src/mdf.rs");
    let l5: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::PanicReachability).collect();
    // Indexing and `.unwrap()` in the root, plus the `panic!` two hops down.
    assert!(l5.len() >= 3, "{findings:?}");
    let deep = l5
        .iter()
        .find(|(_, _, m)| m.contains("panic!"))
        .unwrap_or_else(|| panic!("no panic! finding in {findings:?}"));
    assert!(
        deep.2.contains("mdf::from_bytes -> mdf::helper -> mdf::deep"),
        "call path missing from: {}",
        deep.2
    );
}

#[test]
fn renaming_an_entry_point_is_itself_a_finding() {
    // `unused_allow.rs` has no `from_bytes`, so pretending it is mdf.rs
    // must flag the missing L5 root (the roots list cannot silently rot).
    let findings = lint_fixture("unused_allow.rs", "crates/darshan/src/mdf.rs");
    assert!(
        findings.iter().any(|(r, _, m)| *r == Rule::PanicReachability && m.contains("entry point")),
        "{findings:?}"
    );
}

#[test]
fn l2_fixture_trips_determinism() {
    let findings = lint_fixture("l2_nondet.rs", "crates/core/src/merge.rs");
    let l2: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::Determinism).collect();
    let text = format!("{l2:?}");
    assert!(text.contains("HashMap"), "{findings:?}");
    assert!(text.contains("HashSet"), "{findings:?}");
    assert!(text.contains("Instant::now"), "{findings:?}");
    assert!(text.contains("SystemTime::now"), "{findings:?}");
    assert!(text.contains("thread_rng"), "{findings:?}");
    // The monotonic-read arm is scoped to crates/obs: quiet elsewhere.
    assert!(!text.contains("elapsed"), "{findings:?}");
    assert!(!text.contains("duration_since"), "{findings:?}");
}

#[test]
fn l2_clock_rule_is_stricter_inside_the_obs_crate() {
    // The same fixture linted under a pretend crates/obs path must
    // additionally flag every monotonic read, not just `::now()`.
    let findings = lint_fixture("l2_nondet.rs", "crates/obs/src/demo.rs");
    let l2: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::Determinism).collect();
    let text = format!("{l2:?}");
    assert!(text.contains(".elapsed()"), "{findings:?}");
    assert!(text.contains(".duration_since()"), "{findings:?}");
    let monotonic =
        l2.iter().filter(|(_, _, m)| m.contains("monotonic clock inside `crates/obs`")).count();
    assert_eq!(monotonic, 2, "{findings:?}");
}

#[test]
fn l3_fixture_trips_unsafe_hygiene() {
    let findings = lint_fixture("l3_unsafe.rs", "crates/demo/src/lib.rs");
    let l3: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::UnsafeHygiene).collect();
    // Missing `#![forbid(unsafe_code)]` at the root plus the `unsafe` block.
    assert_eq!(l3.len(), 2, "{findings:?}");
}

#[test]
fn l4_fixture_trips_taxonomy() {
    let findings = lint_fixture("l4_taxonomy.rs", "crates/darshan/src/error.rs");
    let l4: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::Taxonomy).collect();
    let text = format!("{l4:?}");
    assert!(text.contains("wildcard"), "{findings:?}");
    assert!(text.contains("UnknownModule"), "{findings:?}");
    assert!(!l4.is_empty());
}

#[test]
fn l6_fixture_trips_lossy_casts_and_honours_the_audit() {
    let findings = lint_fixture("l6_casts.rs", "crates/core/src/merge.rs");
    let l6: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::LossyCast).collect();
    // `as u32`, `as u64` (sign-dropping), `as f32`; the audited `as usize`
    // is suppressed and `as f64` is exempt.
    assert_eq!(l6.len(), 3, "{findings:?}");
    assert!(l6.iter().all(|(_, _, m)| m.contains("try_from")), "{findings:?}");
    assert!(
        !findings.iter().any(|(r, ..)| *r == Rule::UnusedAllow),
        "the audited cast must consume its allow: {findings:?}"
    );
}

#[test]
fn l7_fixture_trips_unit_mixing_and_honours_the_audit() {
    let findings = lint_fixture("l7_units.rs", "crates/core/src/merge.rs");
    let l7: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::UnitMix).collect();
    // volume+time and time-volume flagged; the audited mix suppressed;
    // volume+volume quiet.
    assert_eq!(l7.len(), 2, "{findings:?}");
    assert!(
        !findings.iter().any(|(r, ..)| *r == Rule::UnusedAllow),
        "the audited mix must consume its allow: {findings:?}"
    );
}

#[test]
fn l8_fixture_flags_each_unguarded_sink_with_its_taint_path() {
    let findings = lint_fixture("l8_taint.rs", "crates/darshan/src/mdf.rs");
    let l8: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::WireTaint).collect();
    // Unguarded root, wrong-branch guard, two-hop return, hidden-sink
    // helper, `vec![x; n]`, and the slice-range bound — nothing else.
    assert_eq!(l8.len(), 6, "{findings:?}");
    // Every finding walks all the way back to the wire read.
    assert!(
        l8.iter()
            .all(|(_, _, m)| m.contains("taint path:") && m.contains("wire read `get_u32_le`")),
        "{l8:?}"
    );
    // The two-hop case names the returning helper, the hidden-sink case
    // the allocating one.
    assert!(l8.iter().any(|(_, _, m)| m.contains("returned by")), "{l8:?}");
    assert!(l8.iter().any(|(_, _, m)| m.contains("alloc_records")), "{l8:?}");
    // `guarded` and `audited` are quiet; the stale audit is itself flagged.
    let stale: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::UnusedAllow).collect();
    assert_eq!(stale.len(), 1, "{findings:?}");
}

#[test]
fn l9_fixture_flags_guard_drift_in_both_directions() {
    let findings = lint_fixture_set(&[
        ("l9_mdf.rs", "crates/darshan/src/mdf.rs"),
        ("l9_view.rs", "crates/darshan/src/view.rs"),
    ]);
    let l9: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::GuardParity).collect();
    assert_eq!(l9.len(), 2, "{findings:?}");
    assert!(
        l9.iter().any(|(_, f, _, m)| f.ends_with("view.rs")
            && m.contains("`MAX_NAMES`")
            && m.contains("the borrowed parser never does")),
        "{l9:?}"
    );
    assert!(
        l9.iter().any(|(_, f, _, m)| f.ends_with("mdf.rs")
            && m.contains("`MAX_EXE_LEN`")
            && m.contains("the owned parser never does")),
        "{l9:?}"
    );
    // Both halves guard correctly, so the taint pass stays quiet.
    assert!(!findings.iter().any(|(r, ..)| *r == Rule::WireTaint), "{findings:?}");
}

#[test]
fn l9_guard_constants_must_anchor_in_the_limits_module() {
    let findings = lint_fixture_set(&[
        ("l9_mdf.rs", "crates/darshan/src/mdf.rs"),
        ("l9_view.rs", "crates/darshan/src/view.rs"),
        ("l9_limits.rs", "crates/darshan/src/limits.rs"),
    ]);
    let anchor: Vec<_> = findings
        .iter()
        .filter(|(r, _, _, m)| *r == Rule::GuardParity && m.contains("is not declared in"))
        .collect();
    // `MAX_RECORDS` is declared; `MAX_NAMES` (mdf) and `MAX_EXE_LEN`
    // (view) are not.
    assert_eq!(anchor.len(), 2, "{findings:?}");
    assert!(anchor.iter().any(|(_, f, _, m)| f.ends_with("mdf.rs") && m.contains("`MAX_NAMES`")));
    assert!(anchor
        .iter()
        .any(|(_, f, _, m)| f.ends_with("view.rs") && m.contains("`MAX_EXE_LEN`")));
}

#[test]
fn l10_atomics_fixture_flags_each_pairing_hole_and_honours_the_audit() {
    let findings = lint_fixture("l10_atomics.rs", "crates/obs/src/l10_atomics.rs");
    let l10: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::AtomicsDiscipline).collect();
    // Release into the void, Relaxed publish of an Acquire-consumed
    // field, Acquire of a never-published field, the consumed Relaxed
    // RMW, and the Relaxed-guarded plain-field read — nothing else.
    assert_eq!(l10.len(), 5, "{findings:?}");
    let text = format!("{l10:?}");
    assert!(text.contains("half_published` but no Acquire-strength load"), "{findings:?}");
    assert!(text.contains("weak_flag"), "{findings:?}");
    assert!(text.contains("use Release ordering"), "{findings:?}");
    assert!(text.contains("phantom_ready"), "{findings:?}");
    assert!(text.contains("synchronizes with nothing"), "{findings:?}");
    assert!(text.contains("result of `self.ticket.fetch_add"), "{findings:?}");
    assert!(text.contains("non-atomic field `staged`"), "{findings:?}");
    // The audited ticket counter is suppressed and its allow consumed.
    assert!(!text.contains("audited_ticket"), "{findings:?}");
    assert!(
        !findings.iter().any(|(r, ..)| *r == Rule::UnusedAllow),
        "the audited counter must consume its allow: {findings:?}"
    );
}

#[test]
fn l10_seqlock_fixture_flags_both_bracket_sides() {
    let findings = lint_fixture("l10_seqlock.rs", "crates/obs/src/l10_seqlock.rs");
    let l10: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::AtomicsDiscipline).collect();
    // Writer: pre-bracket payload store, Release open, Relaxed close.
    // Reader: Relaxed first check, Relaxed re-check, missing fence.
    // RMW writer: fetch_add open and fetch_add close. Eight exactly —
    // the good reader and the bracket fields stay quiet elsewhere.
    assert_eq!(l10.len(), 8, "{findings:?}");
    let text = format!("{l10:?}");
    assert!(text.contains("written before the seqlock bracket"), "{findings:?}");
    assert!(text.contains("does not order the payload writes that follow"), "{findings:?}");
    assert!(text.contains("must close with `store(Release)`"), "{findings:?}");
    assert!(text.contains("first sequence load must be `Acquire`"), "{findings:?}");
    assert!(text.contains("re-check must load with `Acquire`"), "{findings:?}");
    assert!(text.contains("add `fence(Acquire)`"), "{findings:?}");
    assert!(text.contains("read-modify-write open"), "{findings:?}");
    assert!(text.contains("closes with `fetch_add`"), "{findings:?}");
}

#[test]
fn l11_guard_fixture_flags_liveness_and_poison_but_not_the_dropped_twin() {
    let findings = lint_fixture("l11_guard.rs", "crates/obs/src/l11_guard.rs");
    let l11: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::LockDiscipline).collect();
    // The guard live across `run_chunked`, `lock().unwrap()`, and
    // `try_lock().expect(…)`; the drop-first twin is quiet.
    assert_eq!(l11.len(), 3, "{findings:?}");
    let text = format!("{l11:?}");
    assert!(text.contains("still live across `run_chunked"), "{findings:?}");
    assert!(text.contains("drop(reg)"), "{findings:?}");
    assert!(text.contains("PoisonError::into_inner"), "{findings:?}");
    assert!(text.contains("WouldBlock"), "{findings:?}");
}

#[test]
fn l11_order_fixture_reports_the_cycle_once_with_every_hop() {
    let findings = lint_fixture("l11_order.rs", "crates/obs/src/l11_order.rs");
    let l11: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::LockDiscipline).collect();
    // One canonical cycle diagnostic, not one per participating edge; the
    // `audit` path drops its first guard and contributes no edge.
    assert_eq!(l11.len(), 1, "{findings:?}");
    let (_, line, message) = l11[0];
    assert!(message.contains("lock-order cycle `journal` -> `ledger` -> `journal`"), "{message}");
    assert!(message.contains("while holding `ledger`"), "{message}");
    assert!(message.contains("while holding `journal`"), "{message}");
    // Both hops are annotated with their acquisition site.
    assert_eq!(message.matches("l11_order.rs:").count(), 2, "{message}");
    assert!(*line > 0);
}

#[test]
fn stale_allow_is_reported_as_unused() {
    let findings = lint_fixture("unused_allow.rs", "crates/core/src/merge.rs");
    let stale: Vec<_> = findings.iter().filter(|(r, ..)| *r == Rule::UnusedAllow).collect();
    assert_eq!(stale.len(), 1, "{findings:?}");
}

#[test]
fn malformed_allows_are_findings_and_do_not_suppress() {
    let findings = lint_fixture("bad_allow.rs", "crates/darshan/src/text.rs");
    let malformed = findings.iter().filter(|(r, ..)| *r == Rule::MalformedAllow).count();
    assert_eq!(malformed, 4, "{findings:?}");
    // The unwraps they failed to cover still count: `parse` is the L5
    // entry point for text.rs, so all three are reachable.
    let l5 = findings.iter().filter(|(r, ..)| *r == Rule::PanicReachability).count();
    assert_eq!(l5, 3, "{findings:?}");
}

#[test]
fn fixture_reports_are_byte_stable() {
    let path = fixture_dir().join("l5_panic.rs");
    let text = std::fs::read_to_string(path).expect("fixture readable");
    let input = [FileInput { rel: "crates/darshan/src/mdf.rs".to_owned(), text }];
    let a = lint_files(&input).to_json();
    let b = lint_files(&input).to_json();
    assert_eq!(a, b);
    assert!(a.contains("\"L5/panic-reachability\""));
}

/// End-to-end through the CLI driver: a bad mini-workspace exits non-zero.
#[test]
fn cli_exits_nonzero_on_a_dirty_tree() {
    let dir = std::env::temp_dir().join(format!("mosaic-lint-e2e-{}", std::process::id()));
    let src = dir.join("crates/darshan/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(src.join("mdf.rs"), "pub fn from_bytes(d: &[u8]) -> u8 { d[0] }\n")
        .expect("fixture");
    let code = cli_main(&["--root".to_owned(), dir.display().to_string()]);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(code, EXIT_FINDINGS);
}

/// The real workspace must lint clean through the same driver the CI job
/// and `mosaic lint` use.
#[test]
fn cli_is_clean_on_this_workspace() {
    let cwd = std::env::current_dir().expect("no working directory");
    let start = option_env!("CARGO_MANIFEST_DIR").map(PathBuf::from).unwrap_or(cwd);
    let root = find_workspace_root(&start).expect("workspace root not found");
    let code = cli_main(&[
        "--root".to_owned(),
        root.display().to_string(),
        "--format".to_owned(),
        "json".to_owned(),
    ]);
    assert_eq!(code, mosaic_lint::EXIT_CLEAN);
}

/// `--debt --format json` is byte-stable and ranks the whole workspace —
/// the report is meant to be diffable across CI runs.
#[test]
fn debt_report_is_byte_stable_and_ranks_the_workspace() {
    let cwd = std::env::current_dir().expect("no working directory");
    let start = option_env!("CARGO_MANIFEST_DIR").map(PathBuf::from).unwrap_or(cwd);
    let root = find_workspace_root(&start).expect("workspace root not found");
    let a = mosaic_lint::debt::debt_report(&root).expect("scan").to_json();
    let b = mosaic_lint::debt::debt_report(&root).expect("scan").to_json();
    assert_eq!(a, b);
    let ranked = a.matches("\"rank\":").count();
    assert!(ranked >= 100, "only {ranked} functions ranked");
}
