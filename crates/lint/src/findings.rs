//! Finding types and the two output formats (human text, stable JSON).

use std::fmt;

/// Which invariant a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L2 — determinism (unordered collections, wall-clock, RNG).
    Determinism,
    /// L3 — unsafe hygiene (`#![forbid(unsafe_code)]`, no `unsafe` blocks).
    UnsafeHygiene,
    /// L4 — error-taxonomy exhaustiveness for `EvictReason`.
    Taxonomy,
    /// L5 — transitive panic-reachability: no panic site in any function
    /// reachable (over the workspace call graph) from an untrusted-input
    /// entry point. Supersedes the old per-file L1 allowlist.
    PanicReachability,
    /// L6 — lossy-cast safety: no narrowing/sign/float-truncating `as`
    /// casts in parse/merge/categorize paths.
    LossyCast,
    /// L7 — unit consistency: no `+`/`-` arithmetic mixing byte-volume and
    /// seconds-duration identifiers outside the core unit newtypes.
    UnitMix,
    /// L8 — wire-taint dataflow: a length read off the wire must be
    /// compared against a named `limits::MAX_*` guard constant before it
    /// sizes an allocation (`with_capacity`, `reserve`, `vec![x; n]`,
    /// slice-range bounds), on every interprocedural path.
    WireTaint,
    /// L9 — guard parity: the owned (`mdf.rs`) and borrowed (`view.rs`)
    /// MDF parsers must compare against the same set of `MAX_*` guard
    /// constants — the static twin of the runtime differential oracle.
    GuardParity,
    /// L10 — atomics discipline: every `store(Release)` pairs with a
    /// `load(Acquire)` on the same atomic (and vice versa); `Relaxed` is
    /// reserved for counters whose loaded value never guards a read of
    /// non-atomic shared data; the seqlock write bracket (odd before the
    /// payload, even-with-Release after it, Acquire + fence on the reader
    /// re-check) is verified structurally.
    AtomicsDiscipline,
    /// L11 — lock discipline: no `MutexGuard` live across a
    /// `par_*`/`pool.install`/blocking-IO call, the workspace
    /// lock-acquisition-order graph is acyclic, and `lock()` results use
    /// the `PoisonError::into_inner` idiom instead of `unwrap`.
    LockDiscipline,
    /// A `lint: allow(...)` escape hatch that does not parse or lacks a
    /// justification — the hatch itself must be auditable.
    MalformedAllow,
    /// A well-formed `lint: allow(...)` that no longer suppresses any
    /// finding — stale escape hatches must be deleted, not accumulated.
    UnusedAllow,
}

impl Rule {
    /// Stable machine-readable identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "L2/determinism",
            Rule::UnsafeHygiene => "L3/unsafe-hygiene",
            Rule::Taxonomy => "L4/error-taxonomy",
            Rule::PanicReachability => "L5/panic-reachability",
            Rule::LossyCast => "L6/lossy-cast",
            Rule::UnitMix => "L7/unit-consistency",
            Rule::WireTaint => "L8/wire-taint",
            Rule::GuardParity => "L9/guard-parity",
            Rule::AtomicsDiscipline => "L10/atomics-discipline",
            Rule::LockDiscipline => "L11/lock-discipline",
            Rule::MalformedAllow => "allow-syntax",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// The `lint: allow(<key>, "...")` key that can suppress this rule, if
    /// any. Structural rules (L3, L4, L9) and the allow machinery itself
    /// have no per-line escape hatch.
    pub fn allow_key(self) -> Option<&'static str> {
        match self {
            Rule::PanicReachability => Some("panic"),
            Rule::Determinism => Some("nondeterminism"),
            Rule::UnsafeHygiene => Some("unsafe"),
            Rule::LossyCast => Some("cast"),
            Rule::UnitMix => Some("unit"),
            Rule::WireTaint => Some("taint"),
            Rule::AtomicsDiscipline | Rule::LockDiscipline => Some("sync"),
            Rule::Taxonomy | Rule::GuardParity | Rule::MalformedAllow | Rule::UnusedAllow => None,
        }
    }

    /// One-line rule description for report metadata (SARIF `rules` table).
    pub fn short_description(self) -> &'static str {
        match self {
            Rule::Determinism => "No unordered collections, wall-clock or RNG in pipeline code",
            Rule::UnsafeHygiene => "forbid(unsafe_code) at every crate root; no unsafe tokens",
            Rule::Taxonomy => "EvictReason taxonomy is matched exhaustively",
            Rule::PanicReachability => {
                "No panic site reachable from an untrusted-input entry point"
            }
            Rule::LossyCast => "No narrowing/sign/float-truncating `as` casts in data paths",
            Rule::UnitMix => "No arithmetic mixing byte-volume and seconds identifiers",
            Rule::WireTaint => {
                "Wire-read lengths must be MAX_*-guard-dominated before sizing allocations"
            }
            Rule::GuardParity => "Owned and borrowed MDF parsers share one MAX_* guard set",
            Rule::AtomicsDiscipline => {
                "Release/Acquire pairing, seqlock brackets and Relaxed hygiene on atomics"
            }
            Rule::LockDiscipline => {
                "No guard live across fan-out, acyclic lock order, PoisonError::into_inner"
            }
            Rule::MalformedAllow => "lint: allow(...) must parse and carry a justification",
            Rule::UnusedAllow => "lint: allow(...) that suppresses nothing must be deleted",
        }
    }
}

/// Every rule, in report order — keep in sync with the `Rule` enum.
pub const ALL_RULES: &[Rule] = &[
    Rule::Determinism,
    Rule::UnsafeHygiene,
    Rule::Taxonomy,
    Rule::PanicReachability,
    Rule::LossyCast,
    Rule::UnitMix,
    Rule::WireTaint,
    Rule::GuardParity,
    Rule::AtomicsDiscipline,
    Rule::LockDiscipline,
    Rule::MalformedAllow,
    Rule::UnusedAllow,
];

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation, anchored to a `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// What was found and why it matters.
    pub message: String,
}

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sort findings into the stable output order.
    pub fn normalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
        self.findings.dedup();
    }

    /// `true` when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human diagnostics: one `file:line: [rule] message` per finding plus a
    /// summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.rule.id(), f.message));
        }
        out.push_str(&format!(
            "{} finding(s) in {} file(s) scanned\n",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }

    /// Stable machine-readable JSON. Hand-rolled (this crate is
    /// dependency-free); keys are emitted in a fixed order and findings are
    /// pre-sorted, so equal reports are byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(f.rule.id()),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"summary\": {{\"files_scanned\": {}, \"findings\": {}}}\n}}\n",
            self.files_scanned,
            self.findings.len()
        ));
        out
    }

    /// Stable SARIF 2.1.0 document. Hand-rolled like [`Report::to_json`]:
    /// fixed key order, pre-sorted findings, the full rule table always
    /// present — equal reports are byte-identical, so the CI artifact diffs
    /// cleanly between runs.
    pub fn to_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
             \"driver\": {\n          \"name\": \"mosaic-lint\",\n          \
             \"informationUri\": \"https://github.com/mosaic/mosaic\",\n          \"rules\": [",
        );
        for (i, r) in ALL_RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
                json_str(r.id()),
                json_str(r.short_description())
            ));
        }
        out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": \
                 {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
                json_str(f.rule.id()),
                json_str(&f.message),
                json_str(&f.file),
                f.line
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }
}

/// Escape a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: Rule::Determinism,
                    file: "b.rs".into(),
                    line: 2,
                    message: "HashMap".into(),
                },
                Finding {
                    rule: Rule::PanicReachability,
                    file: "a.rs".into(),
                    line: 9,
                    message: "`.unwrap()`".into(),
                },
            ],
            files_scanned: 2,
        };
        r.normalize();
        r
    }

    #[test]
    fn findings_are_sorted_by_file_then_line() {
        let r = sample();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[1].file, "b.rs");
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = sample();
        r.findings.push(Finding {
            rule: Rule::Taxonomy,
            file: "c.rs".into(),
            line: 1,
            message: "quote \" backslash \\ newline \n".into(),
        });
        r.normalize();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\" backslash \\\\ newline \\n"));
        assert!(a.contains("\"files_scanned\": 2"));
        assert!(a.contains("\"L4/error-taxonomy\""));
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let r = Report::default();
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"findings\": []"));
        assert!(r.render_text().contains("0 finding(s)"));
    }

    #[test]
    fn text_has_clickable_anchors() {
        let text = sample().render_text();
        assert!(text.contains("a.rs:9: [L5/panic-reachability]"));
    }

    #[test]
    fn every_rule_id_is_unique() {
        let rules = [
            Rule::Determinism,
            Rule::UnsafeHygiene,
            Rule::Taxonomy,
            Rule::PanicReachability,
            Rule::LossyCast,
            Rule::UnitMix,
            Rule::AtomicsDiscipline,
            Rule::LockDiscipline,
            Rule::MalformedAllow,
            Rule::UnusedAllow,
        ];
        for (i, a) in rules.iter().enumerate() {
            for b in &rules[i + 1..] {
                assert_ne!(a.id(), b.id());
            }
        }
    }
}
