//! Finding types and the two output formats (human text, stable JSON).

use std::fmt;

/// Which invariant a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L2 — determinism (unordered collections, wall-clock, RNG).
    Determinism,
    /// L3 — unsafe hygiene (`#![forbid(unsafe_code)]`, no `unsafe` blocks).
    UnsafeHygiene,
    /// L4 — error-taxonomy exhaustiveness for `EvictReason`.
    Taxonomy,
    /// L5 — transitive panic-reachability: no panic site in any function
    /// reachable (over the workspace call graph) from an untrusted-input
    /// entry point. Supersedes the old per-file L1 allowlist.
    PanicReachability,
    /// L6 — lossy-cast safety: no narrowing/sign/float-truncating `as`
    /// casts in parse/merge/categorize paths.
    LossyCast,
    /// L7 — unit consistency: no `+`/`-` arithmetic mixing byte-volume and
    /// seconds-duration identifiers outside the core unit newtypes.
    UnitMix,
    /// A `lint: allow(...)` escape hatch that does not parse or lacks a
    /// justification — the hatch itself must be auditable.
    MalformedAllow,
    /// A well-formed `lint: allow(...)` that no longer suppresses any
    /// finding — stale escape hatches must be deleted, not accumulated.
    UnusedAllow,
}

impl Rule {
    /// Stable machine-readable identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "L2/determinism",
            Rule::UnsafeHygiene => "L3/unsafe-hygiene",
            Rule::Taxonomy => "L4/error-taxonomy",
            Rule::PanicReachability => "L5/panic-reachability",
            Rule::LossyCast => "L6/lossy-cast",
            Rule::UnitMix => "L7/unit-consistency",
            Rule::MalformedAllow => "allow-syntax",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// The `lint: allow(<key>, "...")` key that can suppress this rule, if
    /// any. Structural rules (L3, L4) and the allow machinery itself have
    /// no per-line escape hatch.
    pub fn allow_key(self) -> Option<&'static str> {
        match self {
            Rule::PanicReachability => Some("panic"),
            Rule::Determinism => Some("nondeterminism"),
            Rule::UnsafeHygiene => Some("unsafe"),
            Rule::LossyCast => Some("cast"),
            Rule::UnitMix => Some("unit"),
            Rule::Taxonomy | Rule::MalformedAllow | Rule::UnusedAllow => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation, anchored to a `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// What was found and why it matters.
    pub message: String,
}

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sort findings into the stable output order.
    pub fn normalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
        self.findings.dedup();
    }

    /// `true` when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human diagnostics: one `file:line: [rule] message` per finding plus a
    /// summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.rule.id(), f.message));
        }
        out.push_str(&format!(
            "{} finding(s) in {} file(s) scanned\n",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }

    /// Stable machine-readable JSON. Hand-rolled (this crate is
    /// dependency-free); keys are emitted in a fixed order and findings are
    /// pre-sorted, so equal reports are byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(f.rule.id()),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"summary\": {{\"files_scanned\": {}, \"findings\": {}}}\n}}\n",
            self.files_scanned,
            self.findings.len()
        ));
        out
    }
}

/// Escape a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: Rule::Determinism,
                    file: "b.rs".into(),
                    line: 2,
                    message: "HashMap".into(),
                },
                Finding {
                    rule: Rule::PanicReachability,
                    file: "a.rs".into(),
                    line: 9,
                    message: "`.unwrap()`".into(),
                },
            ],
            files_scanned: 2,
        };
        r.normalize();
        r
    }

    #[test]
    fn findings_are_sorted_by_file_then_line() {
        let r = sample();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[1].file, "b.rs");
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = sample();
        r.findings.push(Finding {
            rule: Rule::Taxonomy,
            file: "c.rs".into(),
            line: 1,
            message: "quote \" backslash \\ newline \n".into(),
        });
        r.normalize();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\" backslash \\\\ newline \\n"));
        assert!(a.contains("\"files_scanned\": 2"));
        assert!(a.contains("\"L4/error-taxonomy\""));
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let r = Report::default();
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"findings\": []"));
        assert!(r.render_text().contains("0 finding(s)"));
    }

    #[test]
    fn text_has_clickable_anchors() {
        let text = sample().render_text();
        assert!(text.contains("a.rs:9: [L5/panic-reachability]"));
    }

    #[test]
    fn every_rule_id_is_unique() {
        let rules = [
            Rule::Determinism,
            Rule::UnsafeHygiene,
            Rule::Taxonomy,
            Rule::PanicReachability,
            Rule::LossyCast,
            Rule::UnitMix,
            Rule::MalformedAllow,
            Rule::UnusedAllow,
        ];
        for (i, a) in rules.iter().enumerate() {
            for b in &rules[i + 1..] {
                assert_ne!(a.id(), b.id());
            }
        }
    }
}
