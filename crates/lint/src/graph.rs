//! The workspace call graph built from [`crate::parse`] output.
//!
//! Nodes are parsed `fn` items; edges are call sites resolved by name with
//! a locality-first precedence (same impl type, same file, `use`-imports,
//! same crate, then workspace-global). Resolution is deliberately an
//! over-approximation — when several functions could be the callee, all of
//! them grow an edge — because L5 uses the graph for *reachability of
//! panics from untrusted input*, where a false edge costs an audit and a
//! missing edge costs a crash at 462k-trace scale. Calls that resolve to
//! nothing in the workspace (std, external shims) grow no edge.

use crate::parse::{CallSite, FnInfo, ParsedFile};
use std::collections::BTreeMap;

/// One graph node: a function, with enough location context to resolve
/// calls against it.
#[derive(Debug)]
pub struct Node<'a> {
    /// Workspace-relative path of the defining file.
    pub rel: &'a str,
    /// Crate directory name (`darshan` for `crates/darshan/src/mdf.rs`).
    pub krate: String,
    /// File stem (`mdf` for `crates/darshan/src/mdf.rs`) — the module name
    /// qualified calls usually go through.
    pub stem: String,
    /// The parsed function.
    pub f: &'a FnInfo,
}

impl Node<'_> {
    /// Human-readable label: `file-stem::fn` for free fns, `Type::fn` for
    /// methods — unambiguous enough for finding messages.
    pub fn label(&self) -> String {
        match &self.f.owner {
            Some(o) => format!("{o}::{}", self.f.name),
            None => format!("{}::{}", self.stem, self.f.name),
        }
    }
}

/// A resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee node index.
    pub callee: usize,
    /// Line of the (first) call site that produced this edge.
    pub line: u32,
}

/// The call graph over one set of parsed files.
#[derive(Debug)]
pub struct CallGraph<'a> {
    /// All nodes, ordered by (input file order, source order) — stable.
    pub nodes: Vec<Node<'a>>,
    /// Outgoing edges per node, sorted by callee index, deduplicated.
    pub edges: Vec<Vec<Edge>>,
    /// Candidate nodes per function name, for post-build call resolution.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Per-node `use`-import list of the defining file.
    node_imports: Vec<&'a [(String, String)]>,
}

/// The crate directory name for a workspace-relative path.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or(if rel.starts_with("examples/") { "examples" } else { "" })
}

/// The file stem (`mdf` for `…/mdf.rs`).
fn stem_of(rel: &str) -> &str {
    rel.rsplit('/').next().unwrap_or(rel).trim_end_matches(".rs")
}

/// `true` when a `use`/qualified path segment names this crate
/// (`mosaic_darshan` and `darshan` both match crate dir `darshan`).
fn seg_names_crate(seg: &str, krate: &str) -> bool {
    seg == krate || seg.strip_prefix("mosaic_") == Some(krate)
}

impl<'a> CallGraph<'a> {
    /// Build the graph from `(workspace-relative path, parsed file)` pairs.
    /// Test functions and bodyless declarations never become nodes.
    pub fn build(files: &[(&'a str, &'a ParsedFile)]) -> Self {
        let mut nodes = Vec::new();
        // (file index of each node) and per-file import lists, for resolution.
        let mut node_file = Vec::new();
        for (fidx, &(rel, parsed)) in files.iter().enumerate() {
            for f in &parsed.fns {
                if f.is_test || f.body.is_none() {
                    continue;
                }
                nodes.push(Node {
                    rel,
                    krate: crate_of(rel).to_owned(),
                    stem: stem_of(rel).to_owned(),
                    f,
                });
                node_file.push(fidx);
            }
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.f.name.clone()).or_default().push(i);
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        let mut node_imports: Vec<&'a [(String, String)]> = Vec::with_capacity(nodes.len());
        for caller in 0..nodes.len() {
            let imports = &files[node_file[caller]].1.imports;
            node_imports.push(imports.as_slice());
            let mut seen: BTreeMap<usize, u32> = BTreeMap::new();
            for call in &nodes[caller].f.calls {
                for callee in resolve(&nodes, &by_name, caller, call, imports) {
                    seen.entry(callee).or_insert(call.line);
                }
            }
            edges[caller] = seen.into_iter().map(|(callee, line)| Edge { callee, line }).collect();
        }
        CallGraph { nodes, edges, by_name, node_imports }
    }

    /// Resolve one call site observed inside `caller`'s body with the same
    /// precedence the graph edges were built with. Lets token-level passes
    /// (the L8 taint walk) ask "which workspace fns could this call reach?"
    /// for calls re-discovered after construction.
    pub fn resolve_site(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        resolve(&self.nodes, &self.by_name, caller, call, self.node_imports[caller])
    }

    /// Node index of `fn name` in file `rel` (first match in source order).
    pub fn find(&self, rel: &str, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.rel == rel && n.f.name == name)
    }

    /// Number of distinct workspace functions this node calls.
    pub fn fan_out(&self, n: usize) -> usize {
        self.edges[n].len()
    }

    /// Deterministic breadth-first reachability from `roots` (shortest
    /// call paths; ties broken by node order).
    pub fn reachable(&self, roots: &[usize]) -> Reach {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut reached: Vec<bool> = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for &r in &sorted_roots {
            if !reached[r] {
                reached[r] = true;
                order.push(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for e in &self.edges[n] {
                if !reached[e.callee] {
                    reached[e.callee] = true;
                    parent[e.callee] = Some(n);
                    order.push(e.callee);
                    queue.push_back(e.callee);
                }
            }
        }
        Reach { order, parent }
    }
}

/// Result of a reachability sweep.
#[derive(Debug)]
pub struct Reach {
    /// Reached node indices in BFS order (roots first).
    pub order: Vec<usize>,
    parent: Vec<Option<usize>>,
}

impl Reach {
    /// The call path from the root to `n`, inclusive, as node indices.
    pub fn path_to(&self, n: usize) -> Vec<usize> {
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

/// Resolve one call site to candidate node indices.
///
/// Precedence, most local first; within the first non-empty tier *all*
/// candidates are linked (over-approximation, see module docs):
///
/// 1. `self.m()` / `Self::m()` — methods of the caller's own impl type.
/// 2. `Type::m()` — methods of that type: same file, same crate, anywhere.
/// 3. `module::f()` — free fns whose file stem or crate matches the
///    qualifier (`crate::`/`super::`/`self::` mean "this crate").
/// 4. `recv.m()` — any method of that name: same file, same crate, anywhere.
/// 5. `f()` — free fns: same file, then `use`-imported, then same crate,
///    then anywhere in the workspace.
fn resolve(
    nodes: &[Node<'_>],
    by_name: &BTreeMap<String, Vec<usize>>,
    caller: usize,
    call: &CallSite,
    imports: &[(String, String)],
) -> Vec<usize> {
    let Some(cands) = by_name.get(call.name.as_str()) else { return Vec::new() };
    let me = &nodes[caller];
    let pick = |filters: &[&dyn Fn(&Node<'_>) -> bool]| -> Vec<usize> {
        for filt in filters {
            let hit: Vec<usize> = cands.iter().copied().filter(|&c| filt(&nodes[c])).collect();
            if !hit.is_empty() {
                return hit;
            }
        }
        Vec::new()
    };
    let same_file = |n: &Node<'_>| n.rel == me.rel;
    let same_crate = |n: &Node<'_>| n.krate == me.krate;

    // 1. self-method / Self:: associated call.
    if call.recv_self || call.qual.as_deref() == Some("Self") {
        if let Some(owner) = &me.f.owner {
            let own = |n: &Node<'_>| n.f.owner.as_ref() == Some(owner);
            return pick(&[
                &|n: &Node<'_>| own(n) && same_file(n),
                &|n: &Node<'_>| own(n) && same_crate(n),
                &own,
            ]);
        }
        return Vec::new();
    }

    if let Some(q) = &call.qual {
        if q.chars().next().is_some_and(char::is_uppercase) {
            // 2. Type::assoc_fn — match by impl-owner name.
            let own = |n: &Node<'_>| n.f.owner.as_deref() == Some(q.as_str());
            return pick(&[
                &|n: &Node<'_>| own(n) && same_file(n),
                &|n: &Node<'_>| own(n) && same_crate(n),
                &own,
            ]);
        }
        // 3. module::free_fn.
        let free = |n: &Node<'_>| n.f.owner.is_none();
        if matches!(q.as_str(), "crate" | "super" | "self") {
            return pick(&[&|n: &Node<'_>| free(n) && same_file(n), &|n: &Node<'_>| {
                free(n) && same_crate(n)
            }]);
        }
        let stem_match = |n: &Node<'_>| free(n) && (n.stem == *q || seg_names_crate(q, &n.krate));
        return pick(&[&|n: &Node<'_>| stem_match(n) && same_crate(n), &stem_match]);
    }

    if call.is_method {
        // 4. Unqualified method on an unknown receiver.
        let method = |n: &Node<'_>| n.f.owner.is_some();
        return pick(&[
            &|n: &Node<'_>| method(n) && same_file(n),
            &|n: &Node<'_>| method(n) && same_crate(n),
            &method,
        ]);
    }

    // 5. Bare free-fn call.
    let free = |n: &Node<'_>| n.f.owner.is_none();
    let import_parent: Option<&str> =
        imports.iter().find(|(leaf, _)| *leaf == call.name).map(|(_, parent)| parent.as_str());
    let imported = |n: &Node<'_>| {
        free(n) && import_parent.is_some_and(|p| n.stem == p || seg_names_crate(p, &n.krate))
    };
    pick(&[
        &|n: &Node<'_>| free(n) && same_file(n),
        &imported,
        &|n: &Node<'_>| free(n) && same_crate(n),
        &free,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex, test_line_ranges};
    use crate::parse::parse_file;

    fn parse_files(srcs: &[(&str, &str)]) -> Vec<(String, ParsedFile)> {
        srcs.iter()
            .map(|(rel, src)| {
                let lexed = lex(src);
                let tests = test_line_ranges(&lexed);
                ((*rel).to_owned(), parse_file(&lexed, &tests))
            })
            .collect()
    }

    fn build(files: &[(String, ParsedFile)]) -> CallGraph<'_> {
        let refs: Vec<(&str, &ParsedFile)> = files.iter().map(|(r, p)| (r.as_str(), p)).collect();
        CallGraph::build(&refs)
    }

    fn callees<'a>(g: &'a CallGraph<'a>, rel: &str, name: &str) -> Vec<String> {
        let n = g.find(rel, name).unwrap();
        g.edges[n].iter().map(|e| g.nodes[e.callee].label()).collect()
    }

    #[test]
    fn cross_file_qualified_calls_resolve_by_stem() {
        let files = parse_files(&[
            ("crates/a/src/driver.rs", "pub fn run() { mdf::from_bytes(b); }"),
            ("crates/a/src/mdf.rs", "pub fn from_bytes(b: &[u8]) {}"),
            ("crates/a/src/dxt.rs", "pub fn from_bytes(b: &[u8]) {}"),
        ]);
        let g = build(&files);
        assert_eq!(callees(&g, "crates/a/src/driver.rs", "run"), vec!["mdf::from_bytes"]);
    }

    #[test]
    fn same_file_free_fns_shadow_other_crates() {
        let files = parse_files(&[
            ("crates/a/src/x.rs", "fn helper() {}\npub fn run() { helper(); }"),
            ("crates/b/src/y.rs", "pub fn helper() {}"),
        ]);
        let g = build(&files);
        assert_eq!(callees(&g, "crates/a/src/x.rs", "run"), vec!["x::helper"]);
    }

    #[test]
    fn use_imports_beat_same_crate_shadows() {
        let files = parse_files(&[
            ("crates/a/src/x.rs", "use crate::good::helper;\npub fn run() { helper(); }"),
            ("crates/a/src/good.rs", "pub fn helper() {}"),
            ("crates/a/src/bad.rs", "pub fn helper() {}"),
        ]);
        let g = build(&files);
        assert_eq!(callees(&g, "crates/a/src/x.rs", "run"), vec!["good::helper"]);
    }

    #[test]
    fn self_methods_resolve_within_the_impl_type() {
        let src = "\
struct A;
impl A {
    fn step(&self) {}
    fn run(&self) { self.step(); }
}
struct B;
impl B {
    fn step(&self) {}
}
";
        let files = parse_files(&[("crates/a/src/x.rs", src)]);
        let g = build(&files);
        let run = g.find("crates/a/src/x.rs", "run").unwrap();
        assert_eq!(g.edges[run].len(), 1);
        let callee = &g.nodes[g.edges[run][0].callee];
        assert_eq!(callee.f.owner.as_deref(), Some("A"));
    }

    #[test]
    fn type_qualified_calls_resolve_across_files() {
        let files = parse_files(&[
            ("crates/a/src/m.rs", "struct Module;\nimpl Module { pub fn from_tag(t: u8) {} }"),
            ("crates/b/src/use_it.rs", "pub fn go() { Module::from_tag(3); }"),
        ]);
        let g = build(&files);
        assert_eq!(callees(&g, "crates/b/src/use_it.rs", "go"), vec!["Module::from_tag"]);
    }

    #[test]
    fn unresolved_calls_grow_no_edges() {
        let files = parse_files(&[(
            "crates/a/src/x.rs",
            "pub fn run(v: Vec<u8>) { v.push(1); std::process::exit(0); }",
        )]);
        let g = build(&files);
        let run = g.find("crates/a/src/x.rs", "run").unwrap();
        assert!(g.edges[run].is_empty());
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let src = "\
pub fn prod() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let files = parse_files(&[("crates/a/src/x.rs", src)]);
        let g = build(&files);
        assert_eq!(g.nodes.len(), 1);
    }

    #[test]
    fn bfs_paths_are_shortest_and_deterministic() {
        let src = "\
pub fn root() { a(); b(); }
fn a() { c(); }
fn b() { c(); }
fn c() { leaf(); }
fn leaf() {}
";
        let files = parse_files(&[("crates/a/src/x.rs", src)]);
        let g = build(&files);
        let root = g.find("crates/a/src/x.rs", "root").unwrap();
        let reach = g.reachable(&[root]);
        assert_eq!(reach.order.len(), 5);
        let leaf = g.find("crates/a/src/x.rs", "leaf").unwrap();
        let path: Vec<String> =
            reach.path_to(leaf).into_iter().map(|n| g.nodes[n].f.name.clone()).collect();
        // Shortest path goes through `a` (first in node order), not `b`.
        assert_eq!(path, vec!["root", "a", "c", "leaf"]);
    }

    #[test]
    fn recursion_terminates() {
        let src = "pub fn a() { b(); }\nfn b() { a(); }";
        let files = parse_files(&[("crates/a/src/x.rs", src)]);
        let g = build(&files);
        let a = g.find("crates/a/src/x.rs", "a").unwrap();
        let reach = g.reachable(&[a]);
        assert_eq!(reach.order.len(), 2);
    }
}
